//! Bitonic sorting network — the paper's "sorting" class of oblivious
//! algorithms.
//!
//! A sorting *network* compares fixed position pairs in a fixed order, so it
//! is oblivious by nature (unlike quicksort or heapsort, whose access
//! patterns follow the data).  Each compare-exchange is two reads, a
//! min/max, and two writes.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place bitonic sort of `n = 2^log2n` words, ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitonicSort {
    /// log2 of the array length.
    pub log2n: u32,
}

impl BitonicSort {
    /// New network over `2^log2n` elements.
    #[must_use]
    pub fn new(log2n: u32) -> Self {
        Self { log2n }
    }

    /// Array length.
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.log2n
    }

    /// Whether the network is empty (single element).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log2n == 0
    }

    /// The network's compare-exchange schedule: `(lo, hi, ascending)`
    /// triples in execution order.  Exposed so tests and kernels can share
    /// exactly the same wiring.
    #[must_use]
    pub fn schedule(&self) -> Vec<(usize, usize, bool)> {
        let n = self.len();
        let mut out = Vec::new();
        let mut k = 2usize;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        let ascending = i & k == 0;
                        out.push((i, l, ascending));
                    }
                }
                j /= 2;
            }
            k *= 2;
        }
        out
    }
}

impl<W: Word> ObliviousProgram<W> for BitonicSort {
    fn name(&self) -> String {
        format!("bitonic-sort(n={})", self.len())
    }

    fn memory_words(&self) -> usize {
        self.len()
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.len()
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.len()
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        for (lo, hi, ascending) in self.schedule() {
            let a = m.read(lo);
            let b = m.read(hi);
            let mn = m.min(a, b);
            let mx = m.max(a, b);
            m.free(a);
            m.free(b);
            if ascending {
                m.write(lo, mn);
                m.write(hi, mx);
            } else {
                m.write(lo, mx);
                m.write(hi, mn);
            }
            m.free(mn);
            m.free(mx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    fn sorted_copy(x: &[f64]) -> Vec<f64> {
        let mut v = x.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn sorts_known_permutation() {
        let x = [5.0f64, 1.0, 4.0, 2.0, 8.0, 7.0, 6.0, 3.0];
        let out = run_on_input(&BitonicSort::new(3), &x);
        assert_eq!(out, sorted_copy(&x));
    }

    #[test]
    fn sorts_with_duplicates_and_negatives() {
        let x = [0.0f64, -1.0, 0.0, -1.0, 5.0, 5.0, -3.0, 2.0];
        let out = run_on_input(&BitonicSort::new(3), &x);
        assert_eq!(out, sorted_copy(&x));
    }

    #[test]
    fn sorts_all_sizes_up_to_64_pseudorandomly() {
        for log2n in 0..=6u32 {
            let n = 1usize << log2n;
            for seed in 0..4u64 {
                let x: Vec<f64> = (0..n)
                    .map(|i| {
                        let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                        ((h >> 33) % 1000) as f64 - 500.0
                    })
                    .collect();
                let out = run_on_input(&BitonicSort::new(log2n), &x);
                assert_eq!(out, sorted_copy(&x), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn integer_sort() {
        let x = [9u64, 3, 7, 1];
        let out = run_on_input(&BitonicSort::new(2), &x);
        assert_eq!(out, vec![1, 3, 7, 9]);
    }

    #[test]
    fn network_size_is_n_log2_squared() {
        // Compare-exchanges: (n/2) * log2n * (log2n + 1) / 2; 4 memory
        // steps each.
        let log2n = 4u32;
        let n = 1usize << log2n;
        let cmps = n / 2 * (log2n * (log2n + 1) / 2) as usize;
        assert_eq!(time_steps::<f32, _>(&BitonicSort::new(log2n)), cmps * 4);
        assert_eq!(BitonicSort::new(log2n).schedule().len(), cmps);
    }

    #[test]
    fn bulk_sorts_every_instance() {
        let prog = BitonicSort::new(3);
        let inputs: Vec<Vec<f32>> = (0..7)
            .map(|s| (0..8).map(|i| (((i * 31 + s * 17) % 23) as f32) - 11.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        for layout in Layout::all() {
            let outs = bulk_execute(&prog, &refs, layout);
            for (inp, out) in inputs.iter().zip(&outs) {
                let mut want = inp.clone();
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(out, &want, "{layout}");
            }
        }
    }

    #[test]
    fn single_element_is_trivially_sorted() {
        let out = run_on_input::<f64, _>(&BitonicSort::new(0), &[42.0]);
        assert_eq!(out, vec![42.0]);
    }
}
