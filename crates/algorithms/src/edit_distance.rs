//! Oblivious Levenshtein edit distance.
//!
//! A third dynamic-programming representative (after OPT and LCS) with yet
//! another access pattern: the inner cell needs a three-way minimum plus an
//! equality-gated substitution cost — all expressible as oblivious selects.

use oblivious::{CmpOp, ObliviousMachine, ObliviousProgram, Word};

/// Edit distance between two word sequences.
///
/// Memory: `a` at `0..n`, `b` at `n..n+m`, DP table `(n+1) × (m+1)`
/// row-major after that; the answer is the table's last cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditDistance {
    /// Length of the first sequence.
    pub n: usize,
    /// Length of the second sequence.
    pub m: usize,
}

impl EditDistance {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if either length is 0.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "sequences must be non-empty");
        Self { n, m }
    }

    fn dp_at(&self, i: usize, j: usize) -> usize {
        self.n + self.m + i * (self.m + 1) + j
    }

    /// Index of the answer within `output_range()`.
    #[must_use]
    pub fn answer_offset(&self) -> usize {
        (self.n + 1) * (self.m + 1) - 1
    }
}

impl<W: Word> ObliviousProgram<W> for EditDistance {
    fn name(&self) -> String {
        format!("edit-distance(n={},m={})", self.n, self.m)
    }

    fn memory_words(&self) -> usize {
        self.n + self.m + (self.n + 1) * (self.m + 1)
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n + self.m
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.n + self.m..self.n + self.m + (self.n + 1) * (self.m + 1)
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let one = m.constant(W::ONE);
        // dp[0][j] = j, dp[i][0] = i.
        for j in 0..=self.m {
            let c = m.constant(W::from_f64(j as f64));
            m.write(self.dp_at(0, j), c);
            m.free(c);
        }
        for i in 1..=self.n {
            let c = m.constant(W::from_f64(i as f64));
            m.write(self.dp_at(i, 0), c);
            m.free(c);
        }
        for i in 1..=self.n {
            let ai = m.read(i - 1);
            for j in 1..=self.m {
                let bj = m.read(self.n + (j - 1));
                let diag = m.read(self.dp_at(i - 1, j - 1));
                let up = m.read(self.dp_at(i - 1, j));
                let left = m.read(self.dp_at(i, j - 1));
                // substitution cost: diag if equal, diag + 1 otherwise
                let diag1 = m.add(diag, one);
                let sub = m.select(CmpOp::Eq, ai, bj, diag, diag1);
                // insert/delete: min(up, left) + 1
                let id0 = m.min(up, left);
                let id1 = m.add(id0, one);
                let cell = m.min(sub, id1);
                m.write(self.dp_at(i, j), cell);
                for v in [bj, diag, up, left, diag1, sub, id0, id1, cell] {
                    m.free(v);
                }
            }
            m.free(ai);
        }
    }
}

/// Plain-Rust reference edit distance.
#[must_use]
pub fn reference<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (j, row0) in dp[0].iter_mut().enumerate() {
        *row0 = j;
    }
    for i in 1..=n {
        dp[i][0] = i;
        for j in 1..=m {
            let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    dp[n][m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input};
    use oblivious::Layout;

    fn distance(a: &[f64], b: &[f64]) -> f64 {
        let prog = EditDistance::new(a.len(), b.len());
        let mut input = a.to_vec();
        input.extend_from_slice(b);
        run_on_input::<f64, _>(&prog, &input)[prog.answer_offset()]
    }

    #[test]
    fn classic_kitten_sitting() {
        // "kitten" -> "sitting" = 3, letters encoded as numbers.
        let kitten = [10.0, 8.0, 19.0, 19.0, 4.0, 13.0];
        let sitting = [18.0, 8.0, 19.0, 19.0, 8.0, 13.0, 6.0];
        assert_eq!(distance(&kitten, &sitting), 3.0);
    }

    #[test]
    fn identical_is_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn totally_different_is_max_len() {
        assert_eq!(distance(&[1.0, 2.0], &[3.0, 4.0, 5.0]), 3.0);
    }

    #[test]
    fn matches_reference_pseudorandomly() {
        for seed in 0..6u64 {
            let a: Vec<f64> = (0..8).map(|i| ((i as u64 * 7 + seed * 3) % 4) as f64).collect();
            let b: Vec<f64> = (0..6).map(|i| ((i as u64 * 5 + seed * 11) % 4) as f64).collect();
            let ai: Vec<u64> = a.iter().map(|&x| x as u64).collect();
            let bi: Vec<u64> = b.iter().map(|&x| x as u64).collect();
            assert_eq!(distance(&a, &b) as usize, reference(&ai, &bi), "seed={seed}");
        }
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 3.0, 3.0, 5.0];
        let z = [2.0, 3.0, 4.0, 5.0];
        let (xy, yz, xz) = (distance(&x, &y), distance(&y, &z), distance(&x, &z));
        assert!(xz <= xy + yz);
    }

    #[test]
    fn bulk_matches_sequential() {
        let prog = EditDistance::new(4, 5);
        let inputs: Vec<Vec<f32>> =
            (0..7).map(|s| (0..9).map(|i| ((i * 2 + s) % 3) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
