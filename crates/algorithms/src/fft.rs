//! Oblivious iterative radix-2 FFT (decimation in time).
//!
//! The paper's motivating example for bulk execution: "in practical signal
//! processing, an input stream is equally partitioned into many blocks, and
//! the FFT algorithm is executed for each block" — exactly the bulk
//! execution of this program.  The butterfly schedule of the
//! Cooley–Tukey algorithm depends only on `n`, and twiddle factors are
//! compile-time constants, so the algorithm is oblivious.

use oblivious::{FloatWord, ObliviousMachine, ObliviousProgram};

/// In-place FFT over `n = 2^log2n` complex points.
///
/// Memory holds interleaved complex values: `re(x_k)` at `2k`, `im(x_k)` at
/// `2k + 1`.  The whole 2n-word array is both input and output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fft {
    /// log2 of the transform size.
    pub log2n: u32,
    /// Inverse transform (conjugated twiddles and 1/n scaling).
    pub inverse: bool,
}

impl Fft {
    /// Forward transform of `2^log2n` points.
    #[must_use]
    pub fn new(log2n: u32) -> Self {
        Self { log2n, inverse: false }
    }

    /// Inverse transform of `2^log2n` points.
    #[must_use]
    pub fn inverse(log2n: u32) -> Self {
        Self { log2n, inverse: true }
    }

    /// Number of complex points.
    #[must_use]
    pub fn points(&self) -> usize {
        1usize << self.log2n
    }
}

impl<W: FloatWord> ObliviousProgram<W> for Fft {
    fn name(&self) -> String {
        format!("{}fft(n={})", if self.inverse { "i" } else { "" }, self.points())
    }

    fn memory_words(&self) -> usize {
        2 * self.points()
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..2 * self.points()
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..2 * self.points()
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.points();
        // Bit-reversal permutation: swap schedule fixed by n.
        for k in 0..n {
            let r = bit_reverse(k, self.log2n);
            if r > k {
                for c in 0..2 {
                    let a = m.read(2 * k + c);
                    let b = m.read(2 * r + c);
                    m.write(2 * k + c, b);
                    m.write(2 * r + c, a);
                    m.free(a);
                    m.free(b);
                }
            }
        }
        // Butterfly stages.
        let sign = if self.inverse { 1.0 } else { -1.0 };
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let angle = sign * 2.0 * core::f64::consts::PI * k as f64 / len as f64;
                    let wr = m.constant(W::from_f64(angle.cos()));
                    let wi = m.constant(W::from_f64(angle.sin()));
                    let i0 = start + k;
                    let i1 = start + k + half;
                    let ar = m.read(2 * i0);
                    let ai = m.read(2 * i0 + 1);
                    let br = m.read(2 * i1);
                    let bi = m.read(2 * i1 + 1);
                    // t = w * b  (complex)
                    let t1 = m.mul(wr, br);
                    let t2 = m.mul(wi, bi);
                    let tr = m.sub(t1, t2);
                    m.free(t1);
                    m.free(t2);
                    let t3 = m.mul(wr, bi);
                    let t4 = m.mul(wi, br);
                    let ti = m.add(t3, t4);
                    m.free(t3);
                    m.free(t4);
                    m.free(br);
                    m.free(bi);
                    // out0 = a + t ; out1 = a - t
                    let o0r = m.add(ar, tr);
                    let o0i = m.add(ai, ti);
                    let o1r = m.sub(ar, tr);
                    let o1i = m.sub(ai, ti);
                    m.free(ar);
                    m.free(ai);
                    m.free(tr);
                    m.free(ti);
                    m.write(2 * i0, o0r);
                    m.write(2 * i0 + 1, o0i);
                    m.write(2 * i1, o1r);
                    m.write(2 * i1 + 1, o1i);
                    m.free(o0r);
                    m.free(o0i);
                    m.free(o1r);
                    m.free(o1i);
                }
            }
            len *= 2;
        }
        // Inverse scaling by 1/n.
        if self.inverse {
            let inv_n = m.constant(W::from_f64(1.0 / n as f64));
            for a in 0..2 * n {
                let x = m.read(a);
                let y = m.mul(x, inv_n);
                m.write(a, y);
                m.free(x);
                m.free(y);
            }
        }
    }
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (usize::BITS - bits)
    }
}

/// Naive `O(n²)` DFT reference on f64 complex pairs.
#[must_use]
pub fn dft_reference(input: &[(f64, f64)], inverse: bool) -> Vec<(f64, f64)> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let scale = if inverse { 1.0 / n as f64 } else { 1.0 };
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (j, &(xr, xi)) in input.iter().enumerate() {
                let angle = sign * 2.0 * core::f64::consts::PI * (k * j) as f64 / n as f64;
                let (c, s) = (angle.cos(), angle.sin());
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            (re * scale, im * scale)
        })
        .collect()
}

/// Pack complex pairs into the interleaved word layout.
#[must_use]
pub fn pack<W: FloatWord>(points: &[(f64, f64)]) -> Vec<W> {
    points.iter().flat_map(|&(r, i)| [W::from_f64(r), W::from_f64(i)]).collect()
}

/// Unpack interleaved words back into complex pairs.
#[must_use]
pub fn unpack<W: FloatWord>(words: &[W]) -> Vec<(f64, f64)> {
    words.chunks_exact(2).map(|c| (c[0].to_f64(), c[1].to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, trace_of};
    use oblivious::Layout;

    fn close(a: &[(f64, f64)], b: &[(f64, f64)], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol)
    }

    fn signal(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|k| {
                let t = k as f64 / n as f64;
                ((2.0 * core::f64::consts::PI * 3.0 * t).sin(), 0.5 * (t - 0.5))
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for log2n in [1u32, 2, 3, 4, 5] {
            let n = 1usize << log2n;
            let x = signal(n);
            let out = run_on_input::<f64, _>(&Fft::new(log2n), &pack::<f64>(&x));
            let got = unpack::<f64>(&out);
            let want = dft_reference(&x, false);
            assert!(close(&got, &want, 1e-9), "n={n}");
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let log2n = 4;
        let x = signal(16);
        let fwd = run_on_input::<f64, _>(&Fft::new(log2n), &pack::<f64>(&x));
        let back = run_on_input::<f64, _>(&Fft::inverse(log2n), &fwd);
        assert!(close(&unpack::<f64>(&back), &x, 1e-12));
    }

    #[test]
    fn impulse_transforms_to_all_ones() {
        let log2n = 3;
        let mut x = vec![(0.0, 0.0); 8];
        x[0] = (1.0, 0.0);
        let out = run_on_input::<f64, _>(&Fft::new(log2n), &pack::<f64>(&x));
        for (re, im) in unpack::<f64>(&out) {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn trace_is_n_log_n() {
        // Butterflies: (n/2) log2 n, 4 reads + 4 writes each; plus the
        // bit-reversal swaps.
        let log2n = 4u32;
        let n = 16usize;
        let t = trace_of::<f64, _>(&Fft::new(log2n));
        let butterflies = (n / 2) * log2n as usize;
        let swaps = (0..n).filter(|&k| bit_reverse(k, log2n) > k).count();
        assert_eq!(t.len(), butterflies * 8 + swaps * 8);
    }

    #[test]
    fn bulk_blocks_match_streamwise_ffts() {
        // The paper's signal-processing scenario: a stream chopped into
        // blocks, one FFT per block, bulk-executed.
        let log2n = 3u32;
        let blocks: Vec<Vec<(f64, f64)>> =
            (0..5).map(|b| signal(8).iter().map(|&(r, i)| (r + b as f64, i)).collect()).collect();
        let inputs: Vec<Vec<f64>> = blocks.iter().map(|b| pack::<f64>(b)).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for layout in Layout::all() {
            let outs = bulk_execute(&Fft::new(log2n), &refs, layout);
            for (block, out) in blocks.iter().zip(&outs) {
                let want = dft_reference(block, false);
                assert!(close(&unpack::<f64>(out), &want, 1e-9), "{layout}");
            }
        }
    }

    #[test]
    fn f32_precision_is_adequate() {
        let x = signal(32);
        let out = run_on_input::<f32, _>(&Fft::new(5), &pack::<f32>(&x));
        let want = dft_reference(&x, false);
        assert!(close(&unpack::<f32>(&out), &want, 1e-3));
    }

    #[test]
    fn bit_reverse_is_an_involution() {
        for bits in 0..10u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }
}
