//! Oblivious FIR filtering (direct-form convolution).
//!
//! `y[i] = Σ_k taps[k] · x[i-k]` with zero padding at the boundary.  The
//! taps are program parameters (compile-time constants from the machine's
//! point of view), so every memory access is index-scheduled — a simple
//! signal-processing companion to the FFT example.

use oblivious::{FloatWord, ObliviousMachine, ObliviousProgram};

/// FIR filter of an `n`-sample signal with fixed taps.
///
/// Memory: input `x` at `0..n`, output `y` at `n..2n`.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    /// Signal length.
    pub n: usize,
    /// Filter coefficients, `taps[0]` applied to the current sample.
    pub taps: Vec<f64>,
}

impl FirFilter {
    /// New filter program.
    ///
    /// # Panics
    ///
    /// Panics if the signal or tap vector is empty.
    #[must_use]
    pub fn new(n: usize, taps: Vec<f64>) -> Self {
        assert!(n > 0, "signal must be non-empty");
        assert!(!taps.is_empty(), "need at least one tap");
        Self { n, taps }
    }

    /// A `k`-point moving-average filter.
    #[must_use]
    pub fn moving_average(n: usize, k: usize) -> Self {
        assert!(k > 0);
        Self::new(n, vec![1.0 / k as f64; k])
    }
}

impl<W: FloatWord> ObliviousProgram<W> for FirFilter {
    fn name(&self) -> String {
        format!("fir(n={},taps={})", self.n, self.taps.len())
    }

    fn memory_words(&self) -> usize {
        2 * self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.n..2 * self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        for i in 0..self.n {
            let mut acc = m.zero();
            for (k, &tap) in self.taps.iter().enumerate() {
                // Zero padding: samples before the start are skipped; the
                // *schedule* (which k are skipped at which i) depends only
                // on indices, so obliviousness is preserved.
                if k > i {
                    continue;
                }
                let x = m.read(i - k);
                let t = m.constant(W::from_f64(tap));
                let prod = m.mul(x, t);
                m.free(x);
                let acc2 = m.add(acc, prod);
                m.free(prod);
                m.free(acc);
                acc = acc2;
            }
            m.write(self.n + i, acc);
            m.free(acc);
        }
    }
}

/// Plain-Rust reference convolution.
#[must_use]
pub fn reference(x: &[f64], taps: &[f64]) -> Vec<f64> {
    (0..x.len())
        .map(|i| taps.iter().enumerate().filter(|(k, _)| *k <= i).map(|(k, &t)| t * x[i - k]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, trace_of};
    use oblivious::Layout;

    #[test]
    fn identity_tap_copies_signal() {
        let x = [1.0, -2.0, 3.0, 0.5];
        let out = run_on_input::<f64, _>(&FirFilter::new(4, vec![1.0]), &x);
        assert_eq!(out, x.to_vec());
    }

    #[test]
    fn delay_tap_shifts_signal() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let out = run_on_input::<f64, _>(&FirFilter::new(4, vec![0.0, 1.0]), &x);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn moving_average_matches_reference() {
        let x: Vec<f64> = (0..16).map(|i| ((i * 37) % 11) as f64).collect();
        let f = FirFilter::moving_average(16, 4);
        let out = run_on_input::<f64, _>(&f, &x);
        let want = reference(&x, &f.taps);
        for (a, b) in out.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_covers_triangular_prefix_then_steady_state() {
        let f = FirFilter::new(6, vec![0.5, 0.25, 0.25]);
        let t = trace_of::<f64, _>(&f);
        // i = 0: 1 read; i = 1: 2 reads; i >= 2: 3 reads; +1 write each.
        assert_eq!(t.len(), (1 + 2 + 3 + 3 + 3 + 3) + 6);
    }

    #[test]
    fn bulk_matches_sequential() {
        let f = FirFilter::new(8, vec![0.5, -0.5, 1.0]);
        let inputs: Vec<Vec<f32>> =
            (0..6).map(|s| (0..8).map(|i| ((i + s * 3) % 5) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&f, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&f, &refs, layout), cpu, "{layout}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = FirFilter::new(4, vec![]);
    }
}
