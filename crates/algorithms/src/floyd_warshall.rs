//! Oblivious all-pairs shortest paths (Floyd–Warshall).
//!
//! The classic `k`-`i`-`j` relaxation touches `d[i][j]`, `d[i][k]`,
//! `d[k][j]` on a schedule fixed by `n` — a second dynamic-programming
//! representative alongside OPT, with a *different* access shape (full
//! matrix sweeps instead of diagonal fills).

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place APSP over an `n × n` distance matrix.
///
/// The matrix is both input (edge weights, `POS_INF` for "no edge",
/// diagonal 0) and output (shortest-path distances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloydWarshall {
    /// Vertex count.
    pub n: usize,
}

impl FloydWarshall {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graph must have at least one vertex");
        Self { n }
    }

    fn at(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }
}

impl<W: Word> ObliviousProgram<W> for FloydWarshall {
    fn name(&self) -> String {
        format!("floyd-warshall(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        self.n * self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        for k in 0..n {
            for i in 0..n {
                let dik = m.read(self.at(i, k));
                for j in 0..n {
                    let dkj = m.read(self.at(k, j));
                    let dij = m.read(self.at(i, j));
                    let via = m.add(dik, dkj);
                    let best = m.min(dij, via);
                    m.write(self.at(i, j), best);
                    for v in [dkj, dij, via, best] {
                        m.free(v);
                    }
                }
                m.free(dik);
            }
        }
    }
}

/// Plain-Rust reference (f64, `INFINITY` for missing edges).
#[must_use]
pub fn reference(dist: &[f64], n: usize) -> Vec<f64> {
    let mut d = dist.to_vec();
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i * n + k] + d[k * n + j];
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    d
}

/// Build a distance matrix from an edge list (symmetric if `undirected`).
#[must_use]
pub fn matrix_from_edges(n: usize, edges: &[(usize, usize, f64)], undirected: bool) -> Vec<f64> {
    let mut d = vec![f64::INFINITY; n * n];
    for i in 0..n {
        d[i * n + i] = 0.0;
    }
    for &(u, v, w) in edges {
        d[u * n + v] = d[u * n + v].min(w);
        if undirected {
            d[v * n + u] = d[v * n + u].min(w);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    #[test]
    fn shortcut_is_found() {
        // 0 -> 1 (5), 1 -> 2 (5), 0 -> 2 (20): shortest 0->2 is 10.
        let d = matrix_from_edges(3, &[(0, 1, 5.0), (1, 2, 5.0), (0, 2, 20.0)], false);
        let out = run_on_input::<f64, _>(&FloydWarshall::new(3), &d);
        assert_eq!(out[2], 10.0);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let d = matrix_from_edges(3, &[(0, 1, 1.0)], false);
        let out = run_on_input::<f64, _>(&FloydWarshall::new(3), &d);
        assert_eq!(out[2], f64::INFINITY);
        assert_eq!(out[3], f64::INFINITY, "directed edge only");
    }

    #[test]
    fn matches_reference_on_a_ring() {
        let n = 8;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, 1.0 + (i % 3) as f64)).collect();
        let d = matrix_from_edges(n, &edges, true);
        let out = run_on_input::<f64, _>(&FloydWarshall::new(n), &d);
        assert_eq!(out, reference(&d, n));
    }

    #[test]
    fn trace_is_exactly_4n3_minus_reuse() {
        // Per (k, i): 1 read of d[i][k]; per j: 3 accesses (2 reads 1 write).
        let n = 5usize;
        assert_eq!(time_steps::<f64, _>(&FloydWarshall::new(n)), n * n * (1 + 3 * n));
    }

    #[test]
    fn bulk_matches_sequential() {
        let n = 5;
        let prog = FloydWarshall::new(n);
        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                let edges: Vec<_> =
                    (0..n).map(|i| (i, (i + 2 + s) % n, 1.0 + ((i + s) % 4) as f64)).collect();
                matrix_from_edges(n, &edges, true)
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
