//! Oblivious polynomial evaluation (Horner's rule).
//!
//! `p(x) = (((c_d · x + c_{d-1}) · x + c_{d-2}) … ) · x + c_0` reads the
//! coefficients highest-degree-first on a schedule fixed by the degree — a
//! minimal warm-up example and a useful micro-workload for the generic bulk
//! engine (one multiply-add per memory read).

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// Evaluate a degree-`degree` polynomial at a point.
///
/// Memory: coefficients `c_0 … c_d` at `0..=degree`, the point `x` at
/// `degree + 1`, the result at `degree + 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Horner {
    /// Polynomial degree `d`.
    pub degree: usize,
}

impl Horner {
    /// New program for degree-`degree` polynomials.
    #[must_use]
    pub fn new(degree: usize) -> Self {
        Self { degree }
    }

    /// Address of the point `x`.
    fn x_at(&self) -> usize {
        self.degree + 1
    }

    /// Address of the result.
    fn out_at(&self) -> usize {
        self.degree + 2
    }
}

impl<W: Word> ObliviousProgram<W> for Horner {
    fn name(&self) -> String {
        format!("horner(d={})", self.degree)
    }

    fn memory_words(&self) -> usize {
        self.degree + 3
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.degree + 2
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.out_at()..self.out_at() + 1
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let x = m.read(self.x_at());
        let mut acc = m.read(self.degree); // c_d
        for i in (0..self.degree).rev() {
            let scaled = m.mul(acc, x);
            m.free(acc);
            let c = m.read(i);
            acc = m.add(scaled, c);
            m.free(scaled);
            m.free(c);
        }
        m.write(self.out_at(), acc);
        m.free(acc);
        m.free(x);
    }
}

/// Plain-Rust reference evaluation.
#[must_use]
pub fn reference(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    fn eval(coeffs: &[f64], x: f64) -> f64 {
        let prog = Horner::new(coeffs.len() - 1);
        let mut input = coeffs.to_vec();
        input.push(x);
        run_on_input::<f64, _>(&prog, &input)[0]
    }

    #[test]
    fn constant_polynomial() {
        assert_eq!(eval(&[7.0], 100.0), 7.0);
    }

    #[test]
    fn quadratic() {
        // 2 + 3x + 4x^2 at x = 2 => 2 + 6 + 16 = 24.
        assert_eq!(eval(&[2.0, 3.0, 4.0], 2.0), 24.0);
    }

    #[test]
    fn matches_reference() {
        let coeffs: Vec<f64> = (0..9).map(|i| ((i * 13 + 5) % 7) as f64 - 3.0).collect();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 3.25] {
            assert_eq!(eval(&coeffs, x), reference(&coeffs, x));
        }
    }

    #[test]
    fn trace_is_linear_in_degree() {
        // 1 read x + 1 read c_d + d reads + 1 write.
        assert_eq!(time_steps::<f64, _>(&Horner::new(10)), 2 + 10 + 1);
    }

    #[test]
    fn bulk_evaluates_many_points() {
        // Classic bulk workload: same polynomial, many evaluation points.
        let coeffs = [1.0f64, -1.0, 0.5];
        let prog = Horner::new(2);
        let inputs: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                let mut v = coeffs.to_vec();
                v.push(i as f64 / 2.0);
                v
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for layout in Layout::all() {
            let outs = bulk_execute(&prog, &refs, layout);
            for (inp, out) in inputs.iter().zip(&outs) {
                assert_eq!(out[0], reference(&coeffs, inp[3]), "{layout}");
            }
        }
    }
}
