//! Oblivious longest-common-subsequence length — the paper's "dynamic
//! programming" class, in its textbook two-dimensional form.
//!
//! `dp[i][j] = a[i-1] == b[j-1] ? dp[i-1][j-1] + 1
//!                              : max(dp[i-1][j], dp[i][j-1])`
//!
//! The equality test is an oblivious [`CmpOp::Eq`] select, so the fill
//! order and addresses never depend on the sequences.

use oblivious::{CmpOp, ObliviousMachine, ObliviousProgram, Word};

/// LCS length of two word sequences.
///
/// Memory: `a` at `0..n`, `b` at `n..n+m`, DP table `(n+1) × (m+1)`
/// row-major after that.  Output is the DP table; the answer sits in its
/// last cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcsLength {
    /// Length of the first sequence.
    pub n: usize,
    /// Length of the second sequence.
    pub m: usize,
}

impl LcsLength {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if either length is 0.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "sequences must be non-empty");
        Self { n, m }
    }

    fn dp_at(&self, i: usize, j: usize) -> usize {
        self.n + self.m + i * (self.m + 1) + j
    }

    /// Index of the answer (LCS length) within `output_range()`.
    #[must_use]
    pub fn answer_offset(&self) -> usize {
        (self.n + 1) * (self.m + 1) - 1
    }
}

impl<W: Word> ObliviousProgram<W> for LcsLength {
    fn name(&self) -> String {
        format!("lcs(n={},m={})", self.n, self.m)
    }

    fn memory_words(&self) -> usize {
        self.n + self.m + (self.n + 1) * (self.m + 1)
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n + self.m
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.n + self.m..self.n + self.m + (self.n + 1) * (self.m + 1)
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let zero = m.zero();
        let one = m.constant(W::ONE);
        // Boundary rows/columns.
        for j in 0..=self.m {
            m.write(self.dp_at(0, j), zero);
        }
        for i in 1..=self.n {
            m.write(self.dp_at(i, 0), zero);
        }
        for i in 1..=self.n {
            let ai = m.read(i - 1);
            for j in 1..=self.m {
                let bj = m.read(self.n + (j - 1));
                let diag = m.read(self.dp_at(i - 1, j - 1));
                let up = m.read(self.dp_at(i - 1, j));
                let left = m.read(self.dp_at(i, j - 1));
                let diag1 = m.add(diag, one);
                let best = m.max(up, left);
                let cell = m.select(CmpOp::Eq, ai, bj, diag1, best);
                m.write(self.dp_at(i, j), cell);
                for v in [bj, diag, up, left, diag1, best, cell] {
                    m.free(v);
                }
            }
            m.free(ai);
        }
    }
}

/// Plain-Rust reference LCS length.
#[must_use]
pub fn reference<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[n][m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    fn lcs_of(a: &[f64], b: &[f64]) -> f64 {
        let prog = LcsLength::new(a.len(), b.len());
        let mut input = a.to_vec();
        input.extend_from_slice(b);
        let out = run_on_input::<f64, _>(&prog, &input);
        out[prog.answer_offset()]
    }

    #[test]
    fn classic_example() {
        // LCS("ABCBDAB", "BDCABA") = 4, encoded as digits.
        let a = [1.0, 2.0, 3.0, 2.0, 4.0, 1.0, 2.0];
        let b = [2.0, 4.0, 3.0, 1.0, 2.0, 1.0];
        assert_eq!(lcs_of(&a, &b), 4.0);
    }

    #[test]
    fn identical_sequences() {
        let a = [5.0, 6.0, 7.0];
        assert_eq!(lcs_of(&a, &a), 3.0);
    }

    #[test]
    fn disjoint_sequences() {
        assert_eq!(lcs_of(&[1.0, 2.0], &[3.0, 4.0, 5.0]), 0.0);
    }

    #[test]
    fn matches_reference_pseudorandomly() {
        for seed in 0..5u64 {
            let a: Vec<f64> = (0..9).map(|i| ((i as u64 * 7 + seed * 13) % 4) as f64).collect();
            let b: Vec<f64> = (0..7).map(|i| ((i as u64 * 11 + seed * 5) % 4) as f64).collect();
            let ai: Vec<u64> = a.iter().map(|&x| x as u64).collect();
            let bi: Vec<u64> = b.iter().map(|&x| x as u64).collect();
            assert_eq!(lcs_of(&a, &b) as usize, reference(&ai, &bi), "seed={seed}");
        }
    }

    #[test]
    fn trace_is_rectangular() {
        // Per inner cell: read b, 3 dp reads, 1 write; per row 1 read of a;
        // boundary: (m+1) + n writes.
        let (n, m) = (4usize, 5usize);
        let t = time_steps::<f64, _>(&LcsLength::new(n, m));
        assert_eq!(t, (m + 1) + n + n * (1 + m * 5));
    }

    #[test]
    fn bulk_matches_sequential() {
        let prog = LcsLength::new(5, 5);
        let inputs: Vec<Vec<f32>> =
            (0..6).map(|s| (0..10).map(|i| ((i * 3 + s) % 3) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
