//! # algorithms — a library of oblivious sequential algorithms
//!
//! Every algorithm class the paper names as amenable to oblivious
//! execution, implemented against the `oblivious` machine interface (and
//! therefore oblivious *by construction*, bulk-executable by the generic
//! engine, and priceable on the UMM/DMM):
//!
//! | class (paper §I/§III)     | module                                   |
//! |---------------------------|------------------------------------------|
//! | running example           | [`prefix_sums`] (Algorithm Prefix-sums)  |
//! | dynamic programming       | [`opt`] (Algorithm OPT), [`matrix_chain`], [`lcs`], [`edit_distance`], [`floyd_warshall`], [`pascal`] |
//! | matrix computation        | [`matmul`], [`matvec`], [`transpose`], [`lu`] |
//! | signal processing         | [`fft`], [`fir`], [`poly_mul`]           |
//! | sorting                   | [`bitonic`], [`oe_mergesort`]            |
//! | encryption/decryption     | [`xtea`]                                 |
//! | micro-workload            | [`horner`], [`summed_area`] (2-D prefix sums) |
//! | offline permutation       | [`permute`] (related-work workload)      |
//! | **non**-oblivious foils   | [`nonoblivious`] (binary search, partition) |
//!
//! Each module ships a plain-Rust reference implementation for differential
//! testing and, where meaningful, a brute-force oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod edit_distance;
pub mod fft;
pub mod fir;
pub mod floyd_warshall;
pub mod horner;
pub mod lcs;
pub mod lu;
pub mod matmul;
pub mod matrix_chain;
pub mod matvec;
pub mod nonoblivious;
pub mod oe_mergesort;
pub mod opt;
pub mod pascal;
pub mod permute;
pub mod poly_mul;
pub mod prefix_sums;
pub mod summed_area;
pub mod transpose;
pub mod xtea;

pub use bitonic::BitonicSort;
pub use edit_distance::EditDistance;
pub use fft::Fft;
pub use fir::FirFilter;
pub use floyd_warshall::FloydWarshall;
pub use horner::Horner;
pub use lcs::LcsLength;
pub use lu::LuDecomposition;
pub use matmul::MatMul;
pub use matrix_chain::MatrixChain;
pub use matvec::MatVec;
pub use oe_mergesort::OddEvenMergeSort;
pub use opt::{ChordWeights, OptTriangulation};
pub use pascal::PascalTriangle;
pub use permute::OfflinePermute;
pub use poly_mul::PolyMul;
pub use prefix_sums::PrefixSums;
pub use summed_area::SummedArea;
pub use transpose::Transpose;
pub use xtea::Xtea;
