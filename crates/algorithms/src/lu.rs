//! Oblivious LU decomposition (Doolittle, no pivoting).
//!
//! Gaussian elimination *with* pivoting is data-dependent (the pivot row is
//! chosen by magnitude), but the pivot-free Doolittle factorisation visits
//! `(k, i, j)` on a schedule fixed by `n` — the linear-algebra member of
//! the oblivious family, with the usual caveat that it requires the matrix
//! to be factorisable without pivoting (e.g. diagonally dominant).

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place LU factorisation of an `n × n` row-major matrix.
///
/// On exit the strict lower triangle holds `L` (unit diagonal implied) and
/// the upper triangle (with diagonal) holds `U`, packed in the same `n²`
/// words — the standard compact form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuDecomposition {
    /// Matrix dimension.
    pub n: usize,
}

impl LuDecomposition {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self { n }
    }
}

impl<W: Word> ObliviousProgram<W> for LuDecomposition {
    fn name(&self) -> String {
        format!("lu(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        self.n * self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        let at = |i: usize, j: usize| i * n + j;
        for k in 0..n {
            let pivot = m.read(at(k, k));
            // Column k below the pivot becomes L: a[i][k] /= a[k][k].
            for i in (k + 1)..n {
                let aik = m.read(at(i, k));
                let l = m.binop(oblivious::BinOp::Div, aik, pivot);
                m.free(aik);
                m.write(at(i, k), l);
                m.free(l);
            }
            // Trailing submatrix update: a[i][j] -= a[i][k] * a[k][j].
            for i in (k + 1)..n {
                let lik = m.read(at(i, k));
                for j in (k + 1)..n {
                    let ukj = m.read(at(k, j));
                    let prod = m.mul(lik, ukj);
                    m.free(ukj);
                    let aij = m.read(at(i, j));
                    let upd = m.sub(aij, prod);
                    m.free(aij);
                    m.free(prod);
                    m.write(at(i, j), upd);
                    m.free(upd);
                }
                m.free(lik);
            }
            m.free(pivot);
        }
    }
}

/// Reconstruct `L·U` from the packed factorisation (for testing).
#[must_use]
pub fn multiply_lu(packed: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(packed.len(), n * n);
    let l = |i: usize, j: usize| -> f64 {
        use core::cmp::Ordering;
        match i.cmp(&j) {
            Ordering::Greater => packed[i * n + j],
            Ordering::Equal => 1.0,
            Ordering::Less => 0.0,
        }
    };
    let u = |i: usize, j: usize| -> f64 {
        if i <= j {
            packed[i * n + j]
        } else {
            0.0
        }
    };
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            out[i * n + j] = (0..n).map(|k| l(i, k) * u(k, j)).sum();
        }
    }
    out
}

/// A diagonally dominant test matrix (always factorisable w/o pivoting).
#[must_use]
pub fn diagonally_dominant(n: usize, seed: u64) -> Vec<f64> {
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let h = (i as u64 * 31 + j as u64 * 17 + seed).wrapping_mul(0x9E3779B97F4A7C15);
                let v = ((h >> 40) % 100) as f64 / 25.0 - 2.0;
                a[i * n + j] = v;
                row_sum += v.abs();
            }
        }
        a[i * n + i] = row_sum + 1.0 + (i as f64) * 0.25;
    }
    a
}

/// Solve `L·U·x = b` from the packed factorisation (host-side).
#[must_use]
pub fn solve(packed: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(b.len(), n);
    // Forward: L y = b (unit diagonal).
    let mut y = b.to_vec();
    for i in 0..n {
        for j in 0..i {
            y[i] -= packed[i * n + j] * y[j];
        }
    }
    // Backward: U x = y.
    let mut x = y;
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            x[i] -= packed[i * n + j] * x[j];
        }
        x[i] /= packed[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn identity_factorises_to_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let out = run_on_input::<f64, _>(&LuDecomposition::new(n), &a);
        assert_eq!(out, a);
    }

    #[test]
    fn known_2x2() {
        // [4 3; 6 3] = [1 0; 1.5 1] [4 3; 0 -1.5]
        let out = run_on_input::<f64, _>(&LuDecomposition::new(2), &[4.0, 3.0, 6.0, 3.0]);
        assert_eq!(out, vec![4.0, 3.0, 1.5, -1.5]);
    }

    #[test]
    fn lu_product_reconstructs_input() {
        for n in [2usize, 3, 5, 8] {
            for seed in 0..3 {
                let a = diagonally_dominant(n, seed);
                let packed = run_on_input::<f64, _>(&LuDecomposition::new(n), &a);
                let back = multiply_lu(&packed, n);
                assert!(close(&back, &a, 1e-9), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn solves_linear_systems() {
        let n = 6;
        let a = diagonally_dominant(n, 9);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let b: Vec<f64> = (0..n).map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum()).collect();
        let packed = run_on_input::<f64, _>(&LuDecomposition::new(n), &a);
        let x = solve(&packed, &b, n);
        assert!(close(&x, &x_true, 1e-9));
    }

    #[test]
    fn trace_is_cubic() {
        // Per k: 1 pivot read + (n-k-1) * (2) col ops + (n-k-1)^2 * 4.
        let n = 5usize;
        let expected: usize =
            (0..n).map(|k| 1 + (n - k - 1) * 2 + (n - k - 1) * (1 + (n - k - 1) * 3)).sum();
        assert_eq!(time_steps::<f64, _>(&LuDecomposition::new(n)), expected);
    }

    #[test]
    fn bulk_matches_sequential() {
        let n = 4;
        let prog = LuDecomposition::new(n);
        let inputs: Vec<Vec<f64>> = (0..5).map(|s| diagonally_dominant(n, s + 100)).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
