//! Oblivious dense matrix multiplication `C = A · B`.
//!
//! The paper's introduction names "matrix computation" as a canonical
//! oblivious task: the classic triple loop touches `A[i,k]`, `B[k,j]`,
//! `C[i,j]` on a schedule fixed by `n` alone.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// `n × n` matrix product.
///
/// Memory: `A` at `0..n²`, `B` at `n²..2n²`, `C` at `2n²..3n²`, all
/// row-major.  Input is `A` followed by `B`; output is `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatMul {
    /// Matrix dimension `n`.
    pub n: usize,
}

impl MatMul {
    /// New `n × n` program.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self { n }
    }

    fn a_at(&self, i: usize, k: usize) -> usize {
        i * self.n + k
    }
    fn b_at(&self, k: usize, j: usize) -> usize {
        self.n * self.n + k * self.n + j
    }
    fn c_at(&self, i: usize, j: usize) -> usize {
        2 * self.n * self.n + i * self.n + j
    }
}

impl<W: Word> ObliviousProgram<W> for MatMul {
    fn name(&self) -> String {
        format!("matmul(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        3 * self.n * self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..2 * self.n * self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        2 * self.n * self.n..3 * self.n * self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                let mut acc = m.zero();
                for k in 0..n {
                    let a = m.read(self.a_at(i, k));
                    let b = m.read(self.b_at(k, j));
                    let prod = m.mul(a, b);
                    m.free(a);
                    m.free(b);
                    let acc2 = m.add(acc, prod);
                    m.free(prod);
                    m.free(acc);
                    acc = acc2;
                }
                m.write(self.c_at(i, j), acc);
                m.free(acc);
            }
        }
    }
}

/// Plain-Rust reference product of two row-major `n × n` matrices.
#[must_use]
pub fn reference<W: Word>(a: &[W], b: &[W], n: usize) -> Vec<W> {
    use oblivious::BinOp;
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![W::ZERO; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = W::ZERO;
            for k in 0..n {
                let prod = W::apply_bin(BinOp::Mul, a[i * n + k], b[k * n + j]);
                acc = W::apply_bin(BinOp::Add, acc, prod);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps, trace_of};
    use oblivious::Layout;

    #[test]
    fn two_by_two_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let input = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let out = run_on_input(&MatMul::new(2), &input);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let n = 4;
        let a: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let mut id = vec![0.0f64; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let mut input = a.clone();
        input.extend_from_slice(&id);
        let out = run_on_input(&MatMul::new(n), &input);
        assert_eq!(out, a);
    }

    #[test]
    fn matches_reference() {
        let n = 5;
        let a: Vec<f64> = (0..n * n).map(|x| ((x * 7 + 3) % 11) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|x| ((x * 5 + 1) % 13) as f64).collect();
        let mut input = a.clone();
        input.extend_from_slice(&b);
        let out = run_on_input(&MatMul::new(n), &input);
        assert_eq!(out, reference(&a, &b, n));
    }

    #[test]
    fn integer_words_wrap() {
        let n = 2;
        let a = [u32::MAX, 0, 0, 1];
        let b = [2u32, 0, 0, 3];
        let mut input = a.to_vec();
        input.extend_from_slice(&b);
        let out = run_on_input(&MatMul::new(n), &input);
        assert_eq!(out[0], u32::MAX.wrapping_mul(2));
        assert_eq!(out[3], 3);
    }

    #[test]
    fn trace_is_cubic_and_data_free() {
        let n = 3usize;
        let t = trace_of::<f32, _>(&MatMul::new(n));
        // Per (i, j): 2n reads + 1 write.
        assert_eq!(t.len(), n * n * (2 * n + 1));
        assert_eq!(time_steps::<f32, _>(&MatMul::new(4)), 4 * 4 * 9);
    }

    #[test]
    fn bulk_equals_sequential() {
        let n = 3;
        let inputs: Vec<Vec<f32>> =
            (0..5).map(|s| (0..2 * n * n).map(|x| ((x + s * 13) % 7) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = MatMul::new(n);
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
