//! Oblivious matrix-chain multiplication order DP.
//!
//! The textbook sibling of Algorithm OPT: the paper's Section IV notes the
//! OPT recurrence is solved "by the dynamic programming technique"
//! referencing the same sources (CLRS) that present matrix-chain ordering.
//! The DP shape is identical (interval DP over diagonals) but the cost
//! term is the product `d[i-1]·d[k]·d[j]` of three dimension words instead
//! of one chord weight — three extra index-scheduled reads per `k`.

use oblivious::{CmpOp, ObliviousMachine, ObliviousProgram, Word};

/// Minimum scalar-multiplication count for a chain of `count` matrices,
/// where matrix `i` has dimensions `d[i-1] × d[i]`.
///
/// Memory: dimensions `d[0..=count]` at `0..count+1`, DP table
/// `(count+1)²` row-major after that (1-based `i, j`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixChain {
    /// Number of matrices in the chain.
    pub count: usize,
}

impl MatrixChain {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "chain must be non-empty");
        Self { count }
    }

    fn m_at(&self, i: usize, j: usize) -> usize {
        (self.count + 1) + i * (self.count + 1) + j
    }

    /// Index of the answer `m[1][count]` within `output_range()`.
    #[must_use]
    pub fn answer_offset(&self) -> usize {
        (self.count + 1) + self.count
    }
}

impl<W: Word> ObliviousProgram<W> for MatrixChain {
    fn name(&self) -> String {
        format!("matrix-chain(k={})", self.count)
    }

    fn memory_words(&self) -> usize {
        (self.count + 1) + (self.count + 1) * (self.count + 1)
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.count + 1
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.count + 1..(self.count + 1) + (self.count + 1) * (self.count + 1)
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.count;
        let zero = m.zero();
        for i in 1..=n {
            m.write(self.m_at(i, i), zero);
        }
        for len in 2..=n {
            for i in 1..=(n - len + 1) {
                let j = i + len - 1;
                let mut s = m.pos_inf();
                for k in i..j {
                    let left = m.read(self.m_at(i, k));
                    let right = m.read(self.m_at(k + 1, j));
                    let di = m.read(i - 1);
                    let dk = m.read(k);
                    let dj = m.read(j);
                    let dd = m.mul(di, dk);
                    let cost = m.mul(dd, dj);
                    let sum0 = m.add(left, right);
                    let r = m.add(sum0, cost);
                    let s2 = m.select(CmpOp::Lt, r, s, r, s);
                    for v in [left, right, di, dk, dj, dd, cost, sum0, r, s] {
                        m.free(v);
                    }
                    s = s2;
                }
                m.write(self.m_at(i, j), s);
                m.free(s);
            }
        }
    }
}

/// Plain-Rust reference DP.
#[must_use]
pub fn reference(dims: &[u64]) -> u64 {
    let n = dims.len() - 1;
    let mut dp = vec![vec![0u64; n + 1]; n + 1];
    for len in 2..=n {
        for i in 1..=(n - len + 1) {
            let j = i + len - 1;
            dp[i][j] = (i..j)
                .map(|k| dp[i][k] + dp[k + 1][j] + dims[i - 1] * dims[k] * dims[j])
                .min()
                .expect("non-empty k range");
        }
    }
    dp[1][n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    fn chain_cost(dims: &[u64]) -> u64 {
        let prog = MatrixChain::new(dims.len() - 1);
        let input: Vec<f64> = dims.iter().map(|&d| d as f64).collect();
        let out = run_on_input::<f64, _>(&prog, &input);
        out[prog.answer_offset()] as u64
    }

    #[test]
    fn clrs_example() {
        // CLRS 15.2: dims 30,35,15,5,10,20,25 — optimum 15125.
        assert_eq!(chain_cost(&[30, 35, 15, 5, 10, 20, 25]), 15125);
    }

    #[test]
    fn two_matrices_multiply_once() {
        assert_eq!(chain_cost(&[10, 20, 30]), 10 * 20 * 30);
    }

    #[test]
    fn single_matrix_is_free() {
        assert_eq!(chain_cost(&[5, 7]), 0);
    }

    #[test]
    fn matches_reference_pseudorandomly() {
        for seed in 0..5u64 {
            let dims: Vec<u64> = (0..7).map(|i| 1 + (i as u64 * 13 + seed * 7) % 30).collect();
            assert_eq!(chain_cost(&dims), reference(&dims), "dims={dims:?}");
        }
    }

    #[test]
    fn trace_is_cubic_like_opt() {
        // Per (i,j,k): 5 reads; per (i,j): 1 write; plus n diagonal writes.
        let n = 6usize;
        let expected: usize =
            (2..=n).map(|len| (n - len + 1) * ((len - 1) * 5 + 1)).sum::<usize>() + n;
        assert_eq!(time_steps::<f64, _>(&MatrixChain::new(n)), expected);
    }

    #[test]
    fn bulk_matches_sequential() {
        let prog = MatrixChain::new(5);
        let inputs: Vec<Vec<f64>> =
            (0..6).map(|s| (0..6).map(|i| 1.0 + ((i + s * 3) % 9) as f64).collect()).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
