//! Oblivious matrix–vector product `y = A·x`.
//!
//! The memory-bound counterpart of [`crate::matmul`]: one multiply-add per
//! word read, so bulk layout effects dominate compute — a good stress of
//! the coalescing claim on a low-arithmetic-intensity kernel.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// `y = A·x` for a row-major `n × n` matrix.
///
/// Memory: `A` at `0..n²`, `x` at `n²..n²+n`, `y` at `n²+n..n²+2n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatVec {
    /// Matrix dimension.
    pub n: usize,
}

impl MatVec {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self { n }
    }
}

impl<W: Word> ObliviousProgram<W> for MatVec {
    fn name(&self) -> String {
        format!("matvec(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        self.n * self.n + 2 * self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n + self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.n * self.n + self.n..self.n * self.n + 2 * self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        for i in 0..n {
            let mut acc = m.zero();
            for j in 0..n {
                let a = m.read(i * n + j);
                let x = m.read(n * n + j);
                let prod = m.mul(a, x);
                m.free(a);
                m.free(x);
                let acc2 = m.add(acc, prod);
                m.free(prod);
                m.free(acc);
                acc = acc2;
            }
            m.write(n * n + n + i, acc);
            m.free(acc);
        }
    }
}

/// Plain-Rust reference product.
#[must_use]
pub fn reference(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(x.len(), n);
    (0..n).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    #[test]
    fn identity_times_vector() {
        let n = 3;
        let mut input = vec![0.0f64; n * n];
        for i in 0..n {
            input[i * n + i] = 1.0;
        }
        input.extend_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(run_on_input(&MatVec::new(n), &input), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn matches_reference() {
        let n = 5;
        let a: Vec<f64> = (0..n * n).map(|v| ((v * 3 + 1) % 7) as f64).collect();
        let x: Vec<f64> = (0..n).map(|v| (v + 1) as f64).collect();
        let mut input = a.clone();
        input.extend_from_slice(&x);
        assert_eq!(run_on_input(&MatVec::new(n), &input), reference(&a, &x, n));
    }

    #[test]
    fn trace_is_quadratic() {
        let n = 4usize;
        // Per row: 2n reads + 1 write.
        assert_eq!(time_steps::<f32, _>(&MatVec::new(n)), n * (2 * n + 1));
    }

    #[test]
    fn bulk_matches_sequential() {
        let n = 3;
        let prog = MatVec::new(n);
        let inputs: Vec<Vec<f32>> = (0..8)
            .map(|s| (0..n * n + n).map(|i| ((i + s * 2) % 5) as f32 - 2.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
