//! Counter-examples: raw algorithms that are **not** oblivious.
//!
//! These cannot be written against [`oblivious::ObliviousMachine`] — their
//! addresses depend on data, which the opaque-value interface makes
//! inexpressible.  They exist as raw trace functions so the falsifying
//! checker (`oblivious::checker`) has something real to reject, and so the
//! documentation can show *why* the paper restricts itself to oblivious
//! algorithms.

use umm_core::ThreadTrace;

/// Record the address trace of a binary search for `target` in `sorted`.
///
/// The probe sequence follows the comparisons — a textbook data-dependent
/// access pattern.
#[must_use]
pub fn binary_search_trace(sorted: &[f64], target: f64) -> ThreadTrace {
    let mut t = ThreadTrace::new();
    let (mut lo, mut hi) = (0usize, sorted.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        t.read(mid);
        if sorted[mid] < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    t
}

/// Record the address trace of a Lomuto partition step (the heart of
/// quicksort): each element is read, and *conditionally* swapped — the
/// writes' addresses depend on how many elements were below the pivot so
/// far.
#[must_use]
pub fn partition_trace(data: &[f64]) -> ThreadTrace {
    let mut t = ThreadTrace::new();
    if data.is_empty() {
        return t;
    }
    let mut v = data.to_vec();
    let pivot = v[v.len() - 1];
    t.read(v.len() - 1);
    let mut store = 0usize;
    for i in 0..v.len() - 1 {
        t.read(i);
        if v[i] < pivot {
            // swap v[i] <-> v[store]
            t.read(store);
            t.write(store);
            t.write(i);
            v.swap(i, store);
            store += 1;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::check_oblivious;

    #[test]
    fn binary_search_is_rejected_by_the_checker() {
        let sorted: Vec<f64> = (0..64).map(|i| i as f64).collect();
        // Different targets walk different probe paths.
        let targets = vec![3.0, 40.0, 63.0, -1.0];
        let result = check_oblivious(|t| binary_search_trace(&sorted, *t), &targets);
        let violation = result.expect_err("binary search must not be oblivious");
        assert!(violation.step >= 1, "the first probe (the middle) is shared");
    }

    #[test]
    fn binary_search_first_probe_is_common() {
        // Step 0 always probes the middle — divergence appears later.
        let sorted: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let a = binary_search_trace(&sorted, 0.0);
        let b = binary_search_trace(&sorted, 15.0);
        assert_eq!(a.steps()[0], b.steps()[0]);
        assert_ne!(a.steps()[1], b.steps()[1]);
    }

    #[test]
    fn partition_is_rejected_by_the_checker() {
        let inputs = vec![vec![1.0, 9.0, 2.0, 8.0, 5.0], vec![9.0, 1.0, 8.0, 2.0, 5.0]];
        let result = check_oblivious(|d| partition_trace(d), &inputs);
        assert!(result.is_err(), "partition's swap writes are data-dependent");
    }

    #[test]
    fn partition_on_identical_inputs_is_consistent() {
        // Sanity: the checker does not produce false positives.
        let inputs = vec![vec![3.0, 1.0, 2.0], vec![3.0, 1.0, 2.0]];
        assert!(check_oblivious(|d| partition_trace(d), &inputs).is_ok());
    }
}
