//! Batcher's odd-even merge sort — a second, differently-wired sorting
//! network.
//!
//! Same asymptotics as the bitonic network (`O(n log² n)` comparators,
//! fixed wiring, hence oblivious) but a different access pattern, which
//! makes it a useful second data point for layout experiments: its strides
//! are powers of two like bitonic's, but its comparator density per stage
//! differs.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place Batcher odd-even merge sort of `n = 2^log2n` words, ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OddEvenMergeSort {
    /// log2 of the array length.
    pub log2n: u32,
}

impl OddEvenMergeSort {
    /// New network over `2^log2n` elements.
    #[must_use]
    pub fn new(log2n: u32) -> Self {
        Self { log2n }
    }

    /// Array length.
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.log2n
    }

    /// Whether the network is trivial.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log2n == 0
    }

    /// The comparator schedule `(lo, hi)` in execution order (always
    /// ascending comparators — Batcher's network sorts one direction).
    #[must_use]
    pub fn schedule(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        // Iterative Batcher odd-even merge sort (Knuth TAOCP 5.2.2M).
        let mut p = 1usize;
        while p < n {
            let mut k = p;
            while k >= 1 {
                for j in (k % p..n.saturating_sub(k)).step_by(2 * k) {
                    for i in 0..k.min(n - j - k) {
                        if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                            out.push((i + j, i + j + k));
                        }
                    }
                }
                k /= 2;
            }
            p *= 2;
        }
        out
    }
}

impl<W: Word> ObliviousProgram<W> for OddEvenMergeSort {
    fn name(&self) -> String {
        format!("oe-mergesort(n={})", self.len())
    }

    fn memory_words(&self) -> usize {
        self.len()
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.len()
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.len()
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        for (lo, hi) in self.schedule() {
            let a = m.read(lo);
            let b = m.read(hi);
            let mn = m.min(a, b);
            let mx = m.max(a, b);
            m.free(a);
            m.free(b);
            m.write(lo, mn);
            m.write(hi, mx);
            m.free(mn);
            m.free(mx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input};
    use oblivious::Layout;

    fn sorted_copy(x: &[f64]) -> Vec<f64> {
        let mut v = x.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn sorts_known_permutation() {
        let x = [7.0f64, 3.0, 1.0, 8.0, 2.0, 6.0, 5.0, 4.0];
        assert_eq!(run_on_input(&OddEvenMergeSort::new(3), &x), sorted_copy(&x));
    }

    #[test]
    fn exhaustive_zero_one_principle_n8() {
        // The 0-1 principle: a comparator network sorts all inputs iff it
        // sorts all 0/1 inputs.  n = 8 has only 256 of them — test all.
        let prog = OddEvenMergeSort::new(3);
        for mask in 0u32..256 {
            let x: Vec<f64> = (0..8).map(|b| f64::from((mask >> b) & 1)).collect();
            let out = run_on_input(&prog, &x);
            assert_eq!(out, sorted_copy(&x), "mask={mask:08b}");
        }
    }

    #[test]
    fn exhaustive_zero_one_principle_n16_sampled() {
        let prog = OddEvenMergeSort::new(4);
        // All 0/1 vectors with a stride-based sample plus the extremes.
        for step in 0..2048u32 {
            let mask = step.wrapping_mul(0x9E37) & 0xFFFF;
            let x: Vec<f64> = (0..16).map(|b| f64::from((mask >> b) & 1)).collect();
            let out = run_on_input(&prog, &x);
            assert_eq!(out, sorted_copy(&x), "mask={mask:016b}");
        }
    }

    #[test]
    fn sorts_all_sizes_pseudorandomly() {
        for log2n in 0..=6u32 {
            let n = 1usize << log2n;
            for seed in 0..3u64 {
                let x: Vec<f64> = (0..n)
                    .map(|i| {
                        let h = (i as u64).wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(seed);
                        ((h >> 33) % 997) as f64 - 498.0
                    })
                    .collect();
                assert_eq!(
                    run_on_input(&OddEvenMergeSort::new(log2n), &x),
                    sorted_copy(&x),
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn comparator_count_matches_batcher_formula() {
        // Batcher's network has p(p-1)/4 * n/... — rather than the closed
        // form, check against the known counts: n=4 -> 5, n=8 -> 19,
        // n=16 -> 63 (Knuth 5.2.2).
        assert_eq!(OddEvenMergeSort::new(2).schedule().len(), 5);
        assert_eq!(OddEvenMergeSort::new(3).schedule().len(), 19);
        assert_eq!(OddEvenMergeSort::new(4).schedule().len(), 63);
    }

    #[test]
    fn different_wiring_than_bitonic() {
        use crate::bitonic::BitonicSort;
        let oe = OddEvenMergeSort::new(4).schedule();
        let bi: Vec<(usize, usize)> =
            BitonicSort::new(4).schedule().iter().map(|&(a, b, _)| (a, b)).collect();
        assert_ne!(oe, bi, "the two networks are genuinely different");
        assert!(oe.len() < bi.len(), "Batcher uses fewer comparators");
    }

    #[test]
    fn bulk_sorts_every_instance() {
        let prog = OddEvenMergeSort::new(3);
        let inputs: Vec<Vec<f32>> = (0..7)
            .map(|s| (0..8).map(|i| (((i * 41 + s * 13) % 29) as f32) - 14.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        for layout in Layout::all() {
            let outs = bulk_execute(&prog, &refs, layout);
            for (inp, out) in inputs.iter().zip(&outs) {
                let mut want = inp.clone();
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(out, &want, "{layout}");
            }
        }
    }
}
