//! Algorithm OPT: optimal polygon triangulation by dynamic programming
//! (paper, Section IV).
//!
//! A convex `n`-gon with chord weights `c[i][j]` is triangulated by `n - 3`
//! non-crossing chords of minimum total weight.  The paper's oblivious DP:
//!
//! ```text
//! for i ← 1 to n-1:            M[i,i] ← 0
//! for i ← n-2 downto 1:
//!   for j ← i+1 to n-1:
//!     s ← +∞
//!     for k ← i to j-1:
//!       r ← M[i,k] + M[k+1,j]
//!       if r < s then s ← r else s ← s     // oblivious: both branches cost alike
//!     M[i,j] ← s + c[i-1,j]
//! ```
//!
//! `M[i,j]` is the optimal weight of the sub-polygon `v_{i-1} … v_j`
//! *including* its base chord `c[i-1,j]`, so the recurrence needs no inner
//! chord terms; edges (including the root edge `v_0 v_{n-1}`) must have
//! weight 0 for `M[1,n-1]` to be the triangulation weight.  The `s ← s` of
//! the paper becomes [`ObliviousMachine::select`] — the machine-level
//! oblivious conditional.
//!
//! The chords themselves are recovered from an optional argmin table by a
//! host-side walk (`recover_chords`), "a few extra bookkeeping steps" in the
//! paper's words.

use oblivious::{CmpOp, ObliviousMachine, ObliviousProgram, Word};

/// The OPT dynamic program over a convex `n`-gon.
///
/// Per-instance memory:
///
/// | region | addresses            | contents                          |
/// |--------|----------------------|-----------------------------------|
/// | `c`    | `0 .. n²`            | chord weights, row-major (input)  |
/// | `M`    | `n² .. 2n²`          | DP table                          |
/// | `K`    | `2n² .. 3n²`         | argmin table (iff `record_argmin`)|
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptTriangulation {
    /// Number of polygon vertices `n` (≥ 3).
    pub n: usize,
    /// Record the minimising `k` of every cell so chords can be recovered.
    pub record_argmin: bool,
}

impl OptTriangulation {
    /// Weight-only program (the paper's experimental configuration).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "a polygon needs at least 3 vertices");
        Self { n, record_argmin: false }
    }

    /// Program that additionally records argmin choices for chord recovery.
    #[must_use]
    pub fn with_argmin(n: usize) -> Self {
        let mut p = Self::new(n);
        p.record_argmin = true;
        p
    }

    /// Address of weight `c[i][j]`.
    #[inline]
    #[must_use]
    pub fn c_at(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }

    /// Address of DP cell `M[i][j]`.
    #[inline]
    #[must_use]
    pub fn m_at(&self, i: usize, j: usize) -> usize {
        self.n * self.n + i * self.n + j
    }

    /// Address of argmin cell `K[i][j]`.
    #[inline]
    #[must_use]
    pub fn k_at(&self, i: usize, j: usize) -> usize {
        2 * self.n * self.n + i * self.n + j
    }

    /// Absolute address of the answer `M[1][n-1]`.
    #[must_use]
    pub fn answer_address(&self) -> usize {
        self.m_at(1, self.n - 1)
    }

    /// Index of the answer within `output_range()`.
    #[must_use]
    pub fn answer_offset(&self) -> usize {
        self.answer_address() - self.n * self.n
    }
}

impl<W: Word> ObliviousProgram<W> for OptTriangulation {
    fn name(&self) -> String {
        format!(
            "opt-triangulation(n={}{})",
            self.n,
            if self.record_argmin { ",argmin" } else { "" }
        )
    }

    fn memory_words(&self) -> usize {
        let nn = self.n * self.n;
        if self.record_argmin {
            3 * nn
        } else {
            2 * nn
        }
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        let nn = self.n * self.n;
        if self.record_argmin {
            nn..3 * nn
        } else {
            nn..2 * nn
        }
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        // Diagonal initialisation: M[i,i] ← 0 for 1 ≤ i ≤ n-1.
        let zero = m.zero();
        for i in 1..n {
            m.write(self.m_at(i, i), zero);
        }
        // Main DP, outer diagonals exactly as in the paper.
        for i in (1..=n - 2).rev() {
            for j in (i + 1)..n {
                let mut s = m.pos_inf();
                let mut bestk =
                    if self.record_argmin { Some(m.constant(W::from_f64(i as f64))) } else { None };
                for k in i..j {
                    let m1 = m.read(self.m_at(i, k));
                    let m2 = m.read(self.m_at(k + 1, j));
                    let r = m.add(m1, m2);
                    m.free(m1);
                    m.free(m2);
                    if let Some(bk) = bestk {
                        let kc = m.constant(W::from_f64(k as f64));
                        let bk2 = m.select(CmpOp::Lt, r, s, kc, bk);
                        m.free(bk);
                        bestk = Some(bk2);
                    }
                    // if r < s then s ← r else s ← s
                    let s2 = m.select(CmpOp::Lt, r, s, r, s);
                    m.free(r);
                    m.free(s);
                    s = s2;
                }
                let cj = m.read(self.c_at(i - 1, j));
                let total = m.add(s, cj);
                m.free(cj);
                m.free(s);
                m.write(self.m_at(i, j), total);
                m.free(total);
                if let Some(bk) = bestk {
                    m.write(self.k_at(i, j), bk);
                    m.free(bk);
                }
            }
        }
    }
}

/// A chord-weight matrix for a convex `n`-gon.
///
/// Weights are symmetric; polygon edges — adjacent vertex pairs and the pair
/// `(0, n-1)` — have weight 0 by construction, matching the convention that
/// only true chords carry cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ChordWeights {
    n: usize,
    w: Vec<f64>,
}

impl ChordWeights {
    /// Build from a weight function over vertex pairs `i < j`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(n >= 3);
        let mut w = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let is_edge = j - i == 1 || (i == 0 && j == n - 1);
                let v = if is_edge { 0.0 } else { f(i, j) };
                w[i * n + j] = v;
                w[j * n + i] = v;
            }
        }
        Self { n, w }
    }

    /// Number of polygon vertices.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight of the (unordered) pair `{i, j}`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.w[i * self.n + j]
    }

    /// The row-major `n × n` matrix, as program input words.
    #[must_use]
    pub fn as_words<W: Word>(&self) -> Vec<W> {
        self.w.iter().map(|&x| W::from_f64(x)).collect()
    }
}

/// Plain-Rust reference DP.  Returns the optimal weight and (for `n ≥ 4`)
/// the chords of one optimal triangulation.
#[must_use]
pub fn reference(c: &ChordWeights) -> (f64, Vec<(usize, usize)>) {
    let n = c.n();
    let mut m = vec![vec![0.0f64; n]; n];
    let mut kk = vec![vec![0usize; n]; n];
    for i in (1..=n.saturating_sub(2)).rev() {
        for j in (i + 1)..n {
            let mut s = f64::INFINITY;
            let mut best = i;
            for k in i..j {
                let r = m[i][k] + m[k + 1][j];
                if r < s {
                    s = r;
                    best = k;
                }
            }
            m[i][j] = s + c.get(i - 1, j);
            kk[i][j] = best;
        }
    }
    let mut chords = Vec::new();
    if n >= 4 {
        collect_chords(&kk, 1, n - 1, n, &mut chords);
    }
    (m[1][n - 1], chords)
}

fn collect_chords(kk: &[Vec<usize>], i: usize, j: usize, n: usize, out: &mut Vec<(usize, usize)>) {
    if j <= i {
        return;
    }
    let k = kk[i][j];
    // The base chords of the two subproblems are real chords when they are
    // not polygon edges.
    if k > i && !is_edge(i - 1, k, n) {
        out.push((i - 1, k));
    }
    if j >= k + 2 && !is_edge(k, j, n) {
        out.push((k, j));
    }
    collect_chords(kk, i, k, n, out);
    collect_chords(kk, k + 1, j, n, out);
}

fn is_edge(a: usize, b: usize, n: usize) -> bool {
    let (a, b) = if a < b { (a, b) } else { (b, a) };
    b - a == 1 || (a == 0 && b == n - 1)
}

/// Recover the chords of an optimal triangulation from the extracted output
/// of an [`OptTriangulation::with_argmin`] run.
///
/// `output` is the program's `output_range()` slice (`M` then `K`).
#[must_use]
pub fn recover_chords<W: Word>(prog: &OptTriangulation, output: &[W]) -> Vec<(usize, usize)> {
    assert!(prog.record_argmin, "argmin table was not recorded");
    let n = prog.n;
    let nn = n * n;
    assert_eq!(output.len(), 2 * nn, "output must be M and K tables");
    let k_of = |i: usize, j: usize| output[nn + i * n + j].to_f64() as usize;
    let mut kk = vec![vec![0usize; n]; n];
    for (i, row) in kk.iter_mut().enumerate().skip(1) {
        for (j, cell) in row.iter_mut().enumerate().skip(i + 1) {
            *cell = k_of(i, j);
        }
    }
    let mut chords = Vec::new();
    if n >= 4 {
        collect_chords(&kk, 1, n - 1, n, &mut chords);
    }
    chords
}

/// Exhaustive minimum over all triangulations (Catalan many) — the oracle
/// for small polygons.
#[must_use]
pub fn brute_force(c: &ChordWeights) -> f64 {
    let n = c.n();
    fn rec(c: &ChordWeights, i: usize, j: usize) -> f64 {
        // Optimal triangulation of sub-polygon v_{i-1} .. v_j including its
        // base chord weight (mirrors the DP's invariant).
        if j <= i {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for k in i..j {
            let v = rec(c, i, k) + rec(c, k + 1, j);
            if v < best {
                best = v;
            }
        }
        best + c.get(i - 1, j)
    }
    rec(c, 1, n - 1)
}

/// Number of triangulations of a convex `n`-gon: the Catalan number
/// `C(n-2) = (2n-4)! / ((n-1)! (n-2)!)`.
#[must_use]
pub fn triangulation_count(n: usize) -> u128 {
    assert!(n >= 3);
    catalan((n - 2) as u32)
}

fn catalan(k: u32) -> u128 {
    // C(k) = binom(2k, k) / (k + 1), computed exactly in u128.
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 1..=u128::from(k) {
        num *= u128::from(k) + i;
        den *= i;
        let g = gcd(num, den);
        num /= g;
        den /= g;
    }
    num / den / (u128::from(k) + 1)
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::{theorems, Layout};

    fn pseudo_weights(n: usize, seed: u64) -> ChordWeights {
        // Deterministic integer-valued weights (exact in f32 and f64).
        ChordWeights::from_fn(n, |i, j| {
            let h = (i as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((j as u64).wrapping_mul(40503))
                .wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ((h >> 7) % 1000) as f64
        })
    }

    fn machine_answer(c: &ChordWeights) -> f64 {
        let prog = OptTriangulation::new(c.n());
        let out = run_on_input::<f64, _>(&prog, &c.as_words::<f64>());
        out[prog.answer_offset()]
    }

    #[test]
    fn triangle_needs_no_chords() {
        let c = pseudo_weights(3, 1);
        assert_eq!(machine_answer(&c), 0.0, "a triangle has zero chord weight");
    }

    #[test]
    fn matches_brute_force_on_small_polygons() {
        for n in 4..=9 {
            for seed in 0..3 {
                let c = pseudo_weights(n, seed);
                let bf = brute_force(&c);
                let (dp, _) = reference(&c);
                let mach = machine_answer(&c);
                assert_eq!(dp, bf, "reference DP vs brute force, n={n} seed={seed}");
                assert_eq!(mach, bf, "machine vs brute force, n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn paper_example_8gon_has_5_chords_6_triangles() {
        // Figure 3: a convex 8-gon is split into 6 triangles by 5 chords.
        let c = pseudo_weights(8, 42);
        let (_, chords) = reference(&c);
        assert_eq!(chords.len(), 8 - 3);
    }

    #[test]
    fn chords_are_noncrossing_and_weight_consistent() {
        for n in 4..=10 {
            let c = pseudo_weights(n, 7);
            let (w, chords) = reference(&c);
            assert_eq!(chords.len(), n - 3);
            // Total weight of chosen chords equals the DP value.
            let sum: f64 = chords.iter().map(|&(a, b)| c.get(a, b)).sum();
            assert_eq!(sum, w, "chord weights must sum to the optimum, n={n}");
            // Pairwise non-crossing: chords (a,b), (x,y) cross iff a<x<b<y.
            for (idx, &(a, b)) in chords.iter().enumerate() {
                assert!(!is_edge(a, b, n), "({a},{b}) is an edge, not a chord");
                for &(x, y) in &chords[idx + 1..] {
                    let crossing = (a < x && x < b && b < y) || (x < a && a < y && y < b);
                    assert!(!crossing, "chords ({a},{b}) and ({x},{y}) cross, n={n}");
                }
            }
        }
    }

    #[test]
    fn bulk_argmin_recovery_matches_reference() {
        let n = 8;
        let prog = OptTriangulation::with_argmin(n);
        let weights: Vec<ChordWeights> = (0..6).map(|s| pseudo_weights(n, s)).collect();
        let inputs: Vec<Vec<f64>> = weights.iter().map(|c| c.as_words()).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for layout in Layout::all() {
            let outs = bulk_execute(&prog, &refs, layout);
            for (c, out) in weights.iter().zip(&outs) {
                let (want_w, want_chords) = reference(c);
                assert_eq!(out[prog.answer_offset()], want_w, "{layout}");
                let chords = recover_chords(&prog, out);
                assert_eq!(chords.len(), n - 3);
                let sum: f64 = chords.iter().map(|&(a, b)| c.get(a, b)).sum();
                assert_eq!(sum, want_w, "{layout}");
                // Same optimum as the reference chords (sets may differ on ties).
                let ref_sum: f64 = want_chords.iter().map(|&(a, b)| c.get(a, b)).sum();
                assert_eq!(sum, ref_sum);
            }
        }
    }

    #[test]
    fn trace_length_matches_theorems_opt_steps() {
        for n in [3usize, 4, 6, 10, 16] {
            let t = time_steps::<f64, _>(&OptTriangulation::new(n)) as u64;
            assert_eq!(t, theorems::opt_steps(n as u64), "n={n}");
        }
    }

    #[test]
    fn f32_matches_f64_on_integer_weights() {
        let c = pseudo_weights(10, 3);
        let prog = OptTriangulation::new(10);
        let out32 = run_on_input::<f32, _>(&prog, &c.as_words::<f32>());
        let out64 = run_on_input::<f64, _>(&prog, &c.as_words::<f64>());
        assert_eq!(
            out32[prog.answer_offset()] as f64,
            out64[prog.answer_offset()],
            "integer weights are exact in f32"
        );
    }

    #[test]
    fn catalan_counts() {
        // C(1)=1, C(2)=2, C(3)=5, C(4)=14, C(10)=16796.
        assert_eq!(triangulation_count(3), 1);
        assert_eq!(triangulation_count(4), 2);
        assert_eq!(triangulation_count(5), 5);
        assert_eq!(triangulation_count(6), 14);
        assert_eq!(triangulation_count(12), 16796);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn degenerate_polygon_rejected() {
        let _ = OptTriangulation::new(2);
    }
}
