//! Oblivious binomial-coefficient table (Pascal's triangle DP).
//!
//! The smallest dynamic program there is: `C(i, j) = C(i-1, j-1) +
//! C(i-1, j)` over a fixed triangular schedule.  Useful as a
//! integer-exactness canary (binomials overflow f32 fast, so the tests
//! exercise the `u64` word path) and as a minimal DP for the model tables.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// Fill rows `0..=rows` of Pascal's triangle into a packed
/// `(rows+1) × (rows+1)` lower-triangular table (row-major square for
/// simplicity; upper entries stay zero).
///
/// No input: the program is a pure generator (its `input_range` is empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PascalTriangle {
    /// Largest row index `n` (table holds `C(0..=n, ·)`).
    pub rows: usize,
}

impl PascalTriangle {
    /// New program.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        Self { rows }
    }

    fn at(&self, i: usize, j: usize) -> usize {
        i * (self.rows + 1) + j
    }

    /// Offset of `C(i, j)` within `output_range()`.
    #[must_use]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        self.at(i, j)
    }
}

impl<W: Word> ObliviousProgram<W> for PascalTriangle {
    fn name(&self) -> String {
        format!("pascal(rows={})", self.rows)
    }

    fn memory_words(&self) -> usize {
        (self.rows + 1) * (self.rows + 1)
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..0
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..(self.rows + 1) * (self.rows + 1)
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let one = m.constant(W::ONE);
        let zero = m.zero();
        // Zero the table obliviously (scratch may be uninitialised).
        for i in 0..=self.rows {
            for j in 0..=self.rows {
                m.write(self.at(i, j), zero);
            }
        }
        m.write(self.at(0, 0), one);
        for i in 1..=self.rows {
            m.write(self.at(i, 0), one);
            for j in 1..=i {
                let a = m.read(self.at(i - 1, j - 1));
                let b = m.read(self.at(i - 1, j));
                let s = m.add(a, b);
                m.free(a);
                m.free(b);
                m.write(self.at(i, j), s);
                m.free(s);
            }
        }
    }
}

/// Exact reference binomial via u128 multiplicative formula.
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 1..=u128::from(k) {
        num *= u128::from(n) - i + 1;
        den *= i;
        let g = gcd(num, den);
        num /= g;
        den /= g;
    }
    num / den
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input};
    use oblivious::Layout;

    fn table(rows: usize) -> Vec<u64> {
        run_on_input::<u64, _>(&PascalTriangle::new(rows), &[])
    }

    #[test]
    fn small_rows_match_hand_values() {
        let p = PascalTriangle::new(4);
        let t = table(4);
        assert_eq!(t[p.offset(4, 0)], 1);
        assert_eq!(t[p.offset(4, 1)], 4);
        assert_eq!(t[p.offset(4, 2)], 6);
        assert_eq!(t[p.offset(4, 3)], 4);
        assert_eq!(t[p.offset(4, 4)], 1);
    }

    #[test]
    fn matches_multiplicative_formula_exactly() {
        let rows = 30usize;
        let p = PascalTriangle::new(rows);
        let t = table(rows);
        for i in 0..=rows {
            for j in 0..=i {
                assert_eq!(
                    u128::from(t[p.offset(i, j)]),
                    binomial(i as u64, j as u64),
                    "C({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rows_sum_to_powers_of_two() {
        let rows = 20usize;
        let p = PascalTriangle::new(rows);
        let t = table(rows);
        for i in 0..=rows {
            let sum: u64 = (0..=i).map(|j| t[p.offset(i, j)]).sum();
            assert_eq!(sum, 1u64 << i, "row {i}");
        }
    }

    #[test]
    fn zero_rows_is_just_one() {
        assert_eq!(table(0), vec![1]);
    }

    #[test]
    fn bulk_generator_with_no_input() {
        let prog = PascalTriangle::new(5);
        let empty: Vec<Vec<u64>> = vec![vec![]; 9];
        let refs: Vec<&[u64]> = empty.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
        assert_eq!(cpu[3][prog.offset(5, 2)], 10);
    }
}
