//! Offline permutation — the workload of the authors' companion papers.
//!
//! The paper's related-work section leans on "offline permutation
//! algorithms on the DMM and the UMM": applying a permutation that is
//! *known in advance* (part of the program, not the data).  Since the
//! destination of every element is fixed offline, the access schedule is
//! data-independent — oblivious by definition — even though an arbitrary
//! permutation has the worst possible spatial locality.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// Apply a fixed permutation: `dst[perm[i]] = src[i]`.
///
/// Memory: `src` at `0..n`, `dst` at `n..2n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflinePermute {
    perm: Vec<usize>,
}

impl OfflinePermute {
    /// Build from a permutation vector.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()` or empty.
    #[must_use]
    pub fn new(perm: Vec<usize>) -> Self {
        assert!(!perm.is_empty(), "permutation must be non-empty");
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n, "permutation entry {p} out of range 0..{n}");
            assert!(!seen[p], "duplicate permutation entry {p}");
            seen[p] = true;
        }
        Self { perm }
    }

    /// The identity permutation on `n` elements.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self::new((0..n).collect())
    }

    /// The reversal permutation on `n` elements.
    #[must_use]
    pub fn reversal(n: usize) -> Self {
        Self::new((0..n).rev().collect())
    }

    /// The perfect-shuffle (riffle) permutation on `n = 2m` elements:
    /// element `i` goes to `2i mod (n-1)` (last element fixed) — a classic
    /// stress pattern for interleaved memories.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n` is odd.
    #[must_use]
    pub fn perfect_shuffle(n: usize) -> Self {
        assert!(n >= 2 && n.is_multiple_of(2), "perfect shuffle needs even n >= 2");
        let mut perm = vec![0usize; n];
        for (i, p) in perm.iter_mut().enumerate().take(n - 1) {
            *p = (2 * i) % (n - 1);
        }
        perm[n - 1] = n - 1;
        Self::new(perm)
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True if the permutation is empty (never: constructor forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The underlying mapping.
    #[must_use]
    pub fn mapping(&self) -> &[usize] {
        &self.perm
    }
}

impl<W: Word> ObliviousProgram<W> for OfflinePermute {
    fn name(&self) -> String {
        format!("offline-permute(n={})", self.perm.len())
    }

    fn memory_words(&self) -> usize {
        2 * self.perm.len()
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.perm.len()
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        self.perm.len()..2 * self.perm.len()
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.perm.len();
        for (i, &dst) in self.perm.iter().enumerate() {
            let v = m.read(i);
            m.write(n + dst, v);
            m.free(v);
        }
    }
}

/// Plain-Rust reference permutation.
#[must_use]
pub fn reference<W: Copy>(src: &[W], perm: &[usize]) -> Vec<W> {
    assert_eq!(src.len(), perm.len());
    let mut dst = src.to_vec();
    for (i, &p) in perm.iter().enumerate() {
        dst[p] = src[i];
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    #[test]
    fn identity_and_reversal() {
        let x = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(run_on_input(&OfflinePermute::identity(4), &x), x.to_vec());
        assert_eq!(run_on_input(&OfflinePermute::reversal(4), &x), vec![4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn perfect_shuffle_interleaves() {
        // n = 8: i -> 2i mod 7: [0,2,4,6,1,3,5,7].
        let p = OfflinePermute::perfect_shuffle(8);
        let x: Vec<f64> = (0..8).map(f64::from).collect();
        let out = run_on_input(&p, &x);
        assert_eq!(out, reference(&x, p.mapping()));
        // Element 1 lands at position 2.
        assert_eq!(out[2], 1.0);
    }

    #[test]
    fn arbitrary_permutation_matches_reference() {
        let perm = vec![3usize, 0, 4, 1, 2];
        let prog = OfflinePermute::new(perm.clone());
        let x = [10.0f64, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(run_on_input(&prog, &x), reference(&x, &perm));
    }

    #[test]
    fn trace_is_one_read_one_write_per_element() {
        assert_eq!(time_steps::<f32, _>(&OfflinePermute::reversal(10)), 20);
    }

    #[test]
    fn shuffle_is_its_own_inverse_three_times_for_n8() {
        // The perfect shuffle of 8 cards has order 3.
        let p = OfflinePermute::perfect_shuffle(8);
        let x: Vec<f64> = (0..8).map(f64::from).collect();
        let mut v = x.clone();
        for _ in 0..3 {
            v = run_on_input(&p, &v);
        }
        assert_eq!(v, x);
    }

    #[test]
    fn bulk_matches_sequential() {
        let prog = OfflinePermute::perfect_shuffle(16);
        let inputs: Vec<Vec<f32>> =
            (0..9).map(|s| (0..16).map(|i| ((i * 7 + s * 3) % 13) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate permutation entry")]
    fn non_permutation_rejected() {
        let _ = OfflinePermute::new(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = OfflinePermute::new(vec![0, 5]);
    }
}
