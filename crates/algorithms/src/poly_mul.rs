//! Oblivious polynomial multiplication (full convolution).
//!
//! The product of two degree-`(n-1)` polynomials is the convolution of
//! their coefficient vectors — a doubly-nested index-scheduled loop, and
//! the workload whose `O(n log n)` upgrade is the FFT path
//! (`examples/signal_pipeline.rs` exercises the transform side; this is
//! the direct side, cross-checked against it in tests).

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// `c = a * b` for two `n`-coefficient polynomials.
///
/// Memory: `a` at `0..n`, `b` at `n..2n`, `c` (length `2n-1`) after that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyMul {
    /// Coefficient count per operand.
    pub n: usize,
}

impl PolyMul {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "polynomials must be non-empty");
        Self { n }
    }

    /// Length of the product (`2n - 1`).
    #[must_use]
    pub fn product_len(&self) -> usize {
        2 * self.n - 1
    }
}

impl<W: Word> ObliviousProgram<W> for PolyMul {
    fn name(&self) -> String {
        format!("poly-mul(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        2 * self.n + self.product_len()
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..2 * self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        2 * self.n..2 * self.n + self.product_len()
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        for k in 0..self.product_len() {
            let mut acc = m.zero();
            // c[k] = sum over i of a[i] * b[k - i], with i in range.
            let lo = k.saturating_sub(n - 1);
            let hi = k.min(n - 1);
            for i in lo..=hi {
                let a = m.read(i);
                let b = m.read(n + (k - i));
                let prod = m.mul(a, b);
                m.free(a);
                m.free(b);
                let acc2 = m.add(acc, prod);
                m.free(prod);
                m.free(acc);
                acc = acc2;
            }
            m.write(2 * n + k, acc);
            m.free(acc);
        }
    }
}

/// Plain-Rust reference convolution.
#[must_use]
pub fn reference(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut c = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            c[i + j] += x * y;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    fn mul(a: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(a.len(), b.len());
        let prog = PolyMul::new(a.len());
        let mut input = a.to_vec();
        input.extend_from_slice(b);
        run_on_input::<f64, _>(&prog, &input)
    }

    #[test]
    fn binomial_squared() {
        // (1 + x)^2 = 1 + 2x + x^2.
        assert_eq!(mul(&[1.0, 1.0], &[1.0, 1.0]), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn multiply_by_constant() {
        assert_eq!(mul(&[3.0], &[4.0]), vec![12.0]);
    }

    #[test]
    fn matches_reference() {
        let a = [1.0, -2.0, 0.5, 3.0];
        let b = [2.0, 0.0, -1.0, 1.5];
        assert_eq!(mul(&a, &b), reference(&a, &b));
    }

    #[test]
    fn matches_fft_based_product() {
        // Cross-algorithm check: zero-pad to 8 points, transform, multiply
        // pointwise, inverse-transform — must equal the direct convolution.
        use crate::fft::{dft_reference, pack, unpack};
        use crate::Fft;
        let a = [1.0f64, 2.0, 3.0, 4.0];
        let b = [-1.0, 0.5, 2.0, 1.0];
        let direct = mul(&a, &b);
        let to_pts = |v: &[f64]| -> Vec<(f64, f64)> {
            (0..8).map(|i| (*v.get(i).unwrap_or(&0.0), 0.0)).collect()
        };
        let fa = run_on_input::<f64, _>(&Fft::new(3), &pack::<f64>(&to_pts(&a)));
        let fb = run_on_input::<f64, _>(&Fft::new(3), &pack::<f64>(&to_pts(&b)));
        let (pa, pb) = (unpack::<f64>(&fa), unpack::<f64>(&fb));
        let pointwise: Vec<(f64, f64)> = pa
            .iter()
            .zip(&pb)
            .map(|(&(ar, ai), &(br, bi))| (ar * br - ai * bi, ar * bi + ai * br))
            .collect();
        let back = dft_reference(&pointwise, true);
        for (k, &d) in direct.iter().enumerate() {
            assert!((back[k].0 - d).abs() < 1e-9, "coefficient {k}: {} vs {d}", back[k].0);
        }
    }

    #[test]
    fn trace_counts_the_triangle() {
        // Total multiply-adds = n^2; each is 2 reads; plus 2n-1 writes.
        let n = 5usize;
        assert_eq!(time_steps::<f64, _>(&PolyMul::new(n)), n * n * 2 + (2 * n - 1));
    }

    #[test]
    fn bulk_matches_sequential() {
        let prog = PolyMul::new(4);
        let inputs: Vec<Vec<f32>> =
            (0..7).map(|s| (0..8).map(|i| ((i + s) % 5) as f32 - 2.0).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
