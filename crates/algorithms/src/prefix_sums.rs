//! Algorithm Prefix-sums (paper, Section III).
//!
//! ```text
//! r ← 0
//! for i ← 0 to n-1 do
//!     r ← r + b[i]
//!     b[i] ← r
//! ```
//!
//! The memory access function is `a(2i) = a(2i+1) = i`: one read and one
//! write per element, independent of the data — the paper's canonical
//! "quite simple" oblivious algorithm.

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place prefix-sums over an `n`-word array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixSums {
    /// Array length `n`.
    pub n: usize,
}

impl PrefixSums {
    /// New program for arrays of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "prefix-sums needs a non-empty array");
        Self { n }
    }
}

impl<W: Word> ObliviousProgram<W> for PrefixSums {
    fn name(&self) -> String {
        format!("prefix-sums(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let mut r = m.zero();
        for i in 0..self.n {
            let x = m.read(i);
            let r2 = m.add(r, x);
            m.free(x);
            m.free(r);
            m.write(i, r2);
            r = r2;
        }
        m.free(r);
    }
}

/// Plain-Rust reference implementation (for differential testing).
#[must_use]
pub fn reference<W: Word>(input: &[W]) -> Vec<W> {
    let mut r = W::ZERO;
    input
        .iter()
        .map(|&x| {
            r = W::apply_bin(oblivious::BinOp::Add, r, x);
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps, trace_of};
    use oblivious::{theorems, Layout, Model};
    use umm_core::{MachineConfig, Op, ThreadAction};

    #[test]
    fn computes_prefix_sums() {
        let out = run_on_input::<f64, _>(&PrefixSums::new(5), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(out, vec![1.0, 3.0, 6.0, 10.0, 15.0]);
    }

    #[test]
    fn matches_reference_on_negatives_and_zeros() {
        let input = [0.5f64, -2.0, 0.0, 7.25, -0.25, 3.0];
        let out = run_on_input(&PrefixSums::new(6), &input);
        assert_eq!(out, reference(&input));
    }

    #[test]
    fn works_on_integer_words() {
        let input = [1u64, 10, 100];
        let out = run_on_input(&PrefixSums::new(3), &input);
        assert_eq!(out, vec![1, 11, 111]);
    }

    #[test]
    fn trace_is_the_papers_address_function() {
        // a(2i) = a(2i + 1) = i, read then write.
        let t = trace_of::<f32, _>(&PrefixSums::new(4));
        assert_eq!(t.len(), 8);
        for i in 0..4 {
            assert_eq!(t.steps()[2 * i], ThreadAction::Access(Op::Read, i));
            assert_eq!(t.steps()[2 * i + 1], ThreadAction::Access(Op::Write, i));
        }
    }

    #[test]
    fn time_steps_is_2n() {
        for n in [1usize, 2, 7, 32] {
            assert_eq!(
                time_steps::<f32, _>(&PrefixSums::new(n)) as u64,
                theorems::prefix_sums_steps(n as u64)
            );
        }
    }

    #[test]
    fn bulk_equals_sequential_both_layouts() {
        let inputs: Vec<Vec<f32>> =
            (0..9).map(|j| (0..6).map(|i| (j * 6 + i) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let expected: Vec<Vec<f32>> = inputs.iter().map(|v| reference(v)).collect();
        for layout in Layout::all() {
            let out = bulk_execute(&PrefixSums::new(6), &refs, layout);
            assert_eq!(out, expected, "{layout}");
        }
    }

    #[test]
    fn model_time_matches_lemma_1_exactly() {
        // Lemma 1: row-wise O(np + nl), column-wise O(np/w + nl); the exact
        // round-synchronous totals are (p + l - 1)·2n and (p/w + l - 1)·2n
        // when p is a multiple of w and n >= w (aligned column bases).
        let cfg = MachineConfig::new(4, 5);
        let (n, p) = (8usize, 32usize);
        let prog = PrefixSums::new(n);
        let t = theorems::prefix_sums_steps(n as u64);
        let row = oblivious::program::bulk_model_time::<f32, _>(
            &prog,
            cfg,
            Model::Umm,
            Layout::RowWise,
            p,
        );
        assert_eq!(row, theorems::row_wise_time(t, p as u64, 5));
        let col = oblivious::program::bulk_model_time::<f32, _>(
            &prog,
            cfg,
            Model::Umm,
            Layout::ColumnWise,
            p,
        );
        assert_eq!(col, theorems::column_wise_time(t, p as u64, 4, 5));
    }

    #[test]
    fn column_wise_meets_theorem_3_within_2x() {
        let cfg = MachineConfig::new(32, 100);
        let (n, p) = (32usize, 1024usize);
        let prog = PrefixSums::new(n);
        let t = theorems::prefix_sums_steps(n as u64);
        let col = oblivious::program::bulk_model_time::<f32, _>(
            &prog,
            cfg,
            Model::Umm,
            Layout::ColumnWise,
            p,
        );
        let ratio = theorems::optimality_ratio(col, t, p as u64, 32, 100);
        assert!(ratio <= 2.0, "column-wise is time-optimal (Theorem 3), ratio {ratio}");
    }

    #[test]
    fn single_element_array() {
        let out = run_on_input::<f64, _>(&PrefixSums::new(1), &[42.0]);
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_rejected() {
        let _ = PrefixSums::new(0);
    }
}
