//! Oblivious summed-area table (2-D inclusive prefix sums).
//!
//! The two-dimensional generalisation of the paper's running example: two
//! sweeps of the 1-D prefix-sums pattern, one along rows and one along
//! columns.  Summed-area tables are the image-processing workhorse for
//! box filters — a realistic bulk workload (one table per image tile).

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place summed-area table over an `h × w` row-major image.
///
/// On exit, cell `(i, j)` holds `Σ_{i' ≤ i, j' ≤ j} input[i'][j']`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummedArea {
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
}

impl SummedArea {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    #[must_use]
    pub fn new(h: usize, w: usize) -> Self {
        assert!(h > 0 && w > 0, "image must be non-empty");
        Self { h, w }
    }

    /// Query the sum over the inclusive rectangle `(i0, j0) ..= (i1, j1)`
    /// from a computed table — the O(1) box-filter read (host-side).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is out of bounds or inverted.
    #[must_use]
    pub fn box_sum<W: Word>(
        &self,
        table: &[W],
        (i0, j0): (usize, usize),
        (i1, j1): (usize, usize),
    ) -> f64 {
        assert!(i0 <= i1 && j0 <= j1 && i1 < self.h && j1 < self.w, "bad rectangle");
        let at = |i: isize, j: isize| -> f64 {
            if i < 0 || j < 0 {
                0.0
            } else {
                table[i as usize * self.w + j as usize].to_f64()
            }
        };
        at(i1 as isize, j1 as isize)
            - at(i0 as isize - 1, j1 as isize)
            - at(i1 as isize, j0 as isize - 1)
            + at(i0 as isize - 1, j0 as isize - 1)
    }
}

impl<W: Word> ObliviousProgram<W> for SummedArea {
    fn name(&self) -> String {
        format!("summed-area({}x{})", self.h, self.w)
    }

    fn memory_words(&self) -> usize {
        self.h * self.w
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.h * self.w
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.h * self.w
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        // Row sweep: 1-D prefix sums along each row.
        for i in 0..self.h {
            let mut r = m.zero();
            for j in 0..self.w {
                let x = m.read(i * self.w + j);
                let r2 = m.add(r, x);
                m.free(x);
                m.free(r);
                m.write(i * self.w + j, r2);
                r = r2;
            }
            m.free(r);
        }
        // Column sweep: 1-D prefix sums down each column.
        for j in 0..self.w {
            let mut r = m.zero();
            for i in 0..self.h {
                let x = m.read(i * self.w + j);
                let r2 = m.add(r, x);
                m.free(x);
                m.free(r);
                m.write(i * self.w + j, r2);
                r = r2;
            }
            m.free(r);
        }
    }
}

/// Plain-Rust reference summed-area table.
#[must_use]
pub fn reference(img: &[f64], h: usize, w: usize) -> Vec<f64> {
    assert_eq!(img.len(), h * w);
    let mut t = img.to_vec();
    for i in 0..h {
        for j in 1..w {
            t[i * w + j] += t[i * w + j - 1];
        }
    }
    for j in 0..w {
        for i in 1..h {
            t[i * w + j] += t[(i - 1) * w + j];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    #[test]
    fn all_ones_gives_rectangle_areas() {
        let prog = SummedArea::new(3, 4);
        let out = run_on_input::<f64, _>(&prog, &[1.0; 12]);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(out[i * 4 + j], ((i + 1) * (j + 1)) as f64);
            }
        }
    }

    #[test]
    fn matches_reference() {
        let (h, w) = (5, 7);
        let img: Vec<f64> = (0..h * w).map(|x| ((x * 13 + 5) % 9) as f64 - 4.0).collect();
        let out = run_on_input::<f64, _>(&SummedArea::new(h, w), &img);
        assert_eq!(out, reference(&img, h, w));
    }

    #[test]
    fn box_sum_recovers_regions() {
        let (h, w) = (4, 4);
        let img: Vec<f64> = (0..16).map(f64::from).collect();
        let prog = SummedArea::new(h, w);
        let table = run_on_input::<f64, _>(&prog, &img);
        // Every rectangle equals the naive sum.
        for i0 in 0..h {
            for j0 in 0..w {
                for i1 in i0..h {
                    for j1 in j0..w {
                        let mut naive = 0.0;
                        for i in i0..=i1 {
                            for j in j0..=j1 {
                                naive += img[i * w + j];
                            }
                        }
                        assert_eq!(prog.box_sum(&table, (i0, j0), (i1, j1)), naive);
                    }
                }
            }
        }
    }

    #[test]
    fn trace_is_two_sweeps() {
        let (h, w) = (3usize, 5usize);
        // Each sweep: 1 read + 1 write per cell.
        assert_eq!(time_steps::<f32, _>(&SummedArea::new(h, w)), 2 * 2 * h * w);
    }

    #[test]
    fn bulk_matches_sequential() {
        let prog = SummedArea::new(4, 4);
        let inputs: Vec<Vec<f32>> =
            (0..9).map(|s| (0..16).map(|i| ((i + s * 5) % 7) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }

    #[test]
    #[should_panic(expected = "bad rectangle")]
    fn inverted_rectangle_rejected() {
        let prog = SummedArea::new(2, 2);
        let table = run_on_input::<f64, _>(&prog, &[1.0; 4]);
        let _ = prog.box_sum(&table, (1, 1), (0, 0));
    }
}
