//! Oblivious matrix transpose.
//!
//! Transpose is *the* canonical memory-layout workload: every access is
//! index-scheduled, and the read and write strides cannot both be unit —
//! which is why it is a classic GPU coalescing case study.  In-place for
//! square matrices (swap schedule over the upper triangle).

use oblivious::{ObliviousMachine, ObliviousProgram, Word};

/// In-place transpose of an `n × n` row-major matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transpose {
    /// Matrix dimension.
    pub n: usize,
}

impl Transpose {
    /// New program.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self { n }
    }
}

impl<W: Word> ObliviousProgram<W> for Transpose {
    fn name(&self) -> String {
        format!("transpose(n={})", self.n)
    }

    fn memory_words(&self) -> usize {
        self.n * self.n
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }

    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let n = self.n;
        for i in 0..n {
            for j in (i + 1)..n {
                let a = m.read(i * n + j);
                let b = m.read(j * n + i);
                m.write(i * n + j, b);
                m.write(j * n + i, a);
                m.free(a);
                m.free(b);
            }
        }
    }
}

/// Plain-Rust reference transpose.
#[must_use]
pub fn reference<W: Copy>(a: &[W], n: usize) -> Vec<W> {
    assert_eq!(a.len(), n * n);
    let mut out = a.to_vec();
    for i in 0..n {
        for j in 0..n {
            out[j * n + i] = a[i * n + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    #[test]
    fn transposes_a_3x3() {
        let a: Vec<f64> = (0..9).map(f64::from).collect();
        let out = run_on_input(&Transpose::new(3), &a);
        assert_eq!(out, reference(&a, 3));
        assert_eq!(out[1], 3.0);
        assert_eq!(out[3], 1.0);
    }

    #[test]
    fn double_transpose_is_identity() {
        let a: Vec<f64> = (0..25).map(|x| (x * x) as f64).collect();
        let once = run_on_input(&Transpose::new(5), &a);
        let twice = run_on_input(&Transpose::new(5), &once);
        assert_eq!(twice, a);
    }

    #[test]
    fn one_by_one_is_noop() {
        assert_eq!(run_on_input::<f64, _>(&Transpose::new(1), &[7.0]), vec![7.0]);
    }

    #[test]
    fn trace_is_upper_triangle_swaps() {
        // n(n-1)/2 swaps, 4 accesses each.
        let n = 6usize;
        assert_eq!(time_steps::<f32, _>(&Transpose::new(n)), n * (n - 1) / 2 * 4);
    }

    #[test]
    fn bulk_matches_sequential() {
        let n = 4;
        let inputs: Vec<Vec<f32>> =
            (0..9).map(|s| (0..16).map(|i| ((i * 3 + s) % 11) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = Transpose::new(n);
        let cpu = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), cpu, "{layout}");
        }
    }
}
