//! XTEA block cipher — the paper's "encryption/decryption" class.
//!
//! XTEA's Feistel rounds use only shifts, XORs and additions, and its key
//! schedule indexes the key by `sum & 3` / `(sum >> 11) & 3` where `sum` is
//! a round *constant* — so every memory access is statically scheduled and
//! the cipher is oblivious.  Bulk execution over many blocks is exactly the
//! ECB encryption of a long message, one instance per block.

use oblivious::{ObliviousMachine, ObliviousProgram};

const DELTA: u32 = 0x9E37_79B9;

/// XTEA over `blocks` 64-bit blocks with a shared 128-bit key.
///
/// Memory: key (4 words) at `0..4`, then `2 * blocks` data words.  The key
/// and data are input; the transformed data words are the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xtea {
    /// Number of 64-bit blocks processed per instance.
    pub blocks: usize,
    /// Feistel cycles (the standard cipher uses 32).
    pub rounds: u32,
    /// Decrypt instead of encrypt.
    pub decrypt: bool,
}

impl Xtea {
    /// Standard 32-cycle encryption.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0` or `rounds == 0`.
    #[must_use]
    pub fn encrypt(blocks: usize) -> Self {
        Self::with_rounds(blocks, 32, false)
    }

    /// Standard 32-cycle decryption.
    #[must_use]
    pub fn decrypt(blocks: usize) -> Self {
        Self::with_rounds(blocks, 32, true)
    }

    /// Custom round count (reduced-round variants for tests/benches).
    #[must_use]
    pub fn with_rounds(blocks: usize, rounds: u32, decrypt: bool) -> Self {
        assert!(blocks > 0, "need at least one block");
        assert!(rounds > 0, "need at least one round");
        Self { blocks, rounds, decrypt }
    }
}

impl ObliviousProgram<u32> for Xtea {
    fn name(&self) -> String {
        format!(
            "xtea-{}(blocks={},rounds={})",
            if self.decrypt { "dec" } else { "enc" },
            self.blocks,
            self.rounds
        )
    }

    fn memory_words(&self) -> usize {
        4 + 2 * self.blocks
    }

    fn input_range(&self) -> core::ops::Range<usize> {
        0..4 + 2 * self.blocks
    }

    fn output_range(&self) -> core::ops::Range<usize> {
        4..4 + 2 * self.blocks
    }

    fn run<M: ObliviousMachine<u32>>(&self, m: &mut M) {
        use oblivious::UnOp;
        // Hoist the four key words into registers: 4 reads total.
        let key = [m.read(0), m.read(1), m.read(2), m.read(3)];

        // One Feistel half-round: target += (((other << 4) ^ (other >> 5))
        //                                    + other) ^ (sum + key[idx]).
        // `sum` and `idx` are compile-time constants per round.
        let mix = |m: &mut M, target: M::Value, other: M::Value, sum: u32, idx: usize| {
            let s1 = m.unop(UnOp::Shl(4), other);
            let s2 = m.unop(UnOp::Shr(5), other);
            let x = m.xor(s1, s2);
            m.free(s1);
            m.free(s2);
            let y = m.add(x, other);
            m.free(x);
            let sc = m.constant(sum);
            let z = m.add(sc, key[idx]);
            let t = m.xor(y, z);
            m.free(y);
            m.free(z);
            let out = if self.decrypt { m.sub(target, t) } else { m.add(target, t) };
            m.free(t);
            m.free(target);
            out
        };

        for b in 0..self.blocks {
            let a0 = 4 + 2 * b;
            let a1 = a0 + 1;
            let mut v0 = m.read(a0);
            let mut v1 = m.read(a1);
            if self.decrypt {
                let mut sum = DELTA.wrapping_mul(self.rounds);
                for _ in 0..self.rounds {
                    v1 = mix(m, v1, v0, sum, ((sum >> 11) & 3) as usize);
                    sum = sum.wrapping_sub(DELTA);
                    v0 = mix(m, v0, v1, sum, (sum & 3) as usize);
                }
            } else {
                let mut sum = 0u32;
                for _ in 0..self.rounds {
                    v0 = mix(m, v0, v1, sum, (sum & 3) as usize);
                    sum = sum.wrapping_add(DELTA);
                    v1 = mix(m, v1, v0, sum, ((sum >> 11) & 3) as usize);
                }
            }
            m.write(a0, v0);
            m.write(a1, v1);
            m.free(v0);
            m.free(v1);
        }
        for k in key {
            m.free(k);
        }
    }
}

/// Plain-Rust reference XTEA encipher of one block.
#[must_use]
pub fn encipher_reference(rounds: u32, v: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let (mut v0, mut v1) = (v[0], v[1]);
    let mut sum = 0u32;
    for _ in 0..rounds {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    [v0, v1]
}

/// Plain-Rust reference XTEA decipher of one block.
#[must_use]
pub fn decipher_reference(rounds: u32, v: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let (mut v0, mut v1) = (v[0], v[1]);
    let mut sum = DELTA.wrapping_mul(rounds);
    for _ in 0..rounds {
        v1 = v1.wrapping_sub(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(DELTA);
        v0 = v0.wrapping_sub(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
    }
    [v0, v1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::program::{bulk_execute, run_on_input, time_steps};
    use oblivious::Layout;

    const KEY: [u32; 4] = [0x0001_0203, 0x0405_0607, 0x0809_0A0B, 0x0C0D_0E0F];

    fn machine_encrypt(
        blocks: &[[u32; 2]],
        key: [u32; 4],
        rounds: u32,
        decrypt: bool,
    ) -> Vec<[u32; 2]> {
        let prog = Xtea::with_rounds(blocks.len(), rounds, decrypt);
        let mut input = key.to_vec();
        for b in blocks {
            input.extend_from_slice(b);
        }
        let out = run_on_input(&prog, &input);
        out.chunks_exact(2).map(|c| [c[0], c[1]]).collect()
    }

    #[test]
    fn reference_roundtrips() {
        let v = [0x4142_4344, 0x4546_4748];
        let c = encipher_reference(32, v, KEY);
        assert_ne!(c, v);
        assert_eq!(decipher_reference(32, c, KEY), v);
    }

    #[test]
    fn machine_matches_reference_encrypt() {
        let blocks = [[1u32, 2], [0xDEAD_BEEF, 0xCAFE_BABE], [0, 0]];
        let got = machine_encrypt(&blocks, KEY, 32, false);
        for (b, g) in blocks.iter().zip(&got) {
            assert_eq!(*g, encipher_reference(32, *b, KEY));
        }
    }

    #[test]
    fn machine_matches_reference_decrypt() {
        let blocks = [[7u32, 8], [9, 10]];
        let enc: Vec<[u32; 2]> = blocks.iter().map(|&b| encipher_reference(32, b, KEY)).collect();
        let got = machine_encrypt(&enc, KEY, 32, true);
        assert_eq!(got, blocks.to_vec());
    }

    #[test]
    fn machine_roundtrip_many_rounds() {
        for rounds in [1u32, 2, 16, 32, 64] {
            let blocks = [[0x0123_4567u32, 0x89AB_CDEF]];
            let c = machine_encrypt(&blocks, KEY, rounds, false);
            let p = machine_encrypt(&c, KEY, rounds, true);
            assert_eq!(p, blocks.to_vec(), "rounds={rounds}");
        }
    }

    #[test]
    fn avalanche_single_bit_flip() {
        let a = encipher_reference(32, [0, 0], KEY);
        let b = encipher_reference(32, [1, 0], KEY);
        let flipped = (a[0] ^ b[0]).count_ones() + (a[1] ^ b[1]).count_ones();
        assert!(flipped >= 16, "one plaintext bit should flip many ciphertext bits, got {flipped}");
    }

    #[test]
    fn key_reads_are_hoisted() {
        // 4 key reads + 2 reads and 2 writes per block.
        let prog = Xtea::encrypt(10);
        assert_eq!(time_steps::<u32, _>(&prog), 4 + 10 * 4);
    }

    #[test]
    fn bulk_ecb_encryption_matches_per_block() {
        // Each bulk instance is an independent (key, message) pair.
        let prog = Xtea::encrypt(2);
        let instances: Vec<Vec<u32>> = (0..5u32)
            .map(|s| {
                let mut v = vec![s, s + 1, s + 2, s + 3]; // key
                v.extend_from_slice(&[s * 17, s * 31, s * 7, s * 3]); // 2 blocks
                v
            })
            .collect();
        let refs: Vec<&[u32]> = instances.iter().map(|v| v.as_slice()).collect();
        for layout in Layout::all() {
            let outs = bulk_execute(&prog, &refs, layout);
            for (inst, out) in instances.iter().zip(&outs) {
                let key = [inst[0], inst[1], inst[2], inst[3]];
                let want0 = encipher_reference(32, [inst[4], inst[5]], key);
                let want1 = encipher_reference(32, [inst[6], inst[7]], key);
                assert_eq!(&out[0..2], &want0, "{layout}");
                assert_eq!(&out[2..4], &want1, "{layout}");
            }
        }
    }
}
