//! Least-squares fitting of the paper's latency + throughput model.
//!
//! Section V summarises each measured curve as a fixed overhead plus a
//! per-input slope — e.g. row-wise prefix-sums for `n = 32` as
//! "`37µs + (8.09 p) ns`".  [`fit_affine`] recovers exactly that `a + b·p`
//! decomposition from a measured sweep.

/// An affine model `time ≈ intercept + slope * p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineFit {
    /// Fixed overhead in seconds (the paper's `O(l·t)` latency floor).
    pub intercept: f64,
    /// Per-input cost in seconds (the paper's `O(t/w)` throughput slope).
    pub slope: f64,
    /// Coefficient of determination on the fitted points.
    pub r_squared: f64,
}

impl AffineFit {
    /// Predicted time at `p`.
    #[must_use]
    pub fn predict(&self, p: f64) -> f64 {
        self.intercept + self.slope * p
    }

    /// Paper-style summary, e.g. `"37.0µs + 8.09·p ns"`.
    #[must_use]
    pub fn paper_style(&self) -> String {
        format!("{:.3}µs + {:.3}·p ns", self.intercept * 1e6, self.slope * 1e9)
    }
}

/// The `p` at which two affine models cross (`a.predict(p) ==
/// b.predict(p)`), if they cross at a positive `p`.
///
/// The paper's "column-wise is faster than the CPU when p ≥ …" claims are
/// crossovers of this kind: a device series with a higher intercept
/// (latency floor) but a lower slope overtakes the CPU past the returned
/// point.
#[must_use]
pub fn crossover(a: &AffineFit, b: &AffineFit) -> Option<f64> {
    let dslope = a.slope - b.slope;
    if dslope.abs() < f64::EPSILON {
        return None;
    }
    let p = (b.intercept - a.intercept) / dslope;
    (p > 0.0).then_some(p)
}

/// Ordinary least squares on `(p, seconds)` samples.
///
/// # Panics
///
/// Panics with fewer than two samples or when all `p` coincide.
#[must_use]
pub fn fit_affine(samples: &[(f64, f64)]) -> AffineFit {
    assert!(samples.len() >= 2, "need at least two samples to fit a line");
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > f64::EPSILON * sxx.max(1.0), "samples must span distinct p values");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = samples.iter().map(|s| (s.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = samples.iter().map(|s| (s.1 - (intercept + slope * s.0)).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    AffineFit { intercept, slope, r_squared }
}

/// Fit only the asymptotic (large-`p`) tail: the paper reads the slope off
/// the region where "the computing time is proportional to p"; including
/// the latency-dominated small-`p` plateau would bias it.  Keeps the
/// largest-`p` half of the samples (at least two).
#[must_use]
pub fn fit_affine_tail(samples: &[(f64, f64)]) -> AffineFit {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite p"));
    let keep = (sorted.len() / 2).max(2).min(sorted.len());
    fit_affine(&sorted[sorted.len() - keep..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let samples: Vec<(f64, f64)> =
            (1..10).map(|p| (p as f64, 3.5e-5 + 8.09e-9 * p as f64)).collect();
        let fit = fit_affine(&samples);
        assert!((fit.intercept - 3.5e-5).abs() < 1e-12);
        assert!((fit.slope - 8.09e-9).abs() < 1e-15);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn paper_style_formatting() {
        let fit = AffineFit { intercept: 37e-6, slope: 8.09e-9, r_squared: 1.0 };
        assert_eq!(fit.paper_style(), "37.000µs + 8.090·p ns");
    }

    #[test]
    fn tail_fit_ignores_latency_plateau() {
        // Flat at 40µs until p = 1024, then linear at 2 ns/p.
        let samples: Vec<(f64, f64)> = (6..22)
            .map(|e| {
                let p = (1u64 << e) as f64;
                (p, (40e-6f64).max(2e-9 * p))
            })
            .collect();
        let tail = fit_affine_tail(&samples);
        assert!(
            (tail.slope - 2e-9).abs() < 2e-10,
            "tail slope should be ~2 ns, got {}",
            tail.slope * 1e9
        );
        let full = fit_affine(&samples);
        assert!(full.r_squared <= tail.r_squared + 1e-12);
    }

    #[test]
    fn crossover_finds_the_overtake_point() {
        // Device: 40µs floor + 1 ns/p; CPU: 0 floor + 9 ns/p.
        let dev = AffineFit { intercept: 40e-6, slope: 1e-9, r_squared: 1.0 };
        let cpu = AffineFit { intercept: 0.0, slope: 9e-9, r_squared: 1.0 };
        let p = crossover(&dev, &cpu).expect("they cross");
        assert!((p - 5000.0).abs() < 1.0, "40µs / 8ns = 5000, got {p}");
        // Parallel lines never cross; past-crossings return None.
        assert!(crossover(&dev, &dev).is_none());
        let slower = AffineFit { intercept: 80e-6, slope: 9e-9, r_squared: 1.0 };
        assert!(crossover(&cpu, &slower).is_none(), "crossing at negative p");
    }

    #[test]
    fn predict_is_affine() {
        let fit = AffineFit { intercept: 1.0, slope: 2.0, r_squared: 1.0 };
        assert_eq!(fit.predict(10.0), 21.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn one_sample_rejected() {
        let _ = fit_affine(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "distinct p")]
    fn degenerate_x_rejected() {
        let _ = fit_affine(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
