//! # analytic — performance models, fits, and report plumbing
//!
//! Everything the bench harness needs to turn raw timings into the paper's
//! evaluation artefacts:
//!
//! * [`model`] — the UMM closed-form predictions (row/column/lower bound),
//!   layout-gap asymptotics, and latency-saturation knees;
//! * [`fit`] — least-squares recovery of the paper's `a + b·p`
//!   latency/throughput summaries ("37µs + 8.09·p ns");
//! * [`mod@speedup`] — sweep series and pointwise speedups (Figures 11(2),
//!   12(2));
//! * [`report`] — fixed-width tables, CSV, and `p`-sweep helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod model;
pub mod report;
pub mod speedup;

pub use fit::{crossover, fit_affine, fit_affine_tail, AffineFit};
pub use model::{layout_gap, predict, saturation_p, UmmPrediction};
pub use report::{csv, format_p, format_ratio, format_value, p_sweep, table, table_fmt};
pub use speedup::{first_reaching, peak, speedup, Series, SweepPoint};
