//! Closed-form UMM performance model and derived quantities.
//!
//! Thin wrappers over `oblivious::theorems`-style arithmetic, kept here so
//! the bench harness can reason about sweeps (predicted series, crossover
//! points, saturation thresholds) without dragging in program execution.

use umm_core::MachineConfig;

/// Predicted bulk execution time on the UMM, in time units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UmmPrediction {
    /// Row-wise arrangement: `(p + l - 1) · t`.
    pub row_wise: u64,
    /// Column-wise arrangement: `(⌈p/w⌉ + l - 1) · t`.
    pub column_wise: u64,
    /// Theorem 3 lower bound: `max(⌈pt/w⌉, l·t)`.
    pub lower_bound: u64,
}

/// Evaluate the model for an oblivious algorithm of `t` memory steps bulk
/// executed on `p` inputs.
#[must_use]
pub fn predict(cfg: &MachineConfig, t: u64, p: u64) -> UmmPrediction {
    let (w, l) = (cfg.width as u64, cfg.latency as u64);
    UmmPrediction {
        row_wise: (p + l - 1) * t,
        column_wise: (p.div_ceil(w) + l - 1) * t,
        lower_bound: ((p * t).div_ceil(w)).max(l * t),
    }
}

/// The ratio `row/column` as `p → ∞` is `w`; at finite `p` it is smaller
/// because the `l - 1` pipeline fill amortises both.  This returns the
/// model ratio at a concrete `p`.
#[must_use]
pub fn layout_gap(cfg: &MachineConfig, t: u64, p: u64) -> f64 {
    let pr = predict(cfg, t, p);
    pr.row_wise as f64 / pr.column_wise as f64
}

/// Smallest `p` (scanning powers of two up to `max_p`) at which the
/// column-wise time exceeds `factor ×` its latency floor `(l-1+1)·t` —
/// i.e. where throughput starts to dominate latency, the knee visible in
/// the paper's Figure 11 around `p ≈ 16K`.
#[must_use]
pub fn saturation_p(cfg: &MachineConfig, t: u64, factor: f64, max_p: u64) -> Option<u64> {
    let l = cfg.latency as u64;
    let floor = l * t; // (1 stage + l - 1) per round
    let mut p = 1u64;
    while p <= max_p {
        if predict(cfg, t, p).column_wise as f64 >= factor * floor as f64 {
            return Some(p);
        }
        p *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_matches_theorem_formulas() {
        let cfg = MachineConfig::new(32, 100);
        let pr = predict(&cfg, 64, 1024);
        assert_eq!(pr.row_wise, (1024 + 99) * 64);
        assert_eq!(pr.column_wise, (32 + 99) * 64);
        assert_eq!(pr.lower_bound, 100 * 64);
        assert!(pr.lower_bound <= pr.column_wise);
    }

    #[test]
    fn gap_approaches_w() {
        let cfg = MachineConfig::new(32, 4);
        let small = layout_gap(&cfg, 100, 64);
        let big = layout_gap(&cfg, 100, 1 << 22);
        assert!(small < big, "gap grows with p");
        assert!((big - 32.0).abs() < 0.5, "asymptote is w, got {big}");
    }

    #[test]
    fn saturation_point_scales_with_latency() {
        let t = 64;
        let fast = MachineConfig::new(32, 8);
        let slow = MachineConfig::new(32, 512);
        let pf = saturation_p(&fast, t, 2.0, 1 << 30).unwrap();
        let ps = saturation_p(&slow, t, 2.0, 1 << 30).unwrap();
        assert!(ps > pf, "higher latency defers saturation: {ps} vs {pf}");
    }

    #[test]
    fn saturation_none_when_out_of_range() {
        let cfg = MachineConfig::new(32, 1 << 20);
        assert_eq!(saturation_p(&cfg, 10, 100.0, 64), None);
    }
}
