//! Fixed-width tables and CSV emission for the harness binaries.

use crate::speedup::Series;

/// Render a set of series sharing a `p` sweep as a fixed-width table,
/// one row per `p`, one column per series.
///
/// Values are seconds rendered with engineering-style units.
#[must_use]
pub fn table(title: &str, series: &[&Series]) -> String {
    table_fmt(title, series, format_value)
}

/// [`table`] with a custom cell formatter — use [`format_ratio`] for
/// dimensionless series such as speedups.
#[must_use]
pub fn table_fmt(title: &str, series: &[&Series], fmt: impl Fn(f64) -> String) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    // Collect the union of p values.
    let mut ps: Vec<u64> = series.iter().flat_map(|s| s.points.iter().map(|pt| pt.p)).collect();
    ps.sort_unstable();
    ps.dedup();
    // Header.
    out.push_str(&format!("{:>12}", "p"));
    for s in series {
        out.push_str(&format!("  {:>18}", s.label));
    }
    out.push('\n');
    for p in ps {
        out.push_str(&format!("{:>12}", format_p(p)));
        for s in series {
            match s.at(p) {
                Some(v) => out.push_str(&format!("  {:>18}", fmt(v))),
                None => out.push_str(&format!("  {:>18}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render the same data as CSV (`p,label1,label2,…`), empty cells for
/// missing points.
#[must_use]
pub fn csv(series: &[&Series]) -> String {
    let mut out = String::from("p");
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    let mut ps: Vec<u64> = series.iter().flat_map(|s| s.points.iter().map(|pt| pt.p)).collect();
    ps.sort_unstable();
    ps.dedup();
    for p in ps {
        out.push_str(&p.to_string());
        for s in series {
            out.push(',');
            if let Some(v) = s.at(p) {
                out.push_str(&format!("{v:.9}"));
            }
        }
        out.push('\n');
    }
    out
}

/// `64, 128, …` with K/M suffixes, as the paper labels its x-axes.
#[must_use]
pub fn format_p(p: u64) -> String {
    if p >= 1 << 20 && p.is_multiple_of(1 << 20) {
        format!("{}M", p >> 20)
    } else if p >= 1 << 10 && p.is_multiple_of(1 << 10) {
        format!("{}K", p >> 10)
    } else {
        p.to_string()
    }
}

/// Seconds with an auto-selected unit (ns/µs/ms/s), or a plain ratio for
/// dimensionless values ≥ 1 (speedups).
#[must_use]
pub fn format_value(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}")
    } else if v >= 1e-3 {
        format!("{:.3}ms", v * 1e3)
    } else if v >= 1e-6 {
        format!("{:.3}µs", v * 1e6)
    } else {
        format!("{:.1}ns", v * 1e9)
    }
}

/// Dimensionless ratio, e.g. `"2.31x"` — for speedup tables.
#[must_use]
pub fn format_ratio(v: f64) -> String {
    format!("{v:.3}x")
}

/// Geometric series of bulk sizes `start, 2·start, …, ≤ end` — the paper's
/// `p = 64, 128, …` sweeps.
#[must_use]
pub fn p_sweep(start: u64, end: u64) -> Vec<u64> {
    assert!(start > 0 && start <= end, "invalid sweep bounds");
    let mut v = Vec::new();
    let mut p = start;
    while p <= end {
        v.push(p);
        match p.checked_mul(2) {
            Some(next) => p = next,
            None => break,
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> (Series, Series) {
        let mut a = Series::new("CPU");
        let mut b = Series::new("GPU col");
        for (i, p) in [64u64, 128, 256].iter().enumerate() {
            a.push(*p, 1e-3 * (i + 1) as f64);
            if *p != 128 {
                b.push(*p, 1e-5 * (i + 1) as f64);
            }
        }
        (a, b)
    }

    #[test]
    fn table_includes_all_points_and_dashes() {
        let (a, b) = demo_series();
        let t = table("Demo", &[&a, &b]);
        assert!(t.contains("Demo"));
        assert!(t.contains("CPU"));
        assert!(t.contains("1.000ms"));
        assert!(t.contains('-'), "missing point renders as dash");
        assert_eq!(t.lines().count(), 1 + 1 + 3);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let (a, b) = demo_series();
        let c = csv(&[&a, &b]);
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("p,CPU,GPU col"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("64,"));
        let midrow: Vec<&str> = c.lines().nth(2).unwrap().split(',').collect();
        assert_eq!(midrow[0], "128");
        assert_eq!(midrow[2], "", "missing cell is empty");
    }

    #[test]
    fn p_formatting() {
        assert_eq!(format_p(64), "64");
        assert_eq!(format_p(8192), "8K");
        assert_eq!(format_p(4 << 20), "4M");
        assert_eq!(format_p(1000), "1000");
    }

    #[test]
    fn value_formatting_units() {
        assert_eq!(format_value(2.5), "2.500");
        assert_eq!(format_value(2.5e-3), "2.500ms");
        assert_eq!(format_value(37e-6), "37.000µs");
        assert_eq!(format_value(8.09e-9), "8.1ns");
    }

    #[test]
    fn sweep_doubles() {
        assert_eq!(p_sweep(64, 512), vec![64, 128, 256, 512]);
        assert_eq!(p_sweep(64, 600), vec![64, 128, 256, 512]);
    }

    #[test]
    #[should_panic(expected = "invalid sweep")]
    fn bad_sweep_rejected() {
        let _ = p_sweep(0, 10);
    }
}
