//! Speedup series — the paper's Figures 11(2) and 12(2).

/// One point of a timing sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Bulk size `p`.
    pub p: u64,
    /// Measured seconds.
    pub seconds: f64,
}

/// A named timing series over a `p` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (`"CPU"`, `"GPU row-wise"`, …).
    pub label: String,
    /// Points in increasing `p`.
    pub points: Vec<SweepPoint>,
}

impl Series {
    /// New empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, p: u64, seconds: f64) {
        if let Some(last) = self.points.last() {
            assert!(p > last.p, "sweep points must be in increasing p");
        }
        self.points.push(SweepPoint { p, seconds });
    }

    /// Time at `p`, if measured.
    #[must_use]
    pub fn at(&self, p: u64) -> Option<f64> {
        self.points.iter().find(|pt| pt.p == p).map(|pt| pt.seconds)
    }

    /// The `(p, seconds)` pairs as f64 tuples (for fitting).
    #[must_use]
    pub fn as_samples(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|pt| (pt.p as f64, pt.seconds)).collect()
    }
}

/// Pointwise speedup `baseline / candidate` over the common `p` values.
#[must_use]
pub fn speedup(baseline: &Series, candidate: &Series) -> Series {
    let mut out = Series::new(format!("{} / {}", baseline.label, candidate.label));
    for pt in &baseline.points {
        if let Some(c) = candidate.at(pt.p) {
            out.push(pt.p, pt.seconds / c);
        }
    }
    out
}

/// Largest speedup over the sweep, with the `p` where it occurs.
#[must_use]
pub fn peak(series: &Series) -> Option<(u64, f64)> {
    series
        .points
        .iter()
        .max_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
        .map(|pt| (pt.p, pt.seconds))
}

/// First `p` at which the series value reaches `threshold` (the paper's
/// "more than 150 times faster when p ≥ 64K" claims).
#[must_use]
pub fn first_reaching(series: &Series, threshold: f64) -> Option<u64> {
    series.points.iter().find(|pt| pt.seconds >= threshold).map(|pt| pt.p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(u64, f64)]) -> Series {
        let mut s = Series::new(label);
        for &(p, v) in pts {
            s.push(p, v);
        }
        s
    }

    #[test]
    fn speedup_divides_pointwise() {
        let cpu = series("CPU", &[(64, 0.64), (128, 1.28), (256, 2.56)]);
        let gpu = series("GPU", &[(64, 0.032), (128, 0.032), (256, 0.064)]);
        let s = speedup(&cpu, &gpu);
        assert_eq!(s.at(64), Some(20.0));
        assert_eq!(s.at(128), Some(40.0));
        assert_eq!(s.at(256), Some(40.0));
    }

    #[test]
    fn speedup_skips_missing_points() {
        let cpu = series("CPU", &[(64, 1.0), (128, 2.0)]);
        let gpu = series("GPU", &[(64, 0.5)]);
        let s = speedup(&cpu, &gpu);
        assert_eq!(s.points.len(), 1);
    }

    #[test]
    fn peak_and_threshold() {
        let s = series("x", &[(64, 3.0), (128, 9.0), (256, 7.0)]);
        assert_eq!(peak(&s), Some((128, 9.0)));
        assert_eq!(first_reaching(&s, 5.0), Some(128));
        assert_eq!(first_reaching(&s, 100.0), None);
    }

    #[test]
    #[should_panic(expected = "increasing p")]
    fn non_monotone_p_rejected() {
        let mut s = Series::new("bad");
        s.push(128, 1.0);
        s.push(64, 1.0);
    }
}
