//! Criterion bench for ablation A4: the generic conversion-system engine
//! vs the hand-written kernel, and the per-algorithm cost of the generic
//! engine across the algorithm library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::kernels::PrefixSumsKernel;
use gpu_sim::{launch, Device, GenericKernel};
use oblivious::layout::arrange;
use oblivious::program::arrange_inputs;
use oblivious::Layout;

fn bench_engine_overhead(c: &mut Criterion) {
    let device = Device::titan_like();
    let mut group = c.benchmark_group("generic_vs_kernel");
    group.sample_size(10);
    let (n, p) = (256usize, 4usize << 10);
    let flat = bench::random_words(p * n, 3);
    let per: Vec<&[f32]> = flat.chunks_exact(n).collect();

    let mut buf = arrange(&per, n, Layout::ColumnWise);
    let kernel = PrefixSumsKernel::new(n, Layout::ColumnWise);
    group.bench_function(BenchmarkId::new("kernel", "prefix_sums"), |b| {
        b.iter(|| launch(&device, &kernel, &mut buf, p));
    });

    let mut buf = arrange(&per, n, Layout::ColumnWise);
    let generic = GenericKernel::new(algorithms::PrefixSums::new(n), Layout::ColumnWise);
    group.bench_function(BenchmarkId::new("generic", "prefix_sums"), |b| {
        b.iter(|| launch(&device, &generic, &mut buf, p));
    });

    // Tape replay: control flow recorded once, replayed per launch.
    let mut buf = arrange(&per, n, Layout::ColumnWise);
    let mut tape = oblivious::Tape::record(&algorithms::PrefixSums::new(n));
    tape.eliminate_dead_code();
    let taped = GenericKernel::new(tape, Layout::ColumnWise);
    group.bench_function(BenchmarkId::new("tape", "prefix_sums"), |b| {
        b.iter(|| launch(&device, &taped, &mut buf, p));
    });
    group.finish();
}

fn bench_algorithm_library(c: &mut Criterion) {
    let device = Device::titan_like();
    let mut group = c.benchmark_group("generic_library");
    group.sample_size(10);
    let p = 1usize << 10;

    // FFT over 64-point blocks.
    {
        let prog = algorithms::Fft::new(6);
        let flat = bench::random_words(p * 128, 5);
        let per: Vec<&[f32]> = flat.chunks_exact(128).collect();
        let mut buf = arrange_inputs(&prog, &per, Layout::ColumnWise);
        let k = GenericKernel::new(prog, Layout::ColumnWise);
        group.bench_function("fft64", |b| b.iter(|| launch(&device, &k, &mut buf, p)));
    }
    // Bitonic sort of 64 elements.
    {
        let prog = algorithms::BitonicSort::new(6);
        let flat = bench::random_words(p * 64, 6);
        let per: Vec<&[f32]> = flat.chunks_exact(64).collect();
        let mut buf = arrange_inputs(&prog, &per, Layout::ColumnWise);
        let k = GenericKernel::new(prog, Layout::ColumnWise);
        group.bench_function("bitonic64", |b| b.iter(|| launch(&device, &k, &mut buf, p)));
    }
    // XTEA over 8 blocks (u32 words).
    {
        let prog = algorithms::Xtea::encrypt(8);
        let inputs: Vec<Vec<u32>> = (0..p as u32)
            .map(|s| (0..20).map(|i| s.wrapping_mul(31).wrapping_add(i)).collect())
            .collect();
        let refs: Vec<&[u32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        let k = GenericKernel::new(prog, Layout::ColumnWise);
        group.bench_function("xtea8", |b| b.iter(|| launch(&device, &k, &mut buf, p)));
    }
    group.finish();
}

criterion_group!(benches, bench_engine_overhead, bench_algorithm_library);
criterion_main!(benches);
