//! Micro-bench for ablation A4: the generic conversion-system engine vs
//! the hand-written kernel, and the per-algorithm cost of the generic
//! engine across the algorithm library.
//!
//! Plain `std::time` harness (`bench::harness`), median-of-samples.

use bench::harness::case;
use gpu_sim::kernels::PrefixSumsKernel;
use gpu_sim::{launch, Device, GenericKernel};
use oblivious::layout::arrange;
use oblivious::program::arrange_inputs;
use oblivious::Layout;

fn bench_engine_overhead(device: &Device) {
    let (n, p) = (256usize, 4usize << 10);
    let flat = bench::random_words(p * n, 3);
    let per: Vec<&[f32]> = flat.chunks_exact(n).collect();

    let mut buf = arrange(&per, n, Layout::ColumnWise);
    let kernel = PrefixSumsKernel::new(n, Layout::ColumnWise);
    case("generic_vs_kernel", "kernel_prefix_sums", None, || {
        launch(device, &kernel, &mut buf, p);
    });

    let mut buf = arrange(&per, n, Layout::ColumnWise);
    let generic = GenericKernel::new(algorithms::PrefixSums::new(n), Layout::ColumnWise);
    case("generic_vs_kernel", "generic_prefix_sums", None, || {
        launch(device, &generic, &mut buf, p);
    });

    // Tape replay: control flow recorded once, replayed per launch.
    let mut buf = arrange(&per, n, Layout::ColumnWise);
    let mut tape = oblivious::Tape::record(&algorithms::PrefixSums::new(n));
    tape.eliminate_dead_code();
    let taped = GenericKernel::new(tape, Layout::ColumnWise);
    case("generic_vs_kernel", "tape_prefix_sums", None, || {
        launch(device, &taped, &mut buf, p);
    });
}

fn bench_algorithm_library(device: &Device) {
    let p = 1usize << 10;

    // FFT over 64-point blocks.
    {
        let prog = algorithms::Fft::new(6);
        let flat = bench::random_words(p * 128, 5);
        let per: Vec<&[f32]> = flat.chunks_exact(128).collect();
        let mut buf = arrange_inputs(&prog, &per, Layout::ColumnWise);
        let k = GenericKernel::new(prog, Layout::ColumnWise);
        case("generic_library", "fft64", None, || launch(device, &k, &mut buf, p));
    }
    // Bitonic sort of 64 elements.
    {
        let prog = algorithms::BitonicSort::new(6);
        let flat = bench::random_words(p * 64, 6);
        let per: Vec<&[f32]> = flat.chunks_exact(64).collect();
        let mut buf = arrange_inputs(&prog, &per, Layout::ColumnWise);
        let k = GenericKernel::new(prog, Layout::ColumnWise);
        case("generic_library", "bitonic64", None, || launch(device, &k, &mut buf, p));
    }
    // XTEA over 8 blocks (u32 words).
    {
        let prog = algorithms::Xtea::encrypt(8);
        let inputs: Vec<Vec<u32>> = (0..p as u32)
            .map(|s| (0..20).map(|i| s.wrapping_mul(31).wrapping_add(i)).collect())
            .collect();
        let refs: Vec<&[u32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        let k = GenericKernel::new(prog, Layout::ColumnWise);
        case("generic_library", "xtea8", None, || launch(device, &k, &mut buf, p));
    }
}

fn main() {
    let device = Device::titan_like();
    bench_engine_overhead(&device);
    bench_algorithm_library(&device);
}
