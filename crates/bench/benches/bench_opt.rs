//! Micro-bench behind Figure 12: bulk OPT, CPU baseline vs the two device
//! layouts.
//!
//! Plain `std::time` harness (`bench::harness`), median-of-samples.

use bench::harness::case;
use gpu_sim::kernels::OptKernel;
use gpu_sim::{cpu_ref, launch, Device};
use oblivious::program::arrange_inputs;
use oblivious::Layout;

fn main() {
    let device = Device::titan_like();
    for (n, p) in [(8usize, 4usize << 10), (64, 64)] {
        let inputs = bench::random_polygons(n, p, 7);
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = algorithms::OptTriangulation::new(n);
        // Work per launch ~ p * n^3 / 3 DP steps.
        let elems = Some((p * n * n * n / 3) as u64);
        let label = |kind: &str| format!("{kind}_n{n}_p{p}");

        let mut buf = arrange_inputs(&prog, &refs, Layout::RowWise);
        case("opt", &label("cpu"), elems, || {
            cpu_ref::opt_rowwise(&mut buf, p, n);
        });

        let mut buf = arrange_inputs(&prog, &refs, Layout::RowWise);
        let kernel = OptKernel::new(n, Layout::RowWise);
        case("opt", &label("gpu_row"), elems, || {
            launch(&device, &kernel, &mut buf, p);
        });

        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        let kernel = OptKernel::new(n, Layout::ColumnWise);
        case("opt", &label("gpu_col"), elems, || {
            launch(&device, &kernel, &mut buf, p);
        });
    }
}
