//! Criterion micro-bench behind Figure 12: bulk OPT, CPU baseline vs the
//! two device layouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::kernels::OptKernel;
use gpu_sim::{cpu_ref, launch, Device};
use oblivious::program::arrange_inputs;
use oblivious::Layout;

fn bench(c: &mut Criterion) {
    let device = Device::titan_like();
    let mut group = c.benchmark_group("opt");
    group.sample_size(10);
    for (n, p) in [(8usize, 4usize << 10), (64, 64)] {
        let inputs = bench::random_polygons(n, p, 7);
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = algorithms::OptTriangulation::new(n);
        // Work per launch ~ p * n^3 / 3 DP steps.
        group.throughput(Throughput::Elements((p * n * n * n / 3) as u64));
        let label = format!("n{n}_p{p}");

        let mut buf = arrange_inputs(&prog, &refs, Layout::RowWise);
        group.bench_function(BenchmarkId::new("cpu", &label), |b| {
            b.iter(|| cpu_ref::opt_rowwise(&mut buf, p, n));
        });

        let mut buf = arrange_inputs(&prog, &refs, Layout::RowWise);
        let kernel = OptKernel::new(n, Layout::RowWise);
        group.bench_function(BenchmarkId::new("gpu_row", &label), |b| {
            b.iter(|| launch(&device, &kernel, &mut buf, p));
        });

        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        let kernel = OptKernel::new(n, Layout::ColumnWise);
        group.bench_function(BenchmarkId::new("gpu_col", &label), |b| {
            b.iter(|| launch(&device, &kernel, &mut buf, p));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
