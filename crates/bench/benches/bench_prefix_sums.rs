//! Micro-bench behind Figure 11: bulk prefix-sums, CPU baseline vs the two
//! device layouts, at representative (n, p) points.
//!
//! Plain `std::time` harness (`bench::harness`), median-of-samples.

use bench::harness::case;
use gpu_sim::kernels::PrefixSumsKernel;
use gpu_sim::{cpu_ref, launch, Device};
use oblivious::layout::arrange;
use oblivious::Layout;

fn main() {
    let device = Device::titan_like();
    for (n, p) in [(32usize, 16usize << 10), (1024, 1 << 10)] {
        let flat = bench::random_words(p * n, 42);
        let per: Vec<&[f32]> = flat.chunks_exact(n).collect();
        let elems = Some((p * n) as u64);
        let label = |kind: &str| format!("{kind}_n{n}_p{p}");

        let mut buf = arrange(&per, n, Layout::RowWise);
        case("prefix_sums", &label("cpu"), elems, || {
            cpu_ref::prefix_sums_rowwise(&mut buf, p, n);
        });

        let mut buf = arrange(&per, n, Layout::RowWise);
        let kernel = PrefixSumsKernel::new(n, Layout::RowWise);
        case("prefix_sums", &label("gpu_row"), elems, || {
            launch(&device, &kernel, &mut buf, p);
        });

        let mut buf = arrange(&per, n, Layout::ColumnWise);
        let kernel = PrefixSumsKernel::new(n, Layout::ColumnWise);
        case("prefix_sums", &label("gpu_col"), elems, || {
            launch(&device, &kernel, &mut buf, p);
        });
    }
}
