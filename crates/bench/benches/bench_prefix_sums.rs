//! Criterion micro-bench behind Figure 11: bulk prefix-sums, CPU baseline
//! vs the two device layouts, at representative (n, p) points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::kernels::PrefixSumsKernel;
use gpu_sim::{cpu_ref, launch, Device};
use oblivious::layout::arrange;
use oblivious::Layout;

fn bench(c: &mut Criterion) {
    let device = Device::titan_like();
    let mut group = c.benchmark_group("prefix_sums");
    group.sample_size(10);
    for (n, p) in [(32usize, 16usize << 10), (1024, 1 << 10)] {
        let flat = bench::random_words(p * n, 42);
        let per: Vec<&[f32]> = flat.chunks_exact(n).collect();
        group.throughput(Throughput::Elements((p * n) as u64));
        let label = format!("n{n}_p{p}");

        let mut buf = arrange(&per, n, Layout::RowWise);
        group.bench_function(BenchmarkId::new("cpu", &label), |b| {
            b.iter(|| cpu_ref::prefix_sums_rowwise(&mut buf, p, n));
        });

        let mut buf = arrange(&per, n, Layout::RowWise);
        let kernel = PrefixSumsKernel::new(n, Layout::RowWise);
        group.bench_function(BenchmarkId::new("gpu_row", &label), |b| {
            b.iter(|| launch(&device, &kernel, &mut buf, p));
        });

        let mut buf = arrange(&per, n, Layout::ColumnWise);
        let kernel = PrefixSumsKernel::new(n, Layout::ColumnWise);
        group.bench_function(BenchmarkId::new("gpu_col", &label), |b| {
            b.iter(|| launch(&device, &kernel, &mut buf, p));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
