//! Micro-bench of the model machinery itself: round-synchronous simulator
//! stepping, the event-driven simulator, and the closed-form cost machine —
//! the ablation of "cycle-accurate vs closed form" (DESIGN.md §5.2).
//!
//! `cargo bench -p bench --bench bench_umm_sim` — plain `std::time`
//! harness, median-of-samples; see `bench::harness`.

use bench::harness::case;
use oblivious::program::{bulk_model_time, bulk_round_trace};
use oblivious::{Layout, Model};
use umm_core::{simulate_async, MachineConfig, ThreadAction, UmmSimulator};

fn bench_round_step() {
    let cfg = MachineConfig::new(32, 100);
    let p = 4096usize;
    let coalesced: Vec<_> = (0..p).map(ThreadAction::read).collect();
    let scattered: Vec<_> = (0..p).map(|j| ThreadAction::read(j * 33)).collect();
    {
        let mut sim = UmmSimulator::new(cfg, p);
        case("umm_sim", "round_coalesced_p4096", Some(p as u64), || {
            sim.step(&coalesced);
        });
    }
    {
        let mut sim = UmmSimulator::new(cfg, p);
        case("umm_sim", "round_scattered_p4096", Some(p as u64), || {
            sim.step(&scattered);
        });
    }
}

fn bench_cost_vs_simulators() {
    let cfg = MachineConfig::new(32, 100);
    let p = 512usize;
    let prog = algorithms::PrefixSums::new(64);
    case("pricing", "closed_form_cost_machine", None, || {
        std::hint::black_box(bulk_model_time::<f32, _>(
            &prog,
            cfg,
            Model::Umm,
            Layout::ColumnWise,
            p,
        ));
    });
    {
        let trace = bulk_round_trace::<f32, _>(&prog, Layout::ColumnWise, p);
        case("pricing", "materialised_sync_sim", None, || {
            let mut sim = UmmSimulator::new(cfg, p);
            std::hint::black_box(sim.run(&trace));
        });
    }
    {
        let trace = bulk_round_trace::<f32, _>(&prog, Layout::ColumnWise, p);
        case("pricing", "event_driven_async_sim", None, || {
            std::hint::black_box(simulate_async(&cfg, &trace));
        });
    }
}

fn main() {
    bench_round_step();
    bench_cost_vs_simulators();
}
