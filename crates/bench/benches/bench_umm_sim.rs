//! Criterion bench of the model machinery itself: round-synchronous
//! simulator stepping, the event-driven simulator, and the closed-form
//! cost machine — the ablation of "cycle-accurate vs closed form"
//! (DESIGN.md §5.2).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oblivious::program::{bulk_model_time, bulk_round_trace};
use oblivious::{Layout, Model};
use umm_core::{simulate_async, MachineConfig, ThreadAction, UmmSimulator};

fn bench_round_step(c: &mut Criterion) {
    let cfg = MachineConfig::new(32, 100);
    let p = 4096usize;
    let mut group = c.benchmark_group("umm_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(p as u64));
    let coalesced: Vec<_> = (0..p).map(ThreadAction::read).collect();
    let scattered: Vec<_> = (0..p).map(|j| ThreadAction::read(j * 33)).collect();
    group.bench_function("round_coalesced_p4096", |b| {
        let mut sim = UmmSimulator::new(cfg, p);
        b.iter(|| sim.step(&coalesced));
    });
    group.bench_function("round_scattered_p4096", |b| {
        let mut sim = UmmSimulator::new(cfg, p);
        b.iter(|| sim.step(&scattered));
    });
    group.finish();
}

fn bench_cost_vs_simulators(c: &mut Criterion) {
    let cfg = MachineConfig::new(32, 100);
    let p = 512usize;
    let prog = algorithms::PrefixSums::new(64);
    let mut group = c.benchmark_group("pricing");
    group.sample_size(10);
    group.bench_function("closed_form_cost_machine", |b| {
        b.iter(|| bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p));
    });
    group.bench_function("materialised_sync_sim", |b| {
        let trace = bulk_round_trace::<f32, _>(&prog, Layout::ColumnWise, p);
        b.iter(|| {
            let mut sim = UmmSimulator::new(cfg, p);
            sim.run(&trace)
        });
    });
    group.bench_function("event_driven_async_sim", |b| {
        let trace = bulk_round_trace::<f32, _>(&prog, Layout::ColumnWise, p);
        b.iter(|| simulate_async(&cfg, &trace));
    });
    group.finish();
}

criterion_group!(benches, bench_round_step, bench_cost_vs_simulators);
criterion_main!(benches);
