//! Ablations of the design choices called out in DESIGN.md §5.
//!
//! * **A1 — warp width:** the model layout gap (row/column) as
//!   `w ∈ {1 … 64}`: the gap is the whole coalescing effect and scales
//!   with `w`.
//! * **A2 — latency:** the gap as `l ∈ {1 … 512}`: latency amortises both
//!   layouts at small `p`, deferring the gap (the flat region of Fig 11).
//! * **A3 — DMM vs UMM:** identical bulk traces priced on both machines:
//!   the layouts swap winners between address-group and bank cost.
//! * **A4 — generic engine vs hand-written kernel:** measured wall-clock
//!   interpretation overhead of the "conversion system".
//!
//! Besides the printed tables, the run emits a machine-readable
//! `bench_results/ablation_report.json` (`--profile <path>` overrides).

use algorithms::PrefixSums;
use analytic::{layout_gap, Series};
use bench::{random_words, reps, series_json, smoke_scale, sweep_series, write_report};
use gpu_sim::kernels::PrefixSumsKernel;
use gpu_sim::{launch, timing, Device, GenericKernel};
use oblivious::layout::arrange;
use oblivious::program::bulk_model_time;
use oblivious::{Layout, Model};
use obs::{Json, RunReport};
use umm_core::MachineConfig;

fn a1_width() -> Json {
    println!("\n=== A1: layout gap vs warp width (model, t = 1000, p = 64K, l = 4) ===");
    println!("{:>6} {:>12}", "w", "row/col gap");
    let mut rows = Vec::new();
    for w in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = MachineConfig::new(w, 4);
        let gap = layout_gap(&cfg, 1000, 64 << 10);
        println!("{:>6} {:>12.2}", w, gap);
        let mut r = Json::obj();
        r.set("w", w);
        r.set("gap", gap);
        rows.push(r);
    }
    Json::Arr(rows)
}

fn a2_latency() -> Json {
    println!("\n=== A2: layout gap vs latency (model, t = 1000, w = 32) ===");
    println!("{:>6} {:>12} {:>12}", "l", "gap @p=256", "gap @p=64K");
    let mut rows = Vec::new();
    for l in [1usize, 4, 16, 64, 256, 512] {
        let cfg = MachineConfig::new(32, l);
        let (small, large) = (layout_gap(&cfg, 1000, 256), layout_gap(&cfg, 1000, 64 << 10));
        println!("{:>6} {:>12.2} {:>12.2}", l, small, large);
        let mut r = Json::obj();
        r.set("l", l);
        r.set("gap_p256", small);
        r.set("gap_p64k", large);
        rows.push(r);
    }
    Json::Arr(rows)
}

fn a3_dmm_vs_umm() -> Json {
    println!("\n=== A3: the same bulk trace priced on the UMM vs the DMM ===");
    let cfg = MachineConfig::new(32, 32);
    let p = 4096usize;
    println!("{:>20} {:>10} {:>12} {:>12}", "program", "layout", "UMM time", "DMM time");
    // n = 64 (a multiple of w): row-wise is the worst case for BOTH
    // machines — every lane of a warp is in its own address group AND in
    // the same bank.  n = 65 (padded by one word, the classic bank-conflict
    // trick): the DMM forgives row-wise entirely (gcd(65, 32) = 1 spreads
    // lanes across all banks) while the UMM still charges full price —
    // the machines genuinely disagree.
    let mut rows = Vec::new();
    for n in [64usize, 65] {
        let prog = PrefixSums::new(n);
        let label = oblivious::ObliviousProgram::<f32>::name(&prog);
        for layout in Layout::all() {
            let umm = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, layout, p);
            let dmm = bulk_model_time::<f32, _>(&prog, cfg, Model::Dmm, layout, p);
            println!("{:>20} {:>10} {:>12} {:>12}", label, layout.label(), umm, dmm);
            let mut r = Json::obj();
            r.set("program", label.as_str());
            r.set("n", n);
            r.set("layout", layout.label());
            r.set("umm_time", umm);
            r.set("dmm_time", dmm);
            rows.push(r);
        }
    }
    let aligned_row_dmm =
        bulk_model_time::<f32, _>(&PrefixSums::new(64), cfg, Model::Dmm, Layout::RowWise, p);
    let padded_row_dmm =
        bulk_model_time::<f32, _>(&PrefixSums::new(65), cfg, Model::Dmm, Layout::RowWise, p);
    let padded_row_umm =
        bulk_model_time::<f32, _>(&PrefixSums::new(65), cfg, Model::Umm, Layout::RowWise, p);
    println!(
        "padding one word fixes row-wise on the DMM ({:.1}x cheaper per element) \
         but not on the UMM ({:.1}x of the padded DMM cost): shared memory wants \
         distinct banks, global memory wants one address group.",
        aligned_row_dmm as f64 / 64.0 / (padded_row_dmm as f64 / 65.0),
        padded_row_umm as f64 / padded_row_dmm as f64,
    );
    Json::Arr(rows)
}

fn a4_generic_vs_kernel() -> Json {
    println!("\n=== A4: generic engine vs hand-written kernel (measured) ===");
    let device = Device::titan_like();
    let n = 256usize;
    let ps: Vec<u64> = if smoke_scale() { vec![1 << 10] } else { vec![1 << 10, 4 << 10, 16 << 10] };
    let make_buf = |p: usize, layout: Layout| {
        let flat = random_words(p * n, 11);
        let per: Vec<&[f32]> = flat.chunks_exact(n).collect();
        arrange(&per, n, layout)
    };
    let kern = sweep_series("kernel col", &ps, |p| {
        let p = p as usize;
        let mut buf = make_buf(p, Layout::ColumnWise);
        timing::secs(timing::median_time(reps(), || {
            launch(&device, &PrefixSumsKernel::new(n, Layout::ColumnWise), &mut buf, p);
        }))
    });
    let gene = sweep_series("generic col", &ps, |p| {
        let p = p as usize;
        let mut buf = make_buf(p, Layout::ColumnWise);
        let k = GenericKernel::new(PrefixSums::new(n), Layout::ColumnWise);
        timing::secs(timing::median_time(reps(), || {
            launch(&device, &k, &mut buf, p);
        }))
    });
    println!("{}", analytic::table("prefix-sums n = 256, column-wise", &[&kern, &gene]));
    let overhead: Series = analytic::speedup(&gene, &kern);
    if let Some((p, x)) = analytic::peak(&overhead) {
        println!("interpretation overhead: up to {x:.2}x (at p = {p})");
    }
    let mut o = Json::obj();
    o.set("kernel", series_json(&kern));
    o.set("generic", series_json(&gene));
    o
}

fn a5_hmm_staging() -> Json {
    println!("\n=== A5: HMM — stage into shared memory or stay global? ===");
    // A Titan-ish HMM: 14 DMMs, 32-bank fast shared, high-latency global.
    let hmm = umm_core::HmmConfig::new(14, MachineConfig::new(32, 2), MachineConfig::new(32, 400));
    let p = 14 * 64;
    println!(
        "{:>28} {:>7} {:>12} {:>12} {:>9} {:>8}",
        "program", "t/msize", "all-global", "staged", "winner", "by"
    );
    let mut rows = Vec::new();
    // Streaming (prefix-sums) vs reuse-heavy (OPT) — the crossover the
    // paper's "we do not use the shared memory" choice sidesteps.
    for n in [256usize, 4096] {
        let prog = PrefixSums::new(n);
        let c = oblivious::hmm_bulk_cost::<f32, _>(&prog, &hmm, p);
        let name = oblivious::ObliviousProgram::<f32>::name(&prog);
        report_a5(&name, &prog_ratio(2 * n, n), &c);
        rows.push(a5_json(&name, 2 * n, n, &c));
    }
    for n in [8usize, 32, 64] {
        let prog = algorithms::OptTriangulation::new(n);
        let t = oblivious::theorems::opt_steps(n as u64) as usize;
        let c = oblivious::hmm_bulk_cost::<f32, _>(&prog, &hmm, p);
        let name = oblivious::ObliviousProgram::<f32>::name(&prog);
        report_a5(&name, &prog_ratio(t, 2 * n * n), &c);
        rows.push(a5_json(&name, t, 2 * n * n, &c));
    }
    println!(
        "streaming programs (t ≈ footprint) should stay global; reuse-heavy DP \
         (t ≫ footprint) should stage — the classic shared-memory rule, now priced."
    );
    Json::Arr(rows)
}

fn prog_ratio(t: usize, msize: usize) -> String {
    format!("{:.1}", t as f64 / msize as f64)
}

fn a5_json(name: &str, t: usize, msize: usize, c: &oblivious::HmmBulkCost) -> Json {
    let mut r = Json::obj();
    r.set("program", name);
    r.set("reuse_ratio", t as f64 / msize as f64);
    r.set("all_global", c.all_global);
    r.set("staged", c.staged);
    r.set("winner", if c.staging_wins() { "staged" } else { "global" });
    r.set("advantage", c.advantage());
    r
}

fn report_a5(name: &str, ratio: &str, c: &oblivious::HmmBulkCost) {
    println!(
        "{:>28} {:>7} {:>12} {:>12} {:>9} {:>7.1}x",
        name,
        ratio,
        c.all_global,
        c.staged,
        if c.staging_wins() { "staged" } else { "global" },
        c.advantage()
    );
}

fn a6_compute_vs_memory_bound() -> Json {
    println!("\n=== A6: layout gap, memory-bound vs compute-bound kernels (measured) ===");
    let device = Device::titan_like();
    let p = if smoke_scale() { 4usize << 10 } else { 16usize << 10 };

    // Memory-bound: prefix-sums over 64-word instances.
    let n = 64usize;
    let flat = random_words(p * n, 21);
    let per: Vec<&[f32]> = flat.chunks_exact(n).collect();
    let mut gap = Vec::new();
    for workload in ["prefix-sums (memory-bound)", "xtea x4 (compute-bound)"] {
        let (row_t, col_t) = if workload.starts_with("prefix") {
            let mut row_buf = arrange(&per, n, Layout::RowWise);
            let row = timing::median_time(reps(), || {
                launch(
                    &device,
                    &gpu_sim::PrefixSumsKernel::new(n, Layout::RowWise),
                    &mut row_buf,
                    p,
                );
            });
            let mut col_buf = arrange(&per, n, Layout::ColumnWise);
            let col = timing::median_time(reps(), || {
                launch(
                    &device,
                    &gpu_sim::PrefixSumsKernel::new(n, Layout::ColumnWise),
                    &mut col_buf,
                    p,
                );
            });
            (row, col)
        } else {
            let blocks = 4usize;
            let msize = 4 + 2 * blocks;
            let insts: Vec<Vec<u32>> = (0..p as u32)
                .map(|s| (0..msize as u32).map(|i| s.wrapping_mul(31).wrapping_add(i)).collect())
                .collect();
            let irefs: Vec<&[u32]> = insts.iter().map(|v| v.as_slice()).collect();
            let mut row_buf = arrange(&irefs, msize, Layout::RowWise);
            let row = timing::median_time(reps(), || {
                launch(
                    &device,
                    &gpu_sim::XteaKernel::new(blocks, Layout::RowWise),
                    &mut row_buf,
                    p,
                );
            });
            let mut col_buf = arrange(&irefs, msize, Layout::ColumnWise);
            let col = timing::median_time(reps(), || {
                launch(
                    &device,
                    &gpu_sim::XteaKernel::new(blocks, Layout::ColumnWise),
                    &mut col_buf,
                    p,
                );
            });
            (row, col)
        };
        let g = row_t.as_secs_f64() / col_t.as_secs_f64();
        println!(
            "  {workload:<28} row {:>10}  col {:>10}  gap {g:.2}x",
            analytic::format_value(row_t.as_secs_f64()),
            analytic::format_value(col_t.as_secs_f64()),
        );
        gap.push(g);
    }
    println!(
        "coalescing only matters when memory dominates: gap {:.2}x vs {:.2}x.",
        gap[0], gap[1]
    );
    let mut o = Json::obj();
    o.set("memory_bound_gap", gap[0]);
    o.set("compute_bound_gap", gap[1]);
    o
}

fn main() {
    let mut report = RunReport::new("ablation");
    report.set("a1_width", a1_width());
    report.set("a2_latency", a2_latency());
    report.set("a3_dmm_vs_umm", a3_dmm_vs_umm());
    report.set("a4_generic_vs_kernel", a4_generic_vs_kernel());
    report.set("a5_hmm_staging", a5_hmm_staging());
    report.set("a6_compute_vs_memory_bound", a6_compute_vs_memory_bound());
    write_report(&bench::report_path("ablation_report.json"), &report);
}
