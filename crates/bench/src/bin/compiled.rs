//! Interpreter vs compiled-schedule replay of the generic bulk engine.
//!
//! Times `bulk_execute_in_place` (re-decoding the program every run)
//! against `run_compiled_in_place` (replaying a pre-compiled step table,
//! with load/binop/store fusion) and sharded replay, on bulk prefix-sums.
//! Writes a BENCH JSON (`bench_results/compiled_report.json` by default;
//! `--profile PATH` overrides) capturing the measured ns/iter and the
//! interpreter-over-compiled speedup per configuration.

use bench::harness::bench_ns;
use bench::{random_words, smoke_scale, write_report};
use oblivious::exec::shard::run_sharded;
use oblivious::layout::arrange;
use oblivious::program::{bulk_execute, bulk_execute_in_place, run_compiled_in_place};
use oblivious::{CompiledSchedule, Layout};
use obs::{Json, RunReport};

fn main() {
    // The acceptance case (n = 32K) plus a wide-batch case; smoke mode
    // shrinks both so CI exercises the paths in milliseconds.
    let configs: &[(usize, usize)] =
        if smoke_scale() { &[(256, 16), (64, 64)] } else { &[(32 << 10, 64), (1024, 1 << 10)] };
    let shard_counts = [2usize, 4];

    let mut report = RunReport::new("compiled");
    let mut cases: Vec<Json> = Vec::new();
    for &(n, p) in configs {
        let program = algorithms::PrefixSums::new(n);
        let schedule = CompiledSchedule::<f32>::compile(&program);
        let flat = random_words(p * n, 0xC0DE);
        let per: Vec<&[f32]> = flat.chunks_exact(n).collect();

        // Outputs must agree before the timings mean anything.
        let expect = bulk_execute(&program, &per, Layout::ColumnWise);
        for shards in [1, 2, 7] {
            let got = run_sharded(&schedule, &per, Layout::ColumnWise, shards);
            assert_eq!(got, expect, "n={n} p={p} shards={shards}");
        }

        let label = format!("prefix_sums_n{n}_p{p}");
        let mut buf = arrange(&per, n, Layout::ColumnWise);
        let interp_ns = bench_ns(|| {
            bulk_execute_in_place(&program, &mut buf, p, Layout::ColumnWise);
        });
        let mut buf = arrange(&per, n, Layout::ColumnWise);
        let compiled_ns = bench_ns(|| {
            run_compiled_in_place(&schedule, &mut buf, p, Layout::ColumnWise);
        });
        let speedup = interp_ns / compiled_ns;
        println!("{label:<28} interpreter {interp_ns:>12.1} ns/iter");
        println!("{label:<28} compiled    {compiled_ns:>12.1} ns/iter  ({speedup:.2}x)");

        let mut case = Json::obj();
        case.set("n", n);
        case.set("p", p);
        case.set("algo", "prefix-sums");
        case.set("layout", "column-wise");
        case.set("interpreter_ns_per_iter", interp_ns);
        case.set("compiled_ns_per_iter", compiled_ns);
        case.set("compiled_speedup", speedup);

        // Sharded replay re-arranges per shard, so time the whole call
        // (inputs → outputs) — comparable across shard counts, not to the
        // in-place single-shard number above.
        let mut sharded = Json::obj();
        for &s in &shard_counts {
            let ns = bench_ns(|| {
                let out = run_sharded(&schedule, &per, Layout::ColumnWise, s);
                std::hint::black_box(out);
            });
            println!("{label:<28} sharded x{s}  {ns:>12.1} ns/iter");
            sharded.set(&format!("shards_{s}_ns_per_iter"), ns);
        }
        case.set("sharded", sharded);
        cases.push(case);
    }
    report.set("cases", Json::Arr(cases));
    write_report(&bench::report_path("compiled_report.json"), &report);
}
