//! Figure 11: bulk execution of Algorithm Prefix-sums.
//!
//! Regenerates the paper's two panels for each array size `n`:
//! (1) computing time of CPU / GPU row-wise / GPU column-wise over a
//! doubling `p` sweep, and (2) the speedup of both device variants over the
//! CPU; plus the paper-style `a + b·p` fitted constants.
//!
//! Defaults are laptop-scale; set `BULK_PAPER_SCALE=1` for the paper's caps
//! (`p` up to 4M at `n = 32`, 256K at `n = 1K`, 8K at `n = 32K`) and
//! `BULK_REPS` to change the timing repetitions.

use analytic::p_sweep;
use bench::{
    paper_scale, print_figure_block, random_words, reps, series_json, smoke_scale, sweep_series,
    write_csv, write_report,
};
use gpu_sim::kernels::PrefixSumsKernel;
use gpu_sim::{cpu_ref, launch, launch_profiled, timing, Device};
use oblivious::layout::arrange;
use oblivious::{run_sharded, Layout, ScheduleCache};
use obs::{Json, RunReport};

/// `--compiled [--shards N]`: measure the GPU series through sharded
/// compiled-schedule replay instead of the SIMT kernel.  Timings change
/// (they are informational in `bulkrun compare`); every deterministic
/// leaf of the report — series labels, sweep shape, device geometry — is
/// identical, so the same smoke baseline gates both modes.
fn compiled_mode() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    if !args.iter().any(|a| a == "--compiled") {
        return None;
    }
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--shards must be a number"))
        .unwrap_or(1);
    assert!(shards > 0, "--shards must be positive");
    Some(shards)
}

fn adaptive_reps(words: usize) -> usize {
    if words > 8 << 20 {
        1
    } else {
        reps()
    }
}

/// Time one configuration (arrangement excluded, as for CUDA kernel time).
///
/// In compiled mode the GPU series replay a cached [`oblivious`] schedule
/// via [`run_sharded`] (which re-arranges per shard, so arrangement is on
/// the clock there); the CPU series is the engine-independent reference
/// and is measured identically in both modes.
fn measure(
    device: &Device,
    n: usize,
    p: usize,
    mode: Mode,
    seed: u64,
    compiled: Option<(usize, &ScheduleCache<f32>)>,
) -> f64 {
    let flat = random_words(p * n, seed);
    let per: Vec<&[f32]> = flat.chunks_exact(n).collect();
    let layout = match mode {
        Mode::Cpu | Mode::Row => Layout::RowWise,
        Mode::Col => Layout::ColumnWise,
    };
    let r = adaptive_reps(p * n);
    if let (Some((shards, cache)), Mode::Row | Mode::Col) = (compiled, mode) {
        let schedule = cache.get_or_compile(&algorithms::PrefixSums::new(n), layout);
        let d = timing::median_time(r, || {
            std::hint::black_box(run_sharded(&schedule, &per, layout, shards));
        });
        return timing::secs(d);
    }
    let mut buf = arrange(&per, n, layout);
    let d = timing::median_time(r, || match mode {
        Mode::Cpu => cpu_ref::prefix_sums_rowwise(&mut buf, p, n),
        Mode::Row => launch(device, &PrefixSumsKernel::new(n, Layout::RowWise), &mut buf, p),
        Mode::Col => launch(device, &PrefixSumsKernel::new(n, Layout::ColumnWise), &mut buf, p),
    });
    timing::secs(d)
}

#[derive(Clone, Copy)]
enum Mode {
    Cpu,
    Row,
    Col,
}

fn main() {
    let device = Device::titan_like();
    println!(
        "device: {} ({} workers, warp {}, block {})",
        device.name, device.worker_threads, device.warp_size, device.block_size
    );
    let cache: ScheduleCache<f32> = ScheduleCache::new();
    let compiled = compiled_mode().inspect(|&shards| {
        println!("engine: compiled schedule replay, {shards} shard(s)");
    });
    let mut report = RunReport::new("fig11");
    report.set("device", bench::device_json(&device));
    let mut figures: Vec<Json> = Vec::new();
    // (n, laptop cap, paper cap) — the paper's memory-bound maxima.
    let mut configs: Vec<(usize, u64, u64)> =
        vec![(32, 1 << 20, 4 << 20), (1024, 32 << 10, 256 << 10), (32 << 10, 1 << 10, 8 << 10)];
    if smoke_scale() {
        // CI smoke: one small n, tiny sweep — seconds, not minutes.
        configs = vec![(32, 256, 256), (1024, 128, 128)];
    }
    for (n, lap_cap, paper_cap) in configs {
        let cap = if paper_scale() { paper_cap } else { lap_cap };
        let ps = p_sweep(64, cap);
        eprintln!("\n-- prefix-sums n = {n}, p up to {cap} --");
        let cmode = compiled.map(|s| (s, &cache));
        let cpu =
            sweep_series("CPU", &ps, |p| measure(&device, n, p as usize, Mode::Cpu, p, cmode));
        let row = sweep_series("GPU row-wise", &ps, |p| {
            measure(&device, n, p as usize, Mode::Row, p, cmode)
        });
        let col = sweep_series("GPU col-wise", &ps, |p| {
            measure(&device, n, p as usize, Mode::Col, p, cmode)
        });
        print_figure_block(
            &format!("Figure 11, n = {n}"),
            &format!("Figure 11 (1): prefix-sums computing time, n = {n}"),
            &cpu,
            &row,
            &col,
        );
        write_csv(&format!("fig11_n{n}.csv"), &analytic::csv(&[&cpu, &row, &col]));
        let mut fig = Json::obj();
        fig.set("n", n);
        fig.set("p_max", cap as i64);
        fig.set("cpu", series_json(&cpu));
        fig.set("gpu_row_wise", series_json(&row));
        fig.set("gpu_col_wise", series_json(&col));
        figures.push(fig);
    }
    report.set("figures", Json::Arr(figures));
    write_report(&bench::report_path("fig11_report.json"), &report);

    // `--trace PATH`: one extra profiled column-wise launch, exported as a
    // Chrome-trace timeline of the device's per-worker block scheduling.
    if let Some(path) = bench::trace_path() {
        let (n, p) = (1024, 256);
        let flat = random_words(p * n, 1);
        let per: Vec<&[f32]> = flat.chunks_exact(n).collect();
        let mut buf = arrange(&per, n, Layout::ColumnWise);
        let rep =
            launch_profiled(&device, &PrefixSumsKernel::new(n, Layout::ColumnWise), &mut buf, p);
        let t = rep.to_trace();
        bench::write_trace(&path, &obs::trace::chrome_trace(&[("device.fig11", &t)]));
    }
}
