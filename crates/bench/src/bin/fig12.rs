//! Figure 12: bulk execution of Algorithm OPT (optimal polygon
//! triangulation).
//!
//! Regenerates the paper's two panels for 8-gons, 64-gons and 512-gons:
//! (1) computing time of CPU / GPU row-wise / GPU column-wise over a `p`
//! sweep, and (2) the speedup over the CPU; plus the fitted `a + b·p`
//! constants (the paper reads `0.09ms + 50.8p ns` row-wise and
//! `0.032ms + 2.11p ns` column-wise for 8-gons).
//!
//! Defaults are laptop-scale (an O(n³) DP on one core); set
//! `BULK_PAPER_SCALE=1` for the paper's caps (4M / 64K / 1K).

use analytic::p_sweep;
use bench::{
    paper_scale, print_figure_block, random_polygons, reps, series_json, smoke_scale, sweep_series,
    write_csv, write_report,
};
use gpu_sim::kernels::OptKernel;
use gpu_sim::{cpu_ref, launch, timing, Device};
use oblivious::program::arrange_inputs;
use oblivious::Layout;
use obs::{Json, RunReport};

#[derive(Clone, Copy)]
enum Mode {
    Cpu,
    Row,
    Col,
}

fn adaptive_reps(n: usize, p: usize) -> usize {
    // ~n³/3 steps per instance; keep heavy points to a single rep.
    let work = p.saturating_mul(n * n * n / 3);
    if work > 32 << 20 {
        1
    } else {
        reps()
    }
}

fn measure(device: &Device, n: usize, p: usize, mode: Mode, seed: u64) -> f64 {
    let inputs = random_polygons(n, p, seed);
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let prog = algorithms::OptTriangulation::new(n);
    let layout = match mode {
        Mode::Cpu | Mode::Row => Layout::RowWise,
        Mode::Col => Layout::ColumnWise,
    };
    let mut buf = arrange_inputs(&prog, &refs, layout);
    let r = adaptive_reps(n, p);
    let d = timing::median_time(r, || match mode {
        Mode::Cpu => cpu_ref::opt_rowwise(&mut buf, p, n),
        Mode::Row => launch(device, &OptKernel::new(n, Layout::RowWise), &mut buf, p),
        Mode::Col => launch(device, &OptKernel::new(n, Layout::ColumnWise), &mut buf, p),
    });
    timing::secs(d)
}

fn main() {
    let device = Device::titan_like();
    println!(
        "device: {} ({} workers, warp {}, block {})",
        device.name, device.worker_threads, device.warp_size, device.block_size
    );
    let mut report = RunReport::new("fig12");
    report.set("device", bench::device_json(&device));
    let mut figures: Vec<Json> = Vec::new();
    // (n-gon, laptop start, laptop cap, paper cap).
    let mut configs: Vec<(usize, u64, u64, u64)> =
        vec![(8, 64, 64 << 10, 4 << 20), (64, 64, 1 << 10, 64 << 10), (512, 4, 8, 1 << 10)];
    if smoke_scale() {
        configs = vec![(8, 64, 128, 128)];
    }
    for (n, lap_start, lap_cap, paper_cap) in configs {
        let (start, cap) =
            if paper_scale() { (64.min(paper_cap), paper_cap) } else { (lap_start, lap_cap) };
        let ps = p_sweep(start, cap);
        eprintln!("\n-- OPT {n}-gons, p in [{start}, {cap}] --");
        let cpu = sweep_series("CPU", &ps, |p| measure(&device, n, p as usize, Mode::Cpu, p));
        let row =
            sweep_series("GPU row-wise", &ps, |p| measure(&device, n, p as usize, Mode::Row, p));
        let col =
            sweep_series("GPU col-wise", &ps, |p| measure(&device, n, p as usize, Mode::Col, p));
        print_figure_block(
            &format!("Figure 12, {n}-gons"),
            &format!("Figure 12 (1): OPT computing time, {n}-gons"),
            &cpu,
            &row,
            &col,
        );
        write_csv(&format!("fig12_n{n}.csv"), &analytic::csv(&[&cpu, &row, &col]));
        let mut fig = Json::obj();
        fig.set("n", n);
        fig.set("p_max", cap as i64);
        fig.set("cpu", series_json(&cpu));
        fig.set("gpu_row_wise", series_json(&row));
        fig.set("gpu_col_wise", series_json(&col));
        figures.push(fig);
    }
    report.set("figures", Json::Arr(figures));
    write_report(&bench::report_path("fig12_report.json"), &report);
}
