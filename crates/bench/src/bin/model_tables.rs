//! Model tables: the paper's theory on the exact UMM simulator.
//!
//! * **Table M1** (Lemma 1): simulated bulk prefix-sums time vs the exact
//!   closed forms `2n(p + l - 1)` and `2n(⌈p/w⌉ + l - 1)`.
//! * **Table M2** (Theorems 2 & 3): the same for a basket of oblivious
//!   programs with different `t`, plus the Theorem-3 optimality ratio.
//! * **Table M3** (Corollary 5): bulk OPT time vs the `t(n)`-scaled forms.
//!
//! Every `model` column is produced by replaying the program's access trace
//! through the round-synchronous UMM simulator; every `formula` column by
//! the closed form; the `ok` column asserts equality (for aligned `p`,
//! `msize ≥ w`) — the tables are self-checking.

use algorithms::{BitonicSort, MatMul, OptTriangulation, PrefixSums};
use oblivious::program::bulk_model_time;
use oblivious::{theorems, Layout, Model, ObliviousProgram, Word};
use umm_core::MachineConfig;

fn check_line<W: Word, P: ObliviousProgram<W>>(
    prog: &P,
    cfg: MachineConfig,
    p: u64,
) -> (u64, u64, u64, u64, f64, bool) {
    let t = oblivious::program::time_steps(prog) as u64;
    let row = bulk_model_time(prog, cfg, Model::Umm, Layout::RowWise, p as usize);
    let col = bulk_model_time(prog, cfg, Model::Umm, Layout::ColumnWise, p as usize);
    let f_row = theorems::row_wise_time(t, p, cfg.latency as u64);
    let f_col = theorems::column_wise_time(t, p, cfg.width as u64, cfg.latency as u64);
    let ratio = theorems::optimality_ratio(col, t, p, cfg.width as u64, cfg.latency as u64);
    let ok = row == f_row && col == f_col;
    (row, f_row, col, f_col, ratio, ok)
}

fn print_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>24} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8} {:>4}",
        "program", "p", "sim row", "formula", "sim col", "formula", "opt.rat", "ok"
    );
}

fn print_line<W: Word, P: ObliviousProgram<W>>(prog: &P, cfg: MachineConfig, p: u64) -> bool {
    let (row, f_row, col, f_col, ratio, ok) = check_line(prog, cfg, p);
    println!(
        "{:>24} {:>8} {:>12} {:>12} {:>12} {:>12} {:>8.3} {:>4}",
        prog.name(),
        p,
        row,
        f_row,
        col,
        f_col,
        ratio,
        if ok { "yes" } else { "NO" }
    );
    ok
}

fn main() {
    let cfg = MachineConfig::new(32, 100); // GPU-like: w = 32, l = 100
    println!("machine: UMM with width w = {}, latency l = {}", cfg.width, cfg.latency);
    let mut all_ok = true;

    print_header("Table M1 — Lemma 1: bulk prefix-sums");
    for n in [32usize, 256] {
        for p in [64u64, 1024, 16384] {
            all_ok &= print_line::<f32, _>(&PrefixSums::new(n), cfg, p);
        }
    }

    print_header("Table M2 — Theorems 2 & 3: assorted oblivious programs");
    for p in [64u64, 4096] {
        all_ok &= print_line::<f32, _>(&MatMul::new(8), cfg, p);
        all_ok &= print_line::<f32, _>(&BitonicSort::new(6), cfg, p);
        all_ok &= print_line::<f32, _>(&algorithms::FloydWarshall::new(8), cfg, p);
    }

    print_header("Table M3 — Corollary 5: bulk OPT");
    for n in [8usize, 16, 32] {
        for p in [64u64, 4096] {
            let prog = OptTriangulation::new(n);
            let ok = print_line::<f32, _>(&prog, cfg, p);
            all_ok &= ok;
            // Cross-check the t(n) closed form feeding Corollary 5.
            let t = oblivious::program::time_steps::<f32, _>(&prog) as u64;
            assert_eq!(t, theorems::opt_steps(n as u64), "t(n) formula");
        }
    }

    println!("\nTheorem 3 check: column-wise optimality ratio stays ≤ 2 in every row above.");
    assert!(all_ok, "a simulated time diverged from its closed form");
    println!("all model rows verified: simulator == closed form");
}
