//! # bench — harness plumbing shared by the figure/table regenerators
//!
//! The binaries in this crate regenerate the paper's evaluation artefacts
//! (see DESIGN.md §4 for the experiment index):
//!
//! * `fig11` — bulk prefix-sums: computing time + speedup + fitted constants
//! * `fig12` — bulk OPT: computing time + speedup + fitted constants
//! * `model_tables` — Lemma 1 / Theorem 2 / Theorem 3 / Corollary 5 on the
//!   exact UMM simulator
//! * `ablation` — width/latency sweeps, DMM-vs-UMM, generic-vs-kernel
//!
//! This library holds the sweep driver and workload generators they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use analytic::Series;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paper-scale and laptop-scale sweep caps.
///
/// The paper ran `p` up to 4M (bounded by the Titan's 6 GB); the default
/// caps here bound both memory and single-core wall-clock so a full harness
/// run finishes in minutes.  Set `BULK_PAPER_SCALE=1` to use the paper's
/// caps instead.
#[must_use]
pub fn paper_scale() -> bool {
    std::env::var("BULK_PAPER_SCALE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Repetitions for median timing (`BULK_REPS`, default 3).
#[must_use]
pub fn reps() -> usize {
    std::env::var("BULK_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Deterministic workload RNG.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random f32 words in `[-1, 1)` — the prefix-sums workload ("float
/// (32-bit) numbers").
#[must_use]
pub fn random_words(len: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(-1.0f32..1.0)).collect()
}

/// Random chord-weight matrices for `p` convex `n`-gons, already flattened
/// into per-instance input vectors (`n²` words each).
#[must_use]
pub fn random_polygons(n: usize, p: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut r = rng(seed);
    (0..p)
        .map(|_| {
            algorithms::ChordWeights::from_fn(n, |_, _| f64::from(r.gen_range(1u32..1000)))
                .as_words::<f32>()
        })
        .collect()
}

/// Run `measure(p)` over a doubling sweep and collect a [`Series`].
pub fn sweep_series(label: &str, ps: &[u64], mut measure: impl FnMut(u64) -> f64) -> Series {
    let mut s = Series::new(label);
    for &p in ps {
        let secs = measure(p);
        s.push(p, secs);
        eprintln!("  {label:>16}  p={p:>9}  {}", analytic::format_value(secs));
    }
    s
}

/// Print a figure block: the timing table, the speedup table, and the
/// paper-style affine fits of each device series.
pub fn print_figure_block(
    figure: &str,
    timing_title: &str,
    cpu: &Series,
    row: &Series,
    col: &Series,
) {
    println!("\n=== {figure} ===");
    println!("{}", analytic::table(timing_title, &[cpu, row, col]));
    let su_row = analytic::speedup(cpu, row);
    let su_col = analytic::speedup(cpu, col);
    println!(
        "{}",
        analytic::table_fmt(
            &format!("{figure} (2): speedup over CPU"),
            &[&su_row, &su_col],
            analytic::format_ratio,
        )
    );
    for s in [row, col] {
        if s.points.len() >= 2 {
            let fit = analytic::fit_affine_tail(&s.as_samples());
            println!(
                "fit[{}]: {}  (tail R² = {:.4})",
                s.label,
                fit.paper_style(),
                fit.r_squared
            );
        }
    }
    if let Some((p, s)) = analytic::peak(&su_col) {
        println!("peak column-wise speedup: {s:.1}x at p = {}", analytic::format_p(p));
    }
    if cpu.points.len() >= 2 && col.points.len() >= 2 {
        let f_cpu = analytic::fit_affine_tail(&cpu.as_samples());
        let f_col = analytic::fit_affine_tail(&col.as_samples());
        match analytic::crossover(&f_col, &f_cpu) {
            Some(px) if f_col.slope < f_cpu.slope => println!(
                "fitted crossover: column-wise overtakes the CPU for p >= ~{:.0}",
                px
            ),
            _ => println!(
                "fitted slopes: column-wise {:.2} ns/p vs CPU {:.2} ns/p",
                f_col.slope * 1e9,
                f_cpu.slope * 1e9
            ),
        }
    }
}

/// Write a CSV artefact under `bench_results/`.
pub fn write_csv(name: &str, content: &str) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, content).is_ok() {
            println!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(random_words(16, 7), random_words(16, 7));
        assert_ne!(random_words(16, 7), random_words(16, 8));
        let a = random_polygons(5, 2, 3);
        let b = random_polygons(5, 2, 3);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 25);
    }

    #[test]
    fn polygon_weights_have_zero_edges() {
        let p = random_polygons(6, 1, 1);
        let n = 6;
        for i in 0..n - 1 {
            assert_eq!(p[0][i * n + i + 1], 0.0, "edge ({i},{})", i + 1);
        }
        assert_eq!(p[0][n - 1], 0.0, "root edge (0, n-1)");
    }

    #[test]
    fn sweep_collects_in_order() {
        let s = sweep_series("test", &[64, 128], |p| p as f64 * 1e-6);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.at(128), Some(128e-6));
    }

    #[test]
    fn reps_defaults_sanely() {
        assert!(reps() >= 1);
    }
}
