//! # bench — harness plumbing shared by the figure/table regenerators
//!
//! The binaries in this crate regenerate the paper's evaluation artefacts
//! (see DESIGN.md §4 for the experiment index):
//!
//! * `fig11` — bulk prefix-sums: computing time + speedup + fitted constants
//! * `fig12` — bulk OPT: computing time + speedup + fitted constants
//! * `model_tables` — Lemma 1 / Theorem 2 / Theorem 3 / Corollary 5 on the
//!   exact UMM simulator
//! * `ablation` — width/latency sweeps, DMM-vs-UMM, generic-vs-kernel
//!
//! This library holds the sweep driver and workload generators they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use analytic::Series;
use obs::Rng;

/// Paper-scale and laptop-scale sweep caps.
///
/// The paper ran `p` up to 4M (bounded by the Titan's 6 GB); the default
/// caps here bound both memory and single-core wall-clock so a full harness
/// run finishes in minutes.  Set `BULK_PAPER_SCALE=1` to use the paper's
/// caps instead.
#[must_use]
pub fn paper_scale() -> bool {
    std::env::var("BULK_PAPER_SCALE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Repetitions for median timing (`BULK_REPS`, default 3).
#[must_use]
pub fn reps() -> usize {
    std::env::var("BULK_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Deterministic workload RNG (SplitMix64, from `obs`).
#[must_use]
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

/// Random f32 words in `[-1, 1)` — the prefix-sums workload ("float
/// (32-bit) numbers").
#[must_use]
pub fn random_words(len: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..len).map(|_| r.f32_range(-1.0, 1.0)).collect()
}

/// Random chord-weight matrices for `p` convex `n`-gons, already flattened
/// into per-instance input vectors (`n²` words each).
#[must_use]
pub fn random_polygons(n: usize, p: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut r = rng(seed);
    (0..p)
        .map(|_| {
            algorithms::ChordWeights::from_fn(n, |_, _| r.range_u64(1, 1000) as f64)
                .as_words::<f32>()
        })
        .collect()
}

/// CI smoke mode (`BULK_SMOKE=1`): shrink sweeps so a figure binary
/// finishes in seconds while still exercising every code path.
#[must_use]
pub fn smoke_scale() -> bool {
    std::env::var("BULK_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The output path for a binary's JSON run report: the value of a
/// `--profile <path>` command-line flag if one was passed, else the
/// given default file name (resolved under `bench_results/` by
/// [`write_report`]).
#[must_use]
pub fn report_path(default_name: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--profile" {
            if let Some(v) = args.get(i + 1) {
                return v.clone();
            }
        }
    }
    default_name.to_string()
}

/// The output path of a `--trace <path>` command-line flag, if one was
/// passed: figure binaries then also emit a Chrome-trace timeline of one
/// profiled device launch (see [`write_trace`]).
#[must_use]
pub fn trace_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--trace" {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Resolve an artefact name: bare file names land under `bench_results/`;
/// paths with a directory component are honoured as given.
fn artefact_path(name: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(name);
    if p.components().count() > 1 || p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new("bench_results").join(p)
    }
}

/// Write a JSON [`obs::RunReport`] artefact.  Bare file names land under
/// `bench_results/`; paths with a directory component are honoured as
/// given (so `--profile /tmp/out.json` works).
pub fn write_report(name: &str, report: &obs::RunReport) {
    let path = artefact_path(name);
    match report.write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Write a Chrome Trace Event Format JSON artefact (compact form, the
/// format Perfetto and `about:tracing` open directly), creating parent
/// directories as needed.  Same name resolution as [`write_report`].
pub fn write_trace(name: &str, chrome: &obs::Json) {
    let path = artefact_path(name);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("could not create {}: {e}", dir.display());
            return;
        }
    }
    match std::fs::write(&path, chrome.to_compact()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Device geometry as a JSON object, for report headers.
#[must_use]
pub fn device_json(device: &gpu_sim::Device) -> obs::Json {
    let mut o = obs::Json::obj();
    o.set("name", device.name.as_str());
    o.set("worker_threads", device.worker_threads);
    o.set("warp_size", device.warp_size);
    o.set("block_size", device.block_size);
    o
}

/// Convert a [`Series`] into a JSON array of `{p, seconds}` points for
/// embedding in a run report.
#[must_use]
pub fn series_json(s: &Series) -> obs::Json {
    let mut o = obs::Json::obj();
    o.set("label", s.label.as_str());
    o.set(
        "points",
        obs::Json::Arr(
            s.points
                .iter()
                .map(|pt| {
                    let mut e = obs::Json::obj();
                    e.set("p", pt.p);
                    e.set("seconds", pt.seconds);
                    e
                })
                .collect(),
        ),
    );
    o
}

/// Run `measure(p)` over a doubling sweep and collect a [`Series`].
pub fn sweep_series(label: &str, ps: &[u64], mut measure: impl FnMut(u64) -> f64) -> Series {
    let mut s = Series::new(label);
    for &p in ps {
        let secs = measure(p);
        s.push(p, secs);
        eprintln!("  {label:>16}  p={p:>9}  {}", analytic::format_value(secs));
    }
    s
}

/// Print a figure block: the timing table, the speedup table, and the
/// paper-style affine fits of each device series.
pub fn print_figure_block(
    figure: &str,
    timing_title: &str,
    cpu: &Series,
    row: &Series,
    col: &Series,
) {
    println!("\n=== {figure} ===");
    println!("{}", analytic::table(timing_title, &[cpu, row, col]));
    let su_row = analytic::speedup(cpu, row);
    let su_col = analytic::speedup(cpu, col);
    println!(
        "{}",
        analytic::table_fmt(
            &format!("{figure} (2): speedup over CPU"),
            &[&su_row, &su_col],
            analytic::format_ratio,
        )
    );
    for s in [row, col] {
        if s.points.len() >= 2 {
            let fit = analytic::fit_affine_tail(&s.as_samples());
            println!("fit[{}]: {}  (tail R² = {:.4})", s.label, fit.paper_style(), fit.r_squared);
        }
    }
    if let Some((p, s)) = analytic::peak(&su_col) {
        println!("peak column-wise speedup: {s:.1}x at p = {}", analytic::format_p(p));
    }
    if cpu.points.len() >= 2 && col.points.len() >= 2 {
        let f_cpu = analytic::fit_affine_tail(&cpu.as_samples());
        let f_col = analytic::fit_affine_tail(&col.as_samples());
        match analytic::crossover(&f_col, &f_cpu) {
            Some(px) if f_col.slope < f_cpu.slope => {
                println!("fitted crossover: column-wise overtakes the CPU for p >= ~{:.0}", px)
            }
            _ => println!(
                "fitted slopes: column-wise {:.2} ns/p vs CPU {:.2} ns/p",
                f_col.slope * 1e9,
                f_cpu.slope * 1e9
            ),
        }
    }
}

/// Write a CSV artefact under `bench_results/`.
pub fn write_csv(name: &str, content: &str) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, content).is_ok() {
            println!("wrote {}", path.display());
        }
    }
}

/// Dependency-free micro-benchmark harness used by the `benches/` binaries
/// (`harness = false`): auto-calibrated batch sizes, median-of-samples
/// timing, one table row per case.
pub mod harness {
    use std::time::Instant;

    /// Median ns/iteration of `f`: batch size is grown until one batch
    /// takes ≥ 10 ms (capped at 4M iterations), then the median of
    /// `samples` batches is reported.  `BULK_BENCH_SAMPLES` overrides the
    /// sample count (default 5).
    pub fn bench_ns(mut f: impl FnMut()) -> f64 {
        let samples: usize = std::env::var("BULK_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5)
            .max(1);
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            if t0.elapsed().as_millis() >= 10 || iters >= 1 << 22 {
                break;
            }
            iters *= 4;
        }
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2] * 1e9
    }

    /// Run one case and print its table row; `elements` adds a derived
    /// throughput column.
    pub fn case(group: &str, name: &str, elements: Option<u64>, f: impl FnMut()) {
        let ns = bench_ns(f);
        match elements {
            Some(e) if ns > 0.0 => {
                let meps = e as f64 / ns * 1e3; // elements per microsecond→M/s
                println!("{group}/{name:<32} {ns:>14.1} ns/iter {meps:>10.1} Melem/s");
            }
            _ => println!("{group}/{name:<32} {ns:>14.1} ns/iter"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(random_words(16, 7), random_words(16, 7));
        assert_ne!(random_words(16, 7), random_words(16, 8));
        let a = random_polygons(5, 2, 3);
        let b = random_polygons(5, 2, 3);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 25);
    }

    #[test]
    fn polygon_weights_have_zero_edges() {
        let p = random_polygons(6, 1, 1);
        let n = 6;
        for i in 0..n - 1 {
            assert_eq!(p[0][i * n + i + 1], 0.0, "edge ({i},{})", i + 1);
        }
        assert_eq!(p[0][n - 1], 0.0, "root edge (0, n-1)");
    }

    #[test]
    fn sweep_collects_in_order() {
        let s = sweep_series("test", &[64, 128], |p| p as f64 * 1e-6);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.at(128), Some(128e-6));
    }

    #[test]
    fn reps_defaults_sanely() {
        assert!(reps() >= 1);
    }
}
