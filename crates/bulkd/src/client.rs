//! A small blocking client for the bulkd wire protocol.

use crate::protocol::{words_from_json, JobKey, Request};
use obs::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Transport tuning for [`Client::connect_with`].
///
/// The defaults (both `None`) reproduce the historical behavior: block
/// until the OS gives up on the dial, and forever on a read.  Anything
/// probing servers that may be dead or wedged — the router's health
/// checker above all — must set both, or a single hung backend stalls the
/// caller indefinitely.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientConfig {
    /// Give up dialing after this long (`None` = the OS default).
    pub connect_timeout: Option<Duration>,
    /// Fail any reply read that stalls longer than this (`None` = block
    /// forever).  Submits block for a full queue-wait + execution, so
    /// leave headroom well above the server's flush window.
    pub read_timeout: Option<Duration>,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hangup).
    Io(std::io::Error),
    /// The response did not parse or lacked the documented shape.
    Protocol(String),
    /// The server's admission control turned the submit away.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// The node is a standby and refuses primary-only work (submit,
    /// drain).  Redial the hinted leader.
    NotPrimary {
        /// The primary's serving address, as the standby learned it over
        /// the replication handshake (empty when unknown).
        leader_hint: String,
    },
    /// The server rejected the request for a stated reason.
    Rejected {
        /// Error kind (`"draining"`, `"bad-request"`, `"exec"`, …).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded (retry after {retry_after_ms} ms)")
            }
            ClientError::NotPrimary { leader_hint } => {
                write!(f, "not primary (leader hint: {leader_hint})")
            }
            ClientError::Rejected { kind, detail } => write!(f, "{kind}: {detail}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful submit: per-instance outputs plus batch observability.
#[derive(Debug)]
pub struct SubmitOk {
    /// Per-instance output words (bit patterns), in submission order.
    pub outputs: Vec<Vec<u64>>,
    /// The executed batch's total instance count.
    pub batch_p: u64,
    /// Microseconds the job waited in the queue.
    pub queue_us: u64,
    /// Microseconds the batch spent executing.
    pub exec_us: u64,
    /// The per-stage latency breakdown, echoed when the submit opted in
    /// with `timing: true` (`None` otherwise).
    pub timing: Option<Json>,
}

/// A blocking connection to a bulkd server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` with no timeouts (see [`ClientConfig`]).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect to `addr` under `cfg`'s connect/read timeouts.
    ///
    /// With a connect timeout, every resolved address is tried in turn
    /// (mirroring [`TcpStream::connect`]); the last dial error wins.
    ///
    /// # Errors
    ///
    /// Propagates connect failures, resolution failures, and rejected
    /// socket options (a zero timeout is invalid).
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: &ClientConfig) -> std::io::Result<Client> {
        let writer = match cfg.connect_timeout {
            None => TcpStream::connect(&addr)?,
            Some(timeout) => {
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no candidates",
                            )
                        }))
                    }
                }
            }
        };
        writer.set_read_timeout(cfg.read_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn roundtrip(&mut self, req: &Json) -> Result<Json, ClientError> {
        let mut line = req.to_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Json::parse(resp.trim_end()).map_err(ClientError::Protocol)
    }

    /// Check a response's `ok` flag, converting failures to typed errors.
    fn expect_ok(resp: Json) -> Result<Json, ClientError> {
        match resp.get("ok") {
            Some(&Json::Bool(true)) => Ok(resp),
            Some(&Json::Bool(false)) => {
                let kind = resp.get("error").and_then(Json::as_str).unwrap_or("unknown");
                if kind == "overloaded" {
                    let retry_after_ms =
                        resp.get("retry_after_ms").and_then(Json::as_i64).unwrap_or(1).max(1)
                            as u64;
                    Err(ClientError::Overloaded { retry_after_ms })
                } else if kind == "not_primary" {
                    let leader_hint =
                        resp.get("leader_hint").and_then(Json::as_str).unwrap_or("").to_owned();
                    Err(ClientError::NotPrimary { leader_hint })
                } else {
                    let detail = resp.get("detail").and_then(Json::as_str).unwrap_or("").to_owned();
                    Err(ClientError::Rejected { kind: kind.to_owned(), detail })
                }
            }
            _ => Err(ClientError::Protocol(format!(
                "response lacks an \"ok\" flag: {}",
                resp.to_compact()
            ))),
        }
    }

    /// Submit `inputs` (one inner vector of word bit patterns per
    /// instance) under `key` and block until the coalesced batch executes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] under backpressure,
    /// [`ClientError::Rejected`] on draining/bad-request/execution errors.
    pub fn submit(
        &mut self,
        key: &JobKey,
        inputs: &[Vec<u64>],
        timing: bool,
    ) -> Result<SubmitOk, ClientError> {
        let req = Request::Submit { key: key.clone(), inputs: inputs.to_vec(), timing };
        let resp = Self::expect_ok(self.roundtrip(&req.to_json())?)?;
        let outputs = resp
            .get("outputs")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("submit response lacks \"outputs\"".into()))?
            .iter()
            .map(words_from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(ClientError::Protocol)?;
        let field = |name: &str| resp.get(name).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        Ok(SubmitOk {
            outputs,
            batch_p: field("batch_p"),
            queue_us: field("queue_us"),
            exec_us: field("exec_us"),
            timing: resp.get("timing").cloned(),
        })
    }

    /// Fetch the lightweight queue-depth probe.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.roundtrip(&Request::Status.to_json())?)
    }

    /// Fetch the full observability snapshot.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.roundtrip(&Request::Stats.to_json())?)
    }

    /// Fetch the live Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures, or a response without the
    /// documented `metrics` string.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let resp = Self::expect_ok(self.roundtrip(&Request::Metrics.to_json())?)?;
        resp.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("metrics response lacks \"metrics\"".into()))
    }

    /// Trigger a flight-recorder dump; returns the response (recorded /
    /// overwritten counts, the text tail, and the dump path if one is
    /// configured).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn dump(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.roundtrip(&Request::Dump.to_json())?)
    }

    /// Ask the server to drain and shut down; blocks until every accepted
    /// job has executed and returns the final stats snapshot.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures, or [`ClientError::NotPrimary`]
    /// when the target is a warm standby.
    pub fn drain(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.roundtrip(&Request::Drain.to_json())?)
    }

    /// Ask a warm standby to take over as the serving primary; returns
    /// its acknowledgement (role, replicated high-water mark).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures, or a `not_standby` rejection when
    /// the target is not a standby.
    pub fn promote(&mut self) -> Result<Json, ClientError> {
        Self::expect_ok(self.roundtrip(&Request::Promote.to_json())?)
    }
}
