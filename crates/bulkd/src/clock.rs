//! Time and scheduling as injectable capabilities.
//!
//! Every place the daemon used to reach for `Instant::now()` or park on a
//! raw `Condvar` now goes through the [`Clock`] and [`Scheduler`] traits.
//! In production the real implementations ([`RealClock`],
//! [`ThreadScheduler`]) behave exactly like the primitives they replace.
//! Under deterministic simulation (`crates/sim`) the same daemon code runs
//! single-threaded against a [`VirtualClock`] that only moves when the
//! harness advances it and a [`SimScheduler`] whose wakeup epoch the
//! harness observes instead of blocking on — which is what makes a whole
//! daemon run a pure function of its seed.
//!
//! The [`Scheduler`] is an *eventcount*: readers snapshot [`Scheduler::epoch`]
//! **before** inspecting the guarded state, and [`Scheduler::wait`] returns
//! immediately if any [`Scheduler::notify_all`] happened after that
//! snapshot.  This closes the classic lost-wakeup window without requiring
//! the waiter to hold the state lock while parked (which a virtual-time
//! single-threaded run could never do).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonic clock, measured in microseconds since an arbitrary epoch
/// (process start for the real clock, zero for a virtual one).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed since the clock's epoch.
    fn now_us(&self) -> u64;

    /// Block the calling thread for roughly `dur` (used by client-side
    /// backoff).  A virtual clock advances itself instead of sleeping.
    fn sleep(&self, dur: Duration);
}

/// Wall-clock time via `Instant`, anchored at construction.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is *now*.
    #[must_use]
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn sleep(&self, dur: Duration) {
        std::thread::sleep(dur);
    }
}

/// A clock that only moves when told to.  Shared by the simulation
/// harness and the daemon components it drives.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Jump to `t_us` if it is ahead of the current time (time never
    /// runs backwards; late advances are no-ops).
    pub fn advance_to(&self, t_us: u64) {
        self.now_us.fetch_max(t_us, Ordering::SeqCst);
    }

    /// Move forward by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        self.now_us.fetch_add(delta_us, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::SeqCst)
    }

    fn sleep(&self, dur: Duration) {
        // Sleeping in virtual time *is* advancing the clock.
        self.advance(dur.as_micros() as u64);
    }
}

/// How a blocked consumer waits for state it guards elsewhere to change.
///
/// Usage pattern (the only correct order):
///
/// ```text
/// loop {
///     let epoch = sched.epoch();        // 1. snapshot FIRST
///     if check_guarded_state() { ... }  // 2. then inspect state
///     sched.wait(epoch, deadline);      // 3. park unless notified since 1
/// }
/// ```
pub trait Scheduler: Send + Sync + std::fmt::Debug {
    /// The current wakeup epoch.  Snapshot it *before* checking the
    /// condition you are about to wait on.
    fn epoch(&self) -> u64;

    /// Park until the epoch advances past `epoch` or the clock reaches
    /// `deadline_us` (`None` = wait indefinitely for a notify).  May
    /// return spuriously; callers always re-check their condition.
    fn wait(&self, epoch: u64, deadline_us: Option<u64>);

    /// Advance the epoch and wake every parked waiter.
    fn notify_all(&self);
}

/// The production scheduler: a condition variable over a generation
/// counter, with deadlines measured on the shared [`Clock`].
#[derive(Debug)]
pub struct ThreadScheduler {
    gen: Mutex<u64>,
    cv: Condvar,
    clock: Arc<dyn Clock>,
}

impl ThreadScheduler {
    /// A scheduler timing its deadline waits on `clock`.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self { gen: Mutex::new(0), cv: Condvar::new(), clock }
    }
}

impl Scheduler for ThreadScheduler {
    fn epoch(&self) -> u64 {
        *self.gen.lock().expect("scheduler poisoned")
    }

    fn wait(&self, epoch: u64, deadline_us: Option<u64>) {
        let mut g = self.gen.lock().expect("scheduler poisoned");
        while *g == epoch {
            match deadline_us {
                Some(d) => {
                    let now = self.clock.now_us();
                    if now >= d {
                        return;
                    }
                    // Waking a hair early spins one extra loop; clamp to a
                    // millisecond so near-deadline waits don't busy-poll.
                    let wait = Duration::from_micros((d - now).max(1_000));
                    let (guard, _) = self.cv.wait_timeout(g, wait).expect("scheduler poisoned");
                    g = guard;
                }
                None => g = self.cv.wait(g).expect("scheduler poisoned"),
            }
        }
    }

    fn notify_all(&self) {
        let mut g = self.gen.lock().expect("scheduler poisoned");
        *g = g.wrapping_add(1);
        drop(g);
        self.cv.notify_all();
    }
}

/// The simulation scheduler: never blocks.  `notify_all` bumps the epoch;
/// the single-threaded harness reads [`Scheduler::epoch`] to learn that a
/// parked actor became runnable, and `wait` returns immediately because
/// in a one-thread world blocking would be a deadlock, not a wait.
#[derive(Debug, Default)]
pub struct SimScheduler {
    gen: AtomicU64,
}

impl SimScheduler {
    /// A scheduler at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SimScheduler {
    fn epoch(&self) -> u64 {
        self.gen.load(Ordering::SeqCst)
    }

    fn wait(&self, _epoch: u64, _deadline_us: Option<u64>) {
        // Single-threaded: control must return to the harness, which will
        // only re-step this actor once the epoch moved or time advanced.
    }

    fn notify_all(&self) {
        self.gen.fetch_add(1, Ordering::SeqCst);
    }
}

/// The production runtime pair: one [`RealClock`] shared with a
/// [`ThreadScheduler`] timing its waits on it.
#[must_use]
pub fn real_runtime() -> (Arc<dyn Clock>, Arc<dyn Scheduler>) {
    let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
    let sched: Arc<dyn Scheduler> = Arc::new(ThreadScheduler::new(Arc::clone(&clock)));
    (clock, sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_sleeps() {
        let c = RealClock::new();
        let a = c.now_us();
        c.sleep(Duration::from_millis(2));
        let b = c.now_us();
        assert!(b >= a + 1_000, "slept 2ms but advanced only {}us", b - a);
    }

    #[test]
    fn virtual_clock_moves_only_forward_on_demand() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_to(500);
        assert_eq!(c.now_us(), 500);
        c.advance_to(100); // never backwards
        assert_eq!(c.now_us(), 500);
        c.advance(250);
        assert_eq!(c.now_us(), 750);
        c.sleep(Duration::from_micros(50));
        assert_eq!(c.now_us(), 800);
    }

    #[test]
    fn thread_scheduler_notify_between_snapshot_and_wait_is_not_lost() {
        let (clock, sched) = real_runtime();
        let epoch = sched.epoch();
        sched.notify_all(); // the "lost" wakeup
        let t0 = clock.now_us();
        sched.wait(epoch, None); // must return immediately, not hang
        assert!(clock.now_us() - t0 < 1_000_000, "stale epoch must not block");
    }

    #[test]
    fn thread_scheduler_deadline_fires_without_notify() {
        let (clock, sched) = real_runtime();
        let epoch = sched.epoch();
        let deadline = clock.now_us() + 5_000;
        sched.wait(epoch, Some(deadline));
        assert!(clock.now_us() >= deadline, "wait returned before the deadline");
    }

    #[test]
    fn thread_scheduler_wakes_a_parked_thread() {
        let (_, sched) = real_runtime();
        let sched2 = Arc::clone(&sched);
        let epoch = sched.epoch();
        let h = std::thread::spawn(move || sched2.wait(epoch, None));
        std::thread::sleep(Duration::from_millis(5));
        sched.notify_all();
        h.join().expect("waiter survived");
    }

    #[test]
    fn sim_scheduler_counts_epochs_and_never_blocks() {
        let s = SimScheduler::new();
        assert_eq!(s.epoch(), 0);
        s.notify_all();
        s.notify_all();
        assert_eq!(s.epoch(), 2);
        s.wait(0, None); // returns instantly
        s.wait(2, Some(u64::MAX));
    }
}
