//! The daemon's durability journal: WAL records for accepted jobs.
//!
//! Record types (payloads are compact `obs::json` documents, words as
//! the wire's `"0x…"` bit patterns):
//!
//! ```text
//! submit     (1) := {"job":ID,"algo":NAME,"size":N,"layout":"row"|"col",
//!                    "inputs":[[WORD,…],…]}
//! complete   (2) := {"job":ID,"ok":true,"outputs":[[WORD,…],…]}
//!                 | {"job":ID,"ok":false,"error":TEXT}
//! checkpoint (3) := {"next_job":ID}
//! ```
//!
//! Ordering contract: a job's submit record is appended (and, under
//! `--fsync always`, synced) *before* the accept path makes the job
//! visible to workers, and its complete record is appended *before* the
//! reply reaches the client.  Recovery therefore re-queues exactly the
//! jobs whose submit survived without a matching completion; completed
//! jobs are never re-executed, so every acknowledged job runs exactly
//! once as far as the log is concerned.
//!
//! A checkpoint is written at drain time once every logged submit has
//! its completion: the log rotates, a checkpoint record carrying the
//! job-id high-water mark starts the fresh segment, and all earlier
//! segments are deleted.
//!
//! Under `--fsync always` appends go through *group commit*: each writer
//! appends its record unsynced under the log lock, then waits until a
//! leader-elected fsync covers its sequence number.  Whichever waiter
//! finds no leader running becomes the leader, issues one `fsync`, and
//! publishes the new durable high-water mark — so a convoy of concurrent
//! submits pays one device flush for the whole group instead of one each
//! (the journal-lock convoy measured in EXPERIMENTS.md §9.3).  An fsync
//! failure fail-stops the journal: durability of the page cache is
//! unknowable after a failed flush, so every waiter (and all later
//! appends) get the error instead of a silent retry.

use crate::protocol::{self, JobKey};
use obs::{Histogram, Json};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use wal::record::Record;
use wal::{FsyncPolicy, Wal, WalConfig};

/// Record type: an accepted submit (job id, key, input words).
pub const REC_SUBMIT: u8 = 1;
/// Record type: a job's completion (outputs or the execution error).
pub const REC_COMPLETE: u8 = 2;
/// Record type: a drain-time checkpoint (job-id high-water mark).
pub const REC_CHECKPOINT: u8 = 3;

/// Journal tunables (a thin view over [`WalConfig`]).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory for the segment files.
    pub dir: PathBuf,
    /// Durability dial, forwarded to the log.
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

/// A job recovered from the log: submitted (possibly acknowledged) but
/// never completed before the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// The job id it was accepted under.
    pub id: u64,
    /// Its coalescing key.
    pub key: JobKey,
    /// Per-instance input words (bit patterns).
    pub inputs: Vec<Vec<u64>>,
}

/// What replaying the surviving log yields.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Jobs to re-queue, in original submit order.
    pub requeue: Vec<RecoveredJob>,
    /// First job id the new process may assign (above every recovered id).
    pub next_job_id: u64,
    /// Valid records replayed from the log.
    pub recovered_records: u64,
    /// Submit records whose completion was also found.
    pub already_completed: u64,
    /// Whether opening repaired a torn tail.
    pub torn_tail: bool,
}

struct Inner {
    wal: Wal,
    /// Job ids with a logged submit but no logged completion yet.
    incomplete: HashSet<u64>,
    log_submits: u64,
    log_completions: u64,
}

/// Group-commit state, guarded separately from [`Inner`] so waiters park
/// here while the leader holds the log lock for its fsync.
#[derive(Debug, Default)]
struct GroupState {
    /// Highest sequence number known durable.
    synced_seq: u64,
    /// Whether some waiter is currently the fsync leader.
    leader_running: bool,
    /// Set on the first fsync failure; poisons all later appends.
    failed: Option<String>,
    /// Leader-issued fsyncs (each covering one or more waiters).
    group_syncs: u64,
    /// Appends made durable through the group path.
    group_appends: u64,
    /// Wall-clock latency of each leader fsync, in microseconds.  Real
    /// device time, deliberately off the virtual-clock seam — the
    /// simulator models the WAL at record granularity instead.
    fsync_us: Histogram,
    /// Records covered per leader fsync — the group-commit batch size.
    batch_sizes: Histogram,
}

/// The daemon-facing journal: a [`Wal`] plus the submit/complete
/// bookkeeping, safe to share across connection and worker threads.
pub struct Journal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    recovery_requeued: u64,
    recovery_completed: u64,
    recovery_records: u64,
    recovery_next_job_id: u64,
    inner: Mutex<Inner>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
}

/// Encode a submit record's payload (the documented JSON, compact).
/// Public so the deterministic simulator can build record-level WAL
/// models that the real [`replay`] consumes.
#[must_use]
pub fn submit_payload(id: u64, key: &JobKey, inputs: &[Vec<u64>]) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("job", id);
    o.set("algo", key.algo.as_str());
    o.set("size", key.size);
    o.set("layout", protocol::layout_name(key.layout));
    o.set("inputs", Json::Arr(inputs.iter().map(|i| protocol::words_to_json(i)).collect()));
    o.to_compact().into_bytes()
}

/// Encode a completion record's payload.  Public for the simulator (see
/// [`submit_payload`]).
#[must_use]
pub fn complete_payload(id: u64, result: Result<&[Vec<u64>], &str>) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("job", id);
    match result {
        Ok(outputs) => {
            o.set("ok", true);
            o.set(
                "outputs",
                Json::Arr(outputs.iter().map(|w| protocol::words_to_json(w)).collect()),
            );
        }
        Err(e) => {
            o.set("ok", false);
            o.set("error", e);
        }
    }
    o.to_compact().into_bytes()
}

/// Whether completions whose journal append failed may still be
/// acknowledged.  `false` — the fail-stop contract: after a failed fsync
/// the durability of the page cache is unknowable, so no result backed
/// by an unconfirmed record is ever acked.  The CI-only
/// `bug-ack-before-fsync` feature reintroduces the historical
/// ack-before-durability bug so the simulation harness can prove it
/// catches it — never enable it otherwise.
#[must_use]
pub fn ack_despite_fsync_error() -> bool {
    cfg!(feature = "bug-ack-before-fsync")
}

fn payload_json(rec: &Record) -> Result<Json, String> {
    let text = std::str::from_utf8(&rec.payload)
        .map_err(|e| format!("record seq {} payload is not UTF-8: {e}", rec.seq))?;
    Json::parse(text).map_err(|e| format!("record seq {} payload: {e}", rec.seq))
}

fn field_u64(j: &Json, field: &str, seq: u64) -> Result<u64, String> {
    j.get(field)
        .and_then(Json::as_i64)
        .filter(|&v| v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("record seq {seq} is missing integer \"{field}\""))
}

/// Replay surviving records into the set of jobs that must re-run.
///
/// Pure over the record list, so crash scenarios are unit-testable
/// without touching a filesystem.
///
/// # Errors
///
/// A record whose CRC passed but whose payload does not parse as the
/// documented JSON — that is an implementation bug or foreign file, not
/// a crash artifact, and recovery refuses to guess.
pub fn replay(records: &[Record]) -> Result<Recovery, String> {
    let mut submits: Vec<RecoveredJob> = Vec::new();
    let mut completed: HashSet<u64> = HashSet::new();
    let mut max_id = 0u64;
    let mut checkpoint_next = 1u64;
    for rec in records {
        match rec.rec_type {
            REC_SUBMIT => {
                let j = payload_json(rec)?;
                let id = field_u64(&j, "job", rec.seq)?;
                let algo = j
                    .get("algo")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("record seq {} is missing \"algo\"", rec.seq))?
                    .to_owned();
                let size = field_u64(&j, "size", rec.seq)? as usize;
                let layout = protocol::parse_layout(
                    j.get("layout")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("record seq {} is missing \"layout\"", rec.seq))?,
                )?;
                let inputs = j
                    .get("inputs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("record seq {} is missing \"inputs\"", rec.seq))?
                    .iter()
                    .map(protocol::words_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                if submits.iter().any(|s| s.id == id) {
                    return Err(format!("duplicate submit record for job {id}"));
                }
                max_id = max_id.max(id);
                submits.push(RecoveredJob { id, key: JobKey { algo, size, layout }, inputs });
            }
            REC_COMPLETE => {
                let j = payload_json(rec)?;
                let id = field_u64(&j, "job", rec.seq)?;
                if !completed.insert(id) {
                    return Err(format!("duplicate completion record for job {id}"));
                }
            }
            REC_CHECKPOINT => {
                let j = payload_json(rec)?;
                checkpoint_next = checkpoint_next.max(field_u64(&j, "next_job", rec.seq)?);
            }
            other => return Err(format!("record seq {} has unknown type {other}", rec.seq)),
        }
    }
    let already_completed = submits.iter().filter(|s| completed.contains(&s.id)).count() as u64;
    // `bug-requeue-completed` deliberately reintroduces the exactly-once
    // violation this filter exists to prevent (completed jobs re-queued
    // and re-executed after a crash).  It exists solely so CI can prove
    // the simulation harness catches the bug — never enable it otherwise.
    #[cfg(feature = "bug-requeue-completed")]
    let requeue: Vec<RecoveredJob> = submits;
    #[cfg(not(feature = "bug-requeue-completed"))]
    let requeue: Vec<RecoveredJob> =
        submits.into_iter().filter(|s| !completed.contains(&s.id)).collect();
    Ok(Recovery {
        requeue,
        next_job_id: checkpoint_next.max(max_id + 1),
        recovered_records: records.len() as u64,
        already_completed,
        torn_tail: false,
    })
}

impl Journal {
    /// Open (or create) the journal, repairing any torn tail, and replay
    /// what survived.
    ///
    /// # Errors
    ///
    /// Log I/O failures or a structurally invalid surviving record.
    pub fn open(cfg: &JournalConfig) -> Result<(Self, Recovery), String> {
        let (wal, scan) = Wal::open(WalConfig {
            dir: cfg.dir.clone(),
            segment_bytes: cfg.segment_bytes,
            fsync: cfg.fsync,
        })?;
        let mut recovery = replay(&scan.records)?;
        recovery.torn_tail = scan.truncation.is_some();
        let incomplete: HashSet<u64> = recovery.requeue.iter().map(|r| r.id).collect();
        let journal = Self {
            dir: cfg.dir.clone(),
            fsync: cfg.fsync,
            recovery_requeued: recovery.requeue.len() as u64,
            recovery_completed: recovery.already_completed,
            recovery_records: recovery.recovered_records,
            recovery_next_job_id: recovery.next_job_id,
            inner: Mutex::new(Inner { wal, incomplete, log_submits: 0, log_completions: 0 }),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
        };
        Ok((journal, recovery))
    }

    /// Group-commit append: write the record unsynced under the log lock,
    /// run the bookkeeping, then wait until a leader-elected fsync covers
    /// its sequence number.  Returns the record's WAL sequence number.
    fn append_group(
        &self,
        rec_type: u8,
        payload: &[u8],
        bookkeep: impl FnOnce(&mut Inner),
    ) -> Result<u64, String> {
        // Refuse early once the journal has fail-stopped: appending after
        // a failed fsync would acknowledge records of unknowable fate.
        {
            let g = self.group.lock().expect("journal poisoned");
            if let Some(e) = &g.failed {
                return Err(format!("journal fail-stopped: {e}"));
            }
        }
        let seq = {
            let mut inner = self.inner.lock().expect("journal poisoned");
            match inner.wal.append_unsynced(rec_type, payload) {
                Ok(seq) => {
                    bookkeep(&mut inner);
                    seq
                }
                Err(e) => {
                    drop(inner);
                    return Err(self.fail_stop(e));
                }
            }
        };
        self.wait_durable(seq).map(|()| seq)
    }

    /// Record the first failure (later callers see the original error)
    /// and phrase every caller-visible report the same way: the journal
    /// has fail-stopped.
    fn fail_stop(&self, e: String) -> String {
        let mut g = self.group.lock().expect("journal poisoned");
        let e = g.failed.get_or_insert(e).clone();
        format!("journal fail-stopped: {e}")
    }

    /// Block until sequence number `seq` is durable, electing this thread
    /// leader of one fsync whenever none is running.  The fsync holds the
    /// log lock (appends queue behind it briefly), but every waiter whose
    /// record landed before the leader grabbed the lock shares that one
    /// flush — the group in group commit.
    fn wait_durable(&self, seq: u64) -> Result<(), String> {
        let mut g = self.group.lock().expect("journal poisoned");
        loop {
            if let Some(e) = &g.failed {
                return Err(format!("journal fail-stopped: {e}"));
            }
            if g.synced_seq >= seq {
                return Ok(());
            }
            if g.leader_running {
                g = self.group_cv.wait(g).expect("journal poisoned");
                continue;
            }
            g.leader_running = true;
            drop(g);
            let t0 = Instant::now();
            let res = {
                let mut inner = self.inner.lock().expect("journal poisoned");
                // Everything appended so far — including records from
                // waiters that arrived after ours — rides this one fsync.
                let high = inner.wal.next_seq().saturating_sub(1);
                inner.wal.sync().map(|()| high)
            };
            let fsync_us = t0.elapsed().as_micros() as u64;
            g = self.group.lock().expect("journal poisoned");
            g.leader_running = false;
            match res {
                Ok(high) => {
                    let covered = high.saturating_sub(g.synced_seq);
                    g.group_appends += covered;
                    g.synced_seq = g.synced_seq.max(high);
                    g.group_syncs += 1;
                    g.fsync_us.record(fsync_us);
                    if covered > 0 {
                        g.batch_sizes.record(covered);
                    }
                }
                Err(e) => g.failed = Some(e),
            }
            self.group_cv.notify_all();
        }
    }

    /// Route one logical append through group commit (`always`) or the
    /// log's own policy machinery (`every-n` / `every-ms`, where appends
    /// are cheap and batching happens policy-side already).  Every
    /// policy shares the fail-stop flag: the first append or fsync error
    /// poisons all later appends.
    fn append_record(
        &self,
        rec_type: u8,
        payload: &[u8],
        bookkeep: impl FnOnce(&mut Inner),
    ) -> Result<u64, String> {
        if self.fsync == FsyncPolicy::Always {
            return self.append_group(rec_type, payload, bookkeep);
        }
        {
            let g = self.group.lock().expect("journal poisoned");
            if let Some(e) = &g.failed {
                return Err(format!("journal fail-stopped: {e}"));
            }
        }
        let mut inner = self.inner.lock().expect("journal poisoned");
        match inner.wal.append(rec_type, payload) {
            Ok(seq) => {
                bookkeep(&mut inner);
                Ok(seq)
            }
            Err(e) => {
                drop(inner);
                Err(self.fail_stop(e))
            }
        }
    }

    /// Arm the underlying log's fsync failpoint (test-only fault
    /// injection): the `nth` fsync attempt and every later one fail, and
    /// the journal fail-stops at the first observed failure.
    pub fn inject_fsync_error(&self, nth: u64) {
        self.inner.lock().expect("journal poisoned").wal.inject_fsync_error(nth);
    }

    /// The error the journal fail-stopped on, if it has.
    #[must_use]
    pub fn fail_stopped(&self) -> Option<String> {
        self.group.lock().expect("journal poisoned").failed.clone()
    }

    /// Append (and per policy sync) a submit record.  Call *before* the
    /// job becomes visible to workers.
    ///
    /// # Errors
    ///
    /// Log I/O failures — the caller must then refuse the job.
    pub fn log_submit(&self, id: u64, key: &JobKey, inputs: &[Vec<u64>]) -> Result<(), String> {
        let payload = submit_payload(id, key, inputs);
        self.append_record(REC_SUBMIT, &payload, |inner| {
            inner.incomplete.insert(id);
            inner.log_submits += 1;
        })
        .map(|_seq| ())
    }

    /// Append (and per policy sync) a completion record.  Call *before*
    /// the reply goes to the client.  Returns the record's WAL sequence
    /// number — the mark a replication sink must reach before the reply
    /// may be acknowledged under semi-synchronous replication.
    ///
    /// # Errors
    ///
    /// Log I/O failures.
    pub fn log_complete(&self, id: u64, result: Result<&[Vec<u64>], &str>) -> Result<u64, String> {
        let payload = complete_payload(id, result);
        self.append_record(REC_COMPLETE, &payload, |inner| {
            inner.incomplete.remove(&id);
            inner.log_completions += 1;
        })
    }

    /// The durable WAL high-water mark: the highest sequence number known
    /// to have survived an fsync (under `always`), or the highest appended
    /// sequence number under the batching policies (where durability of
    /// the very tail is by contract a bounded loss window).  This is the
    /// mark a standby's `replicated_seq` is compared against when deciding
    /// whether promotion is safe.
    #[must_use]
    pub fn durable_seq(&self) -> u64 {
        if self.fsync == FsyncPolicy::Always {
            self.group.lock().expect("journal poisoned").synced_seq
        } else {
            self.inner.lock().expect("journal poisoned").wal.next_seq().saturating_sub(1)
        }
    }

    /// Drain-time checkpoint: once every logged submit has completed,
    /// rotate, write a checkpoint record carrying `next_job_id`, sync,
    /// and delete every earlier segment.  Returns whether it ran (it
    /// refuses while any job is incomplete — accounting must balance
    /// before history is discarded).
    ///
    /// # Errors
    ///
    /// Log I/O failures.
    pub fn checkpoint(&self, next_job_id: u64) -> Result<bool, String> {
        let mut inner = self.inner.lock().expect("journal poisoned");
        if !inner.incomplete.is_empty() {
            return Ok(false);
        }
        inner.wal.rotate()?;
        let mut o = Json::obj();
        o.set("next_job", next_job_id);
        let seq = inner.wal.append(REC_CHECKPOINT, o.to_compact().as_bytes())?;
        inner.wal.sync()?;
        inner.wal.truncate_before(seq)?;
        Ok(true)
    }

    /// Snapshot of the leader-fsync latency distribution (microseconds).
    /// Empty unless the policy is `always` (group commit).
    #[must_use]
    pub fn fsync_latency(&self) -> Histogram {
        self.group.lock().expect("journal poisoned").fsync_us.clone()
    }

    /// Snapshot of the records-per-leader-fsync distribution (the group
    /// commit batch size).  Empty unless the policy is `always`.
    #[must_use]
    pub fn group_batch_sizes(&self) -> Histogram {
        self.group.lock().expect("journal poisoned").batch_sizes.clone()
    }

    /// The journal's section of the stats snapshot.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let inner = self.inner.lock().expect("journal poisoned");
        let m = inner.wal.metrics();
        let mut o = Json::obj();
        o.set("enabled", true);
        o.set("dir", self.dir.display().to_string());
        o.set("fsync", self.fsync.to_string());
        o.set("records_appended", m.records_appended);
        o.set("bytes_appended", m.bytes_appended);
        o.set("fsyncs", m.fsyncs);
        o.set("segments_created", m.segments_created);
        o.set("segments_deleted", m.segments_deleted);
        o.set("segment_count", inner.wal.segment_count());
        o.set("torn_tail_truncations", m.torn_tail_truncations);
        o.set("log_submits", inner.log_submits);
        o.set("log_completions", inner.log_completions);
        o.set("incomplete_jobs", inner.incomplete.len());
        let appended_seq = inner.wal.next_seq().saturating_sub(1);
        drop(inner);
        let g = self.group.lock().expect("journal poisoned");
        o.set(
            "durable_seq",
            if self.fsync == FsyncPolicy::Always { g.synced_seq } else { appended_seq },
        );
        o.set("fail_stopped", g.failed.clone().map_or(Json::Null, Json::Str));
        let mut gc = Json::obj();
        gc.set("enabled", self.fsync == FsyncPolicy::Always);
        gc.set("syncs", g.group_syncs);
        gc.set("appends", g.group_appends);
        gc.set("fail_stopped", g.failed.is_some());
        gc.set("fsync_us", g.fsync_us.summary_json());
        gc.set("batch_size", g.batch_sizes.summary_json());
        o.set("group_commit", gc);
        let mut r = Json::obj();
        r.set("runs", u64::from(self.recovery_records > 0));
        r.set("records", self.recovery_records);
        r.set("requeued_jobs", self.recovery_requeued);
        r.set("already_completed_jobs", self.recovery_completed);
        r.set("next_job_id", self.recovery_next_job_id);
        o.set("recovery", r);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::Layout;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "bulkd-journal-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn cfg(dir: &std::path::Path) -> JournalConfig {
        JournalConfig { dir: dir.to_path_buf(), fsync: FsyncPolicy::Always, segment_bytes: 4 << 20 }
    }

    fn key(algo: &str) -> JobKey {
        JobKey { algo: algo.into(), size: 8, layout: Layout::ColumnWise }
    }

    fn submit_rec(seq: u64, id: u64) -> Record {
        Record {
            seq,
            rec_type: REC_SUBMIT,
            payload: submit_payload(id, &key("prefix-sums"), &[vec![1, 2], vec![3, 4]]),
        }
    }

    fn complete_rec(seq: u64, id: u64) -> Record {
        Record {
            seq,
            rec_type: REC_COMPLETE,
            payload: complete_payload(id, Ok(&[vec![9], vec![10]])),
        }
    }

    #[test]
    fn replay_requeues_exactly_the_incomplete_jobs_in_order() {
        let recs = vec![
            submit_rec(1, 1),
            submit_rec(2, 2),
            complete_rec(3, 1),
            submit_rec(4, 3),
            // jobs 2 and 3 never completed
        ];
        let r = replay(&recs).unwrap();
        let ids: Vec<u64> = r.requeue.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![2, 3], "incomplete jobs, original order");
        assert_eq!(r.requeue[0].inputs, vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(r.requeue[0].key, key("prefix-sums"));
        assert_eq!(r.next_job_id, 4);
        assert_eq!(r.already_completed, 1);
    }

    #[test]
    fn replay_honors_the_checkpoint_high_water_mark() {
        let mut o = Json::obj();
        o.set("next_job", 900u64);
        let recs = vec![
            Record { seq: 1, rec_type: REC_CHECKPOINT, payload: o.to_compact().into_bytes() },
            submit_rec(2, 900),
        ];
        let r = replay(&recs).unwrap();
        assert_eq!(r.next_job_id, 901, "above both checkpoint and max seen id");
        assert!(replay(&[]).unwrap().next_job_id == 1, "empty log starts at job 1");
    }

    #[test]
    fn replay_rejects_garbage_payloads_and_duplicates() {
        let bad = Record { seq: 1, rec_type: REC_SUBMIT, payload: b"not json".to_vec() };
        assert!(replay(&[bad]).unwrap_err().contains("seq 1"));
        let unknown = Record { seq: 1, rec_type: 99, payload: Vec::new() };
        assert!(replay(&[unknown]).unwrap_err().contains("unknown type"));
        let dup = vec![submit_rec(1, 5), submit_rec(2, 5)];
        assert!(replay(&dup).unwrap_err().contains("duplicate submit"));
        let dup_c = vec![complete_rec(1, 5), complete_rec(2, 5)];
        assert!(replay(&dup_c).unwrap_err().contains("duplicate completion"));
    }

    #[test]
    fn journal_round_trips_through_a_restart() {
        let dir = temp_dir("restart");
        {
            let (j, r) = Journal::open(&cfg(&dir)).unwrap();
            assert!(r.requeue.is_empty());
            j.log_submit(1, &key("a"), &[vec![1]]).unwrap();
            j.log_submit(2, &key("a"), &[vec![2]]).unwrap();
            j.log_complete(1, Ok(&[vec![11]])).unwrap();
            // Simulate crash: drop without checkpoint.
        }
        let (j, r) = Journal::open(&cfg(&dir)).unwrap();
        assert_eq!(r.requeue.len(), 1);
        assert_eq!(r.requeue[0].id, 2);
        assert_eq!(r.next_job_id, 3);
        let s = j.stats_json();
        assert_eq!(s.path("recovery.requeued_jobs").unwrap().as_i64(), Some(1));
        assert_eq!(s.path("incomplete_jobs").unwrap().as_i64(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_only_when_accounting_balances() {
        let dir = temp_dir("checkpoint");
        {
            let (j, _) = Journal::open(&cfg(&dir)).unwrap();
            j.log_submit(1, &key("a"), &[vec![1]]).unwrap();
            assert!(!j.checkpoint(2).unwrap(), "incomplete job blocks the checkpoint");
            j.log_complete(1, Err("boom")).unwrap();
            assert!(j.checkpoint(2).unwrap());
        }
        // After a checkpoint the log is a single segment holding exactly
        // the checkpoint record; ids continue above the high-water mark.
        let segs = wal::segment::list(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        let (_, r) = Journal::open(&cfg(&dir)).unwrap();
        assert!(r.requeue.is_empty());
        assert_eq!(r.next_job_id, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_amortizes_fsyncs_across_concurrent_appends() {
        use std::sync::Arc;
        let dir = temp_dir("group");
        let (appends, fsyncs, group_syncs) = {
            let (j, _) = Journal::open(&cfg(&dir)).unwrap();
            let j = Arc::new(j);
            const THREADS: u64 = 8;
            const PER: u64 = 25;
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let j = Arc::clone(&j);
                    scope.spawn(move || {
                        for i in 0..PER {
                            let id = t * PER + i + 1;
                            j.log_submit(id, &key("a"), &[vec![id]]).unwrap();
                            j.log_complete(id, Ok(&[vec![id]])).unwrap();
                        }
                    });
                }
            });
            let s = j.stats_json();
            (
                s.path("records_appended").unwrap().as_i64().unwrap(),
                s.path("fsyncs").unwrap().as_i64().unwrap(),
                s.path("group_commit.syncs").unwrap().as_i64().unwrap(),
            )
        };
        assert_eq!(appends, 8 * 25 * 2);
        assert!(fsyncs > 0, "durability still requires some fsyncs");
        assert!(
            fsyncs < appends,
            "group commit must issue fewer fsyncs ({fsyncs}) than appends ({appends})"
        );
        assert_eq!(group_syncs, fsyncs, "under always, every fsync is a group fsync");
        // Everything acknowledged is durable: a reopen finds all 200 jobs
        // submitted and completed, none to requeue.
        let (_, r) = Journal::open(&cfg(&dir)).unwrap();
        assert_eq!(r.recovered_records, 8 * 25 * 2);
        assert!(r.requeue.is_empty());
        assert_eq!(r.already_completed, 8 * 25);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_single_writer_still_syncs_every_append() {
        let dir = temp_dir("group-solo");
        let (j, _) = Journal::open(&cfg(&dir)).unwrap();
        // No concurrency: each append elects itself leader and fsyncs —
        // the `always` contract (durable before return) is unchanged.
        j.log_submit(1, &key("a"), &[vec![1]]).unwrap();
        let seq = j.log_complete(1, Ok(&[vec![2]])).unwrap();
        assert_eq!(seq, 2, "the completion is the second appended record");
        assert_eq!(j.durable_seq(), 2, "under always, every returned append is durable");
        let s = j.stats_json();
        assert_eq!(s.path("durable_seq").unwrap().as_i64(), Some(2));
        assert_eq!(s.path("fsyncs").unwrap().as_i64(), Some(2));
        assert_eq!(s.path("group_commit.enabled").unwrap(), &Json::Bool(true));
        assert_eq!(s.path("group_commit.fail_stopped").unwrap(), &Json::Bool(false));
        // Each leader fsync lands one latency sample and covers one record.
        assert_eq!(j.fsync_latency().total(), 2);
        assert_eq!(j.group_batch_sizes().sum(), 2);
        assert_eq!(s.path("group_commit.fsync_us.total").unwrap().as_i64(), Some(2));
        assert_eq!(s.path("group_commit.batch_size.total").unwrap().as_i64(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_error_fail_stops_every_group_commit_waiter_and_later_submits() {
        use std::sync::Arc;
        let dir = temp_dir("failstop");
        let (j, _) = Journal::open(&cfg(&dir)).unwrap();
        j.log_submit(1, &key("a"), &[vec![1]]).unwrap(); // fsync 1 succeeds
        j.inject_fsync_error(2);
        let j = Arc::new(j);
        // Concurrent appends race into the failing fsync; every waiter —
        // parked or leader — must get an error, not a hang.
        let errs: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let j = Arc::clone(&j);
                    scope.spawn(move || j.log_submit(10 + t, &key("a"), &[vec![t]]).unwrap_err())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(errs.len(), 4);
        for e in &errs {
            assert!(e.contains("journal fail-stopped"), "{e}");
        }
        // Subsequent submits are refused up front.
        let e = j.log_submit(99, &key("a"), &[vec![9]]).unwrap_err();
        assert!(e.contains("fail-stopped"), "{e}");
        // Stats expose the failure.
        let s = j.stats_json();
        assert_eq!(s.path("group_commit.fail_stopped").unwrap(), &Json::Bool(true));
        assert!(s.path("fail_stopped").unwrap().as_str().unwrap().contains("injected"), "{s:?}");
        assert!(j.fail_stopped().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_error_fail_stops_non_group_policies_too() {
        let dir = temp_dir("failstop-everyn");
        let mut c = cfg(&dir);
        c.fsync = FsyncPolicy::EveryN(2);
        let (j, _) = Journal::open(&c).unwrap();
        j.inject_fsync_error(1);
        j.log_submit(1, &key("a"), &[vec![1]]).unwrap(); // below the sync threshold
        let e = j.log_submit(2, &key("a"), &[vec![2]]).unwrap_err();
        assert!(e.contains("journal fail-stopped"), "{e}");
        let e = j.log_submit(3, &key("a"), &[vec![3]]).unwrap_err();
        assert!(e.contains("fail-stopped"), "refused without touching the device: {e}");
        assert!(j.stats_json().path("fail_stopped").unwrap().as_str().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_jobs_recover_as_completed_not_requeued() {
        let dir = temp_dir("failed");
        {
            let (j, _) = Journal::open(&cfg(&dir)).unwrap();
            j.log_submit(7, &key("a"), &[vec![1]]).unwrap();
            j.log_complete(7, Err("executor exploded")).unwrap();
        }
        let (_, r) = Journal::open(&cfg(&dir)).unwrap();
        assert!(r.requeue.is_empty(), "a failed job was answered; never re-run it");
        assert_eq!(r.already_completed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
