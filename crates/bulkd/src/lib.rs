//! `bulkd`: a batch-serving daemon for bulk oblivious execution.
//!
//! The paper's premise is *bulk* execution — one oblivious schedule
//! amortized over `p` independent instances (Theorem 2).  This crate makes
//! that operational for a long-running service: many small client requests
//! arrive over TCP, a [`queue::CoalescingQueue`] groups compatible jobs by
//! `(algo, n, layout)` key, and each flushed batch rides one
//! already-compiled schedule on a fixed worker pool.  The larger the
//! coalesced `p`, the closer the service runs to the paper's amortized
//! regime.
//!
//! Everything here is `std`-only: the wire protocol is newline-delimited
//! JSON over `std::net`, serialized with the `obs::json` codec, and word
//! values cross the wire as `"0x…"` bit-pattern strings so `f32`/`u32`/
//! `u64` payloads survive bit-exactly.
//!
//! Layering (each module usable on its own):
//!
//! - [`clock`] — time and scheduling as injectable capabilities, the seam
//!   that lets the whole daemon run under deterministic simulation;
//! - [`protocol`] — requests, responses, and the hex word codec;
//! - [`queue`] — the coalescing queue with admission control and drain;
//! - [`journal`] — write-ahead logging of accepted jobs and their
//!   completions over the `wal` crate, with crash recovery replay;
//! - [`stats`] — live counters/histograms behind one lock, snapshotted as
//!   a versioned `RunReport`-style JSON document;
//! - [`repl`] — the replication-sink seam a primary's ack path gates on
//!   (implemented by the `repl` crate's WAL shipper);
//! - [`server`] — TCP accept loop, worker pool, and the [`BatchExecutor`]
//!   trait the embedding binary implements to actually run batches;
//! - [`client`] — a small blocking client;
//! - [`loadgen`] — a closed-loop load generator built on the client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod journal;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod repl;
pub mod server;
pub mod stats;

pub use client::{Client, ClientConfig, ClientError, SubmitOk};
pub use clock::{
    real_runtime, Clock, RealClock, Scheduler, SimScheduler, ThreadScheduler, VirtualClock,
};
pub use journal::{Journal, JournalConfig, RecoveredJob, Recovery};
pub use loadgen::{cold_key, jittered_backoff_ms, run_loadgen, LoadgenConfig, LoadgenReport};
pub use protocol::{JobKey, LineFramer, Request, RouteClass, PROTOCOL_VERSION};
pub use queue::{CoalescingQueue, KeyDepth, QueueConfig, StageBreakdown, StageStamps, SubmitError};
pub use repl::ReplSink;
pub use server::{serve, serve_with_listener, BatchExecutor, ServerConfig};
pub use stats::ServerStats;
