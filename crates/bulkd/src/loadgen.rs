//! A closed-loop load generator over the blocking client.
//!
//! `clients` threads each run their own connection and submit
//! back-to-back until the deadline: the offered load is `clients`
//! in-flight jobs, which is exactly what makes coalescing visible — the
//! server groups whatever arrives within one flush window into a single
//! batch.  Per-thread latency/batch-p histograms merge losslessly into
//! one report.

use crate::client::{Client, ClientConfig, ClientError};
use crate::protocol::{JobKey, PROTOCOL_VERSION};
use oblivious::Layout;
use obs::{Histogram, Json, Rng, RunReport};
use std::time::{Duration, Instant};

/// Tunables of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent closed-loop client connections.
    pub clients: usize,
    /// How long to keep submitting.
    pub duration: Duration,
    /// The coalescing key every submit targets.
    pub key: JobKey,
    /// Instances carried by each submit.
    pub instances_per_submit: usize,
    /// Root seed for the per-client RNG streams (backoff jitter).  Same
    /// seed + same server behavior ⇒ same offered load; the report echoes
    /// it so any run can be re-offered.
    pub seed: u64,
    /// Request the per-stage timing breakdown on every submit (exercises
    /// the trace-context echo; off measures the no-instrumentation path).
    pub timing: bool,
    /// Skewed-traffic scenario: most clients hammer `key` while the last
    /// quarter (at least one, when there are ≥ 2 clients) submit to the
    /// cold sibling key ([`cold_key`]) — makes the server's per-key
    /// depth/served/age sections show real asymmetry.
    pub hot_key: bool,
    /// Connect/read timeouts for every client connection (both `None`
    /// reproduces the historical block-forever behavior).
    pub client: ClientConfig,
}

/// The cold sibling of a coalescing key: same algorithm and size (so one
/// input pool serves both), flipped layout.
#[must_use]
pub fn cold_key(key: &JobKey) -> JobKey {
    let layout = match key.layout {
        Layout::RowWise => Layout::ColumnWise,
        Layout::ColumnWise => Layout::RowWise,
    };
    JobKey { algo: key.algo.clone(), size: key.size, layout }
}

/// Per-client RNG stream derived from the run's root seed: run-to-run
/// reproducible, but no two clients share a jitter sequence.
#[must_use]
pub fn client_rng(seed: u64, client_idx: usize) -> Rng {
    Rng::new(seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Aggregated result of a load-generation run.
#[derive(Debug, Default)]
pub struct LoadgenReport {
    /// Jobs submitted (accepted or not).
    pub submitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Overload responses honored with a backoff-and-retry.
    pub overload_retries: u64,
    /// Hard errors (rejections, transport failures).
    pub errors: u64,
    /// End-to-end submit latency per job, microseconds.
    pub latency_us: Histogram,
    /// The queue-wait share of each job's latency (the server-reported
    /// enqueue-to-execution wait).
    pub queue_wait_us: Histogram,
    /// The service share: end-to-end latency minus queue wait (journal +
    /// execution + reply transport).
    pub service_us: Histogram,
    /// The executed batch `p` each completed job reported riding in.
    pub batch_p: Histogram,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
}

impl LoadgenReport {
    fn merge(&mut self, other: &LoadgenReport) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.overload_retries += other.overload_retries;
        self.errors += other.errors;
        self.latency_us.merge(&other.latency_us);
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.service_us.merge(&other.service_us);
        self.batch_p.merge(&other.batch_p);
        self.elapsed = self.elapsed.max(other.elapsed);
    }

    /// The run as a versioned report document.
    #[must_use]
    pub fn to_json(&self, cfg: &LoadgenConfig) -> Json {
        let mut report = RunReport::new("bulkd-loadgen");
        let mut c = Json::obj();
        c.set("addr", cfg.addr.as_str());
        c.set("clients", cfg.clients);
        c.set("duration_ms", cfg.duration.as_millis() as u64);
        c.set("algo", cfg.key.algo.as_str());
        c.set("size", cfg.key.size);
        c.set("layout", crate::protocol::layout_name(cfg.key.layout));
        c.set("instances_per_submit", cfg.instances_per_submit);
        c.set("seed", cfg.seed);
        c.set("timing", cfg.timing);
        c.set("hot_key", cfg.hot_key);
        report.set("config", c);
        // The wire protocol this run spoke, so archived reports from
        // mixed-version clusters stay comparable.
        report.set("protocol_version", PROTOCOL_VERSION);

        let secs = self.elapsed.as_secs_f64().max(1e-9);
        let mut t = Json::obj();
        t.set("submitted_jobs", self.submitted);
        t.set("completed_jobs", self.completed);
        t.set("overload_retries", self.overload_retries);
        t.set("errors", self.errors);
        t.set("jobs_per_sec", self.completed as f64 / secs);
        t.set(
            "instances_per_sec",
            (self.completed * cfg.instances_per_submit as u64) as f64 / secs,
        );
        report.set("throughput", t);

        let mut l = Json::obj();
        l.set("latency_us", self.latency_us.summary_json());
        l.set("queue_wait_us", self.queue_wait_us.summary_json());
        l.set("service_us", self.service_us.summary_json());
        l.set("observed_batch_p", self.batch_p.summary_json());
        l.set("mean_observed_batch_p", self.batch_p.mean());
        report.set("latency", l);
        report.json().clone()
    }
}

/// Drive a closed-loop load against `cfg.addr`, drawing instance inputs
/// round-robin from `pool` (each entry one instance's input words).
///
/// # Errors
///
/// Configuration errors (empty pool, zero clients) and a total failure to
/// connect; transport errors mid-run are counted, not fatal.
pub fn run_loadgen(cfg: &LoadgenConfig, pool: &[Vec<u64>]) -> Result<LoadgenReport, String> {
    if pool.is_empty() {
        return Err("loadgen needs a non-empty input pool".into());
    }
    if cfg.clients == 0 || cfg.instances_per_submit == 0 {
        return Err("loadgen needs at least one client and one instance per submit".into());
    }
    let deadline = Instant::now() + cfg.duration;
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| scope.spawn(move || client_loop(cfg, pool, c, deadline)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen client panicked")).collect::<Vec<_>>()
    });
    let mut total = LoadgenReport::default();
    let mut connected = false;
    for r in &reports {
        match r {
            Ok(rep) => {
                connected = true;
                total.merge(rep);
            }
            Err(e) => return Err(e.clone()),
        }
    }
    if !connected {
        return Err("no loadgen client connected".into());
    }
    Ok(total)
}

/// The server's `retry_after_ms` hint with ±25% uniform jitter applied.
///
/// Every overloaded client gets the same hint; sleeping it verbatim
/// synchronizes their retries into a thundering herd that re-overloads
/// the queue on arrival.  Jitter spreads the herd across half a hint
/// window while keeping the mean backoff equal to the hint.  Public
/// because the router applies the same desynchronization before
/// re-dispatching an overloaded submit to the key's successor node.
#[must_use]
pub fn jittered_backoff_ms(retry_after_ms: u64, rng: &mut Rng) -> u64 {
    let base = retry_after_ms.max(1);
    let lo = base - base / 4;
    let hi = base + base / 4;
    rng.range_u64(lo, hi + 1).max(1)
}

fn client_loop(
    cfg: &LoadgenConfig,
    pool: &[Vec<u64>],
    client_idx: usize,
    deadline: Instant,
) -> Result<LoadgenReport, String> {
    let t0 = Instant::now();
    let mut client = Client::connect_with(&cfg.addr, &cfg.client)
        .map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    let mut rep = LoadgenReport::default();
    let mut rng = client_rng(cfg.seed, client_idx);
    // Hot-key scenario: the last quarter of the clients (at least one,
    // when there are two or more) target the cold sibling key.
    let cold_count = if cfg.hot_key && cfg.clients >= 2 { (cfg.clients / 4).max(1) } else { 0 };
    let key =
        if client_idx >= cfg.clients - cold_count { cold_key(&cfg.key) } else { cfg.key.clone() };
    // Stagger draw positions so clients don't all submit identical work.
    let mut cursor = client_idx * cfg.instances_per_submit;
    while Instant::now() < deadline {
        let inputs: Vec<Vec<u64>> = (0..cfg.instances_per_submit)
            .map(|i| pool[(cursor + i) % pool.len()].clone())
            .collect();
        cursor += cfg.instances_per_submit;
        rep.submitted += 1;
        let sent = Instant::now();
        match client.submit(&key, &inputs, cfg.timing) {
            Ok(ok) => {
                let latency_us = sent.elapsed().as_micros() as u64;
                rep.completed += 1;
                rep.latency_us.record(latency_us);
                rep.queue_wait_us.record(ok.queue_us);
                rep.service_us.record(latency_us.saturating_sub(ok.queue_us));
                rep.batch_p.record(ok.batch_p);
            }
            Err(ClientError::Overloaded { retry_after_ms }) => {
                rep.overload_retries += 1;
                let backoff = jittered_backoff_ms(retry_after_ms, &mut rng);
                let remaining = deadline.saturating_duration_since(Instant::now());
                std::thread::sleep(Duration::from_millis(backoff).min(remaining));
            }
            Err(ClientError::Rejected { kind, .. }) if kind == "draining" => {
                rep.errors += 1;
                break;
            }
            Err(ClientError::Io(_)) => {
                rep.errors += 1;
                break;
            }
            Err(_) => rep.errors += 1,
        }
    }
    rep.elapsed = t0.elapsed();
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::Layout;

    #[test]
    fn report_json_has_throughput_and_latency_sections() {
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:1".into(),
            clients: 2,
            duration: Duration::from_millis(100),
            key: JobKey { algo: "prefix-sums".into(), size: 64, layout: Layout::ColumnWise },
            instances_per_submit: 1,
            seed: 42,
            timing: true,
            hot_key: false,
            client: ClientConfig::default(),
        };
        let mut rep = LoadgenReport {
            submitted: 10,
            completed: 9,
            errors: 1,
            elapsed: Duration::from_secs(1),
            ..LoadgenReport::default()
        };
        rep.latency_us.record_n(500, 9);
        rep.queue_wait_us.record_n(300, 9);
        rep.service_us.record_n(200, 9);
        rep.batch_p.record_n(8, 9);
        let j = rep.to_json(&cfg);
        assert_eq!(j.path("tool").unwrap().as_str(), Some("bulkd-loadgen"));
        assert_eq!(j.path("throughput.completed_jobs").unwrap().as_i64(), Some(9));
        assert_eq!(j.path("throughput.jobs_per_sec").unwrap().as_f64(), Some(9.0));
        assert_eq!(j.path("latency.mean_observed_batch_p").unwrap().as_f64(), Some(8.0));
        // The queue-wait/service split decomposes end-to-end latency.
        assert_eq!(j.path("latency.queue_wait_us.mean").unwrap().as_f64(), Some(300.0));
        assert_eq!(j.path("latency.service_us.mean").unwrap().as_f64(), Some(200.0));
        assert_eq!(j.path("config.seed").unwrap().as_i64(), Some(42));
        assert_eq!(j.path("protocol_version").unwrap().as_i64(), Some(i64::from(PROTOCOL_VERSION)));
        assert_eq!(j.path("config.timing"), Some(&Json::Bool(true)));
        assert_eq!(j.path("config.hot_key"), Some(&Json::Bool(false)));
        assert!(RunReport::parse(&j.to_pretty()).is_ok());
    }

    #[test]
    fn cold_key_flips_only_the_layout() {
        let hot = JobKey { algo: "prefix-sums".into(), size: 64, layout: Layout::ColumnWise };
        let cold = cold_key(&hot);
        assert_eq!(cold.algo, hot.algo);
        assert_eq!(cold.size, hot.size);
        assert_eq!(cold.layout, Layout::RowWise);
        // Involution: flipping twice restores the hot key.
        assert_eq!(cold_key(&cold), hot);
    }

    #[test]
    fn client_rngs_are_seed_deterministic_and_pairwise_distinct() {
        let draw8 = |seed, idx| {
            let mut r = client_rng(seed, idx);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        // Same (seed, client) ⇒ the identical stream.
        assert_eq!(draw8(1234, 0), draw8(1234, 0));
        assert_eq!(draw8(1234, 3), draw8(1234, 3));
        // Different client or different seed ⇒ a different stream.
        assert_ne!(draw8(1234, 0), draw8(1234, 1));
        assert_ne!(draw8(1234, 0), draw8(1235, 0));
    }

    #[test]
    fn backoff_jitter_stays_within_quarter_band_and_desynchronizes() {
        let mut rng = Rng::new(7);
        for base in [1u64, 4, 40, 1000, 60_000] {
            let lo = base - base / 4;
            let hi = base + base / 4;
            let mut seen = std::collections::HashSet::new();
            for _ in 0..200 {
                let b = jittered_backoff_ms(base, &mut rng);
                assert!(b >= lo.max(1) && b <= hi, "base {base}: backoff {b} outside ±25%");
                seen.insert(b);
            }
            if base >= 40 {
                assert!(seen.len() > 10, "base {base}: backoffs barely vary ({seen:?})");
            }
        }
        // Different clients draw different sequences (the anti-herd point).
        let a: Vec<u64> = (0..8).map(|_| jittered_backoff_ms(1000, &mut Rng::new(1))).collect();
        let mut r2 = Rng::new(2);
        let b: Vec<u64> = (0..8).map(|_| jittered_backoff_ms(1000, &mut r2)).collect();
        assert_ne!(a, b);
        // Degenerate hint of 0 still sleeps at least a millisecond.
        assert!(jittered_backoff_ms(0, &mut rng) >= 1);
    }

    #[test]
    fn loadgen_rejects_degenerate_configs() {
        let cfg = LoadgenConfig {
            addr: "127.0.0.1:1".into(),
            clients: 0,
            duration: Duration::from_millis(1),
            key: JobKey { algo: "prefix-sums".into(), size: 64, layout: Layout::ColumnWise },
            instances_per_submit: 1,
            seed: 0,
            timing: false,
            hot_key: false,
            client: ClientConfig::default(),
        };
        assert!(run_loadgen(&cfg, &[vec![0]]).is_err());
        assert!(run_loadgen(&cfg, &[]).is_err());
    }
}
