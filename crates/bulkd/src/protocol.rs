//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Grammar (one JSON document per line, LF-terminated):
//!
//! ```text
//! request  := submit | status | stats | metrics | dump | drain | promote
//! submit   := {"cmd":"submit","algo":NAME,"size":N,"layout":"row"|"col",
//!              "inputs":[[WORD,…],…]           // one inner array per instance
//!              [,"timing":true]}               // opt into the stage breakdown
//! status   := {"cmd":"status"}
//! stats    := {"cmd":"stats"}
//! metrics  := {"cmd":"metrics"}                // Prometheus text exposition
//! dump     := {"cmd":"dump"}                   // flight-recorder snapshot
//! drain    := {"cmd":"drain"}
//! promote  := {"cmd":"promote"}                // standby → serving primary
//! WORD     := "0x" 16 hex digits               // bit pattern, zero-extended
//!
//! response := {"ok":true, …}                   // submit: outputs/batch_p/…
//!                                              // (+"timing":{…} when requested)
//!           | {"ok":false,"error":KIND,"detail":TEXT}
//!           | {"ok":false,"error":"overloaded","retry_after_ms":M}
//!           | {"ok":false,"error":"not_primary","leader_hint":ADDR,"detail":TEXT}
//! ```
//!
//! Words travel as `"0x{:016x}"` bit-pattern strings (`f32::to_bits`
//! zero-extended, integers as-is) — the same encoding the compiled-schedule
//! JSON uses — because a plain JSON number cannot carry NaN payloads or
//! `u64` values above `i64::MAX` exactly.

use oblivious::Layout;
use obs::Json;

/// Version of the wire protocol, echoed in `status` responses.
pub const PROTOCOL_VERSION: u32 = 1;

/// The coalescing key: jobs sharing a key ride one compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Catalog algorithm name (e.g. `"prefix-sums"`).
    pub algo: String,
    /// The algorithm's size parameter.
    pub size: usize,
    /// Physical arrangement of the batch buffer.
    pub layout: Layout,
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.algo, self.size, layout_name(self.layout))
    }
}

/// The protocol's short layout name (`"row"` / `"col"`).
#[must_use]
pub fn layout_name(layout: Layout) -> &'static str {
    match layout {
        Layout::RowWise => "row",
        Layout::ColumnWise => "col",
    }
}

/// Parse a protocol layout name.
///
/// # Errors
///
/// Unknown names are rejected with the accepted alternatives.
pub fn parse_layout(name: &str) -> Result<Layout, String> {
    match name {
        "row" => Ok(Layout::RowWise),
        "col" => Ok(Layout::ColumnWise),
        other => Err(format!("unknown layout \"{other}\" (expected \"row\" or \"col\")")),
    }
}

/// Encode one word's bit pattern for the wire.
#[must_use]
pub fn word_to_hex(bits: u64) -> String {
    format!("0x{bits:016x}")
}

/// Decode a `"0x…"` wire word back to its bit pattern.
///
/// # Errors
///
/// Rejects strings without the `0x` prefix or with non-hex payloads.
pub fn hex_to_word(s: &str) -> Result<u64, String> {
    let digits =
        s.strip_prefix("0x").ok_or_else(|| format!("word \"{s}\" is not a \"0x…\" bit pattern"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("word \"{s}\": {e}"))
}

/// One instance's words as a JSON array of hex strings.
#[must_use]
pub fn words_to_json(words: &[u64]) -> Json {
    Json::Arr(words.iter().map(|&w| Json::Str(word_to_hex(w))).collect())
}

/// Decode one instance's words from a JSON array of hex strings.
///
/// # Errors
///
/// Rejects non-arrays and malformed words.
pub fn words_from_json(j: &Json) -> Result<Vec<u64>, String> {
    let arr = j.as_arr().ok_or("instance inputs must be an array of \"0x…\" words")?;
    arr.iter().map(|w| hex_to_word(w.as_str().ok_or("word must be a \"0x…\" string")?)).collect()
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute `inputs` (one inner vector per instance) under `key`.
    Submit {
        /// Coalescing key.
        key: JobKey,
        /// Per-instance input words as raw bit patterns.
        inputs: Vec<Vec<u64>>,
        /// Echo the per-stage timing breakdown in the reply.
        timing: bool,
    },
    /// Lightweight liveness / queue-depth probe.
    Status,
    /// Full observability snapshot.
    Stats,
    /// Live metrics in Prometheus text exposition format.
    Metrics,
    /// Flight-recorder snapshot: the last N stage events as text + trace.
    Dump,
    /// Stop admitting, finish all accepted jobs, then shut the server down.
    Drain,
    /// Ask a warm standby to take over as the serving primary.  A node
    /// that is not a standby answers a `not_standby` error.
    Promote,
}

/// How a routing tier in front of bulkd nodes must treat each verb.
///
/// The split is what keeps the protocol cluster-transparent: a client
/// speaking to a router sees the same verbs with the same shapes, but
/// each verb has exactly one sane cluster semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteClass {
    /// Forwarded to the single backend that owns the request's coalescing
    /// key — the affinity that preserves one compile and large batches
    /// per key cluster-wide.
    Keyed,
    /// Fanned out to every backend and merged into one cluster response.
    FanOut,
    /// Answered by the routing tier itself (node-local state that has no
    /// meaningful cluster merge).
    Local,
}

impl Request {
    /// This verb's [`RouteClass`] when served through a routing tier.
    #[must_use]
    pub fn route_class(&self) -> RouteClass {
        match self {
            Request::Submit { .. } => RouteClass::Keyed,
            Request::Stats | Request::Metrics | Request::Drain => RouteClass::FanOut,
            // Promote is Local: it targets exactly the node it is sent to
            // (a standby's control port); fanning it out would promote a
            // whole cluster at once.
            Request::Status | Request::Dump | Request::Promote => RouteClass::Local,
        }
    }
}

impl Request {
    /// Parse one protocol line.
    ///
    /// # Errors
    ///
    /// JSON-level failures carry the `obs::json` byte offset and context
    /// snippet; structural failures name the missing or malformed field.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let j = Json::parse(line)?;
        let cmd = j
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request is missing a string \"cmd\" field")?;
        match cmd {
            "status" => Ok(Request::Status),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "dump" => Ok(Request::Dump),
            "drain" => Ok(Request::Drain),
            "promote" => Ok(Request::Promote),
            "submit" => {
                let algo = j
                    .get("algo")
                    .and_then(Json::as_str)
                    .ok_or("submit is missing a string \"algo\" field")?
                    .to_owned();
                let size = j
                    .get("size")
                    .and_then(Json::as_i64)
                    .filter(|&n| n > 0)
                    .ok_or("submit is missing a positive integer \"size\" field")?;
                let layout = parse_layout(
                    j.get("layout")
                        .and_then(Json::as_str)
                        .ok_or("submit is missing a string \"layout\" field")?,
                )?;
                let inputs = j
                    .get("inputs")
                    .and_then(Json::as_arr)
                    .ok_or("submit is missing an array \"inputs\" field")?
                    .iter()
                    .map(words_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let timing = match j.get("timing") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err("\"timing\" must be a boolean".into()),
                };
                let key = JobKey { algo, size: size as usize, layout };
                Ok(Request::Submit { key, inputs, timing })
            }
            other => Err(format!("unknown cmd \"{other}\"")),
        }
    }

    /// Serialize the request to its wire JSON (what clients send).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        match self {
            Request::Status => {
                o.set("cmd", "status");
            }
            Request::Stats => {
                o.set("cmd", "stats");
            }
            Request::Metrics => {
                o.set("cmd", "metrics");
            }
            Request::Dump => {
                o.set("cmd", "dump");
            }
            Request::Drain => {
                o.set("cmd", "drain");
            }
            Request::Promote => {
                o.set("cmd", "promote");
            }
            Request::Submit { key, inputs, timing } => {
                o.set("cmd", "submit");
                o.set("algo", key.algo.as_str());
                o.set("size", key.size);
                o.set("layout", layout_name(key.layout));
                o.set("inputs", Json::Arr(inputs.iter().map(|i| words_to_json(i)).collect()));
                if *timing {
                    o.set("timing", true);
                }
            }
        }
        o
    }
}

/// Incremental line framer: the byte-source seam between a transport
/// (real TCP socket or simulated connection) and the protocol parser.
///
/// Bytes arrive in arbitrary chunks — partial lines, several lines
/// coalesced into one segment, one-byte dribble — and `next_line`
/// yields each complete LF-terminated line exactly once, with the
/// terminator (and any preceding CR) stripped.  Both the real
/// `conn_loop` and the simulator's connection actors drive this same
/// type, so framing behaviour under adversarial chunking is a single
/// code path.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    limit: usize,
}

impl LineFramer {
    /// A framer that rejects unterminated lines longer than `limit` bytes.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        LineFramer { buf: Vec::new(), limit }
    }

    /// Feed a chunk of received bytes, in arrival order.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet yielded as a complete line.  Non-zero
    /// at EOF means the peer disconnected mid-line.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete line, if one has been framed.
    ///
    /// # Errors
    ///
    /// Non-UTF-8 lines and unterminated lines exceeding the length
    /// limit are protocol errors; the connection should be dropped.
    pub fn next_line(&mut self) -> Result<Option<String>, String> {
        let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > self.limit {
                return Err(format!(
                    "line exceeds {} bytes without a terminator ({} buffered)",
                    self.limit,
                    self.buf.len()
                ));
            }
            return Ok(None);
        };
        let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
        line.pop(); // the LF
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        match String::from_utf8(line) {
            Ok(s) => Ok(Some(s)),
            Err(e) => Err(format!("line is not valid UTF-8: {e}")),
        }
    }
}

/// Successful submit response.  `timing` is the per-stage breakdown
/// object, echoed only when the submit opted in with `"timing": true` —
/// the default reply shape is unchanged.
#[must_use]
pub fn resp_outputs(
    outputs: &[Vec<u64>],
    batch_p: usize,
    queue_us: u64,
    exec_us: u64,
    timing: Option<Json>,
) -> Json {
    let mut o = Json::obj();
    o.set("ok", true);
    o.set("outputs", Json::Arr(outputs.iter().map(|w| words_to_json(w)).collect()));
    o.set("batch_p", batch_p);
    o.set("queue_us", queue_us);
    o.set("exec_us", exec_us);
    if let Some(t) = timing {
        o.set("timing", t);
    }
    o
}

/// Error response of the given kind (`"protocol"`, `"bad-request"`,
/// `"draining"`, `"exec"`) with a human-readable detail line.
#[must_use]
pub fn resp_error(kind: &str, detail: &str) -> Json {
    let mut o = Json::obj();
    o.set("ok", false);
    o.set("error", kind);
    o.set("detail", detail);
    o
}

/// Backpressure response: the queue is full, retry after the hinted delay.
#[must_use]
pub fn resp_overloaded(retry_after_ms: u64) -> Json {
    let mut o = Json::obj();
    o.set("ok", false);
    o.set("error", "overloaded");
    o.set("retry_after_ms", retry_after_ms);
    o
}

/// Role refusal: a standby was asked to do primary work (submit, drain).
/// `leader_hint` is the primary's serving address as learned over the
/// replication handshake — clients should redial there.
#[must_use]
pub fn resp_not_primary(leader_hint: &str, detail: &str) -> Json {
    let mut o = Json::obj();
    o.set("ok", false);
    o.set("error", "not_primary");
    o.set("leader_hint", leader_hint);
    o.set("detail", detail);
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip_bit_exactly() {
        let words = vec![0, 1, f32::NAN.to_bits() as u64, u64::MAX, 1 << 63];
        let j = words_to_json(&words);
        assert_eq!(words_from_json(&j).unwrap(), words);
        assert_eq!(word_to_hex(255), "0x00000000000000ff");
        assert!(hex_to_word("255").unwrap_err().contains("0x"));
        assert!(hex_to_word("0xzz").is_err());
    }

    #[test]
    fn submit_round_trips_through_the_wire_format() {
        let req = Request::Submit {
            key: JobKey { algo: "prefix-sums".into(), size: 64, layout: Layout::ColumnWise },
            inputs: vec![vec![1, 2], vec![3, u64::MAX]],
            timing: false,
        };
        let line = req.to_json().to_compact();
        assert!(!line.contains("timing"), "default submits carry no timing field: {line}");
        assert_eq!(Request::parse_line(&line).unwrap(), req);
        for cmd in [
            Request::Status,
            Request::Stats,
            Request::Metrics,
            Request::Dump,
            Request::Drain,
            Request::Promote,
        ] {
            assert_eq!(Request::parse_line(&cmd.to_json().to_compact()).unwrap(), cmd);
        }
    }

    #[test]
    fn every_verb_has_exactly_one_route_class() {
        let submit = Request::Submit {
            key: JobKey { algo: "fft".into(), size: 8, layout: Layout::RowWise },
            inputs: vec![vec![1]],
            timing: false,
        };
        assert_eq!(submit.route_class(), RouteClass::Keyed);
        for fan in [Request::Stats, Request::Metrics, Request::Drain] {
            assert_eq!(fan.route_class(), RouteClass::FanOut, "{fan:?}");
        }
        for local in [Request::Status, Request::Dump, Request::Promote] {
            assert_eq!(local.route_class(), RouteClass::Local, "{local:?}");
        }
    }

    #[test]
    fn timing_opt_in_round_trips_and_rejects_non_booleans() {
        let req = Request::Submit {
            key: JobKey { algo: "fir".into(), size: 8, layout: Layout::RowWise },
            inputs: vec![vec![1]],
            timing: true,
        };
        let line = req.to_json().to_compact();
        assert!(line.contains("\"timing\":true"), "{line}");
        assert_eq!(Request::parse_line(&line).unwrap(), req);
        let e = Request::parse_line(
            r#"{"cmd":"submit","algo":"fir","size":8,"layout":"row","inputs":[],"timing":1}"#,
        )
        .unwrap_err();
        assert!(e.contains("boolean"), "{e}");
    }

    #[test]
    fn malformed_lines_are_diagnosable() {
        // Broken JSON: the obs parser's offset + snippet comes through.
        let e = Request::parse_line("{\"cmd\":").unwrap_err();
        assert!(e.contains("at byte"), "{e}");
        assert!(e.contains("«here»"), "{e}");
        // Structural problems name the field.
        assert!(Request::parse_line("{}").unwrap_err().contains("\"cmd\""));
        let e = Request::parse_line(r#"{"cmd":"submit","algo":"x"}"#).unwrap_err();
        assert!(e.contains("\"size\""), "{e}");
        let e = Request::parse_line(r#"{"cmd":"explode"}"#).unwrap_err();
        assert!(e.contains("unknown cmd"), "{e}");
        let e = Request::parse_line(
            r#"{"cmd":"submit","algo":"x","size":4,"layout":"diagonal","inputs":[]}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown layout"), "{e}");
    }

    #[test]
    fn framer_handles_dribble_coalescing_and_crlf() {
        let mut f = LineFramer::new(1024);
        // One-byte dribble across many pushes.
        for b in b"{\"cmd\":\"status\"}\n" {
            f.push(&[*b]);
        }
        assert_eq!(f.next_line().unwrap().as_deref(), Some("{\"cmd\":\"status\"}"));
        assert_eq!(f.next_line().unwrap(), None);
        // Two lines coalesced into one chunk, plus a partial third.
        f.push(b"a\r\nb\nc");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("a"));
        assert_eq!(f.next_line().unwrap().as_deref(), Some("b"));
        assert_eq!(f.next_line().unwrap(), None);
        assert_eq!(f.buffered(), 1, "partial line stays buffered");
        f.push(b"\n");
        assert_eq!(f.next_line().unwrap().as_deref(), Some("c"));
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn framer_rejects_oversized_and_non_utf8_lines() {
        let mut f = LineFramer::new(4);
        f.push(b"abcdef");
        assert!(f.next_line().unwrap_err().contains("exceeds 4 bytes"));
        let mut f = LineFramer::new(1024);
        f.push(&[0xff, 0xfe, b'\n']);
        assert!(f.next_line().unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn responses_have_the_documented_shape() {
        let r = resp_outputs(&[vec![7]], 32, 120, 450, None);
        assert_eq!(r.path("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.path("batch_p").unwrap().as_i64(), Some(32));
        assert_eq!(r.get("timing"), None, "no timing unless requested");
        let mut t = Json::obj();
        t.set("queue_us", 120u64);
        let r = resp_outputs(&[vec![7]], 32, 120, 450, Some(t));
        assert_eq!(r.path("timing.queue_us").unwrap().as_i64(), Some(120));
        let r = resp_overloaded(5);
        assert_eq!(r.path("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(r.path("retry_after_ms").unwrap().as_i64(), Some(5));
        let r = resp_error("draining", "no new work");
        assert_eq!(r.path("ok"), Some(&Json::Bool(false)));
        assert_eq!(r.path("error").unwrap().as_str(), Some("draining"));
        let r = resp_not_primary("10.0.0.7:7070", "standby refuses drains");
        assert_eq!(r.path("error").unwrap().as_str(), Some("not_primary"));
        assert_eq!(r.path("leader_hint").unwrap().as_str(), Some("10.0.0.7:7070"));
    }
}
