//! The coalescing queue: groups compatible jobs, bounds admission, drains.
//!
//! Jobs sharing a [`JobKey`] accumulate in an open *group*; a group flushes
//! to the ready queue as one batch when its instance count reaches the
//! target `p` (`max_batch`) or its deadline (`flush_after` past the first
//! job) expires — whichever comes first.  A submit's instances are never
//! split across batches.  Admission is bounded by `max_queue` total queued
//! instances; beyond it submitters get [`SubmitError::Overloaded`] with a
//! retry hint instead of unbounded buffering.

use crate::protocol::JobKey;
use std::collections::VecDeque;
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables of a [`CoalescingQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Target batch `p`: a group flushes as soon as it holds this many
    /// instances.
    pub max_batch: usize,
    /// Admission bound on total queued (grouped + ready) instances.
    pub max_queue: usize,
    /// How long a group may wait for more riders before flushing anyway.
    pub flush_after: Duration,
}

/// What a completed job hands back to its submitter.
#[derive(Debug)]
pub struct JobDone {
    /// Per-instance output words (bit patterns), in submission order.
    pub outputs: Vec<Vec<u64>>,
    /// Total instance count of the batch this job rode in.
    pub batch_p: usize,
    /// Microseconds the job waited from enqueue to execution start.
    pub queue_us: u64,
    /// Microseconds the batch spent executing.
    pub exec_us: u64,
}

/// The per-job completion message.
pub type JobReply = Result<JobDone, String>;

/// One accepted submit: its instances plus the channel to answer on.
#[derive(Debug)]
pub struct Job {
    /// Per-instance input words (bit patterns).
    pub inputs: Vec<Vec<u64>>,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Completion channel back to the connection handler.
    pub reply: mpsc::Sender<JobReply>,
}

/// A flushed group, ready for one worker to execute as a unit.
#[derive(Debug)]
pub struct Batch {
    /// The shared coalescing key.
    pub key: JobKey,
    /// The coalesced jobs, in arrival order.
    pub jobs: Vec<Job>,
}

impl Batch {
    /// Total instances across the batch's jobs — the executed `p`.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.jobs.iter().map(|j| j.inputs.len()).sum()
    }
}

/// Why a submit was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is draining; no new work is accepted.
    Draining,
    /// The queue is full; retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff, one flush interval.
        retry_after_ms: u64,
    },
}

#[derive(Debug)]
struct PendingGroup {
    key: JobKey,
    jobs: Vec<Job>,
    instances: usize,
    deadline: Instant,
}

#[derive(Debug, Default)]
struct State {
    groups: Vec<PendingGroup>,
    ready: VecDeque<Batch>,
    queued_instances: usize,
    in_flight_batches: usize,
    draining: bool,
}

/// A point-in-time queue occupancy reading (for `status`/`stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDepth {
    /// Instances waiting in open groups or ready batches.
    pub queued_instances: usize,
    /// Open (not yet flushed) groups.
    pub open_groups: usize,
    /// Flushed batches awaiting a worker.
    pub ready_batches: usize,
    /// Batches currently executing.
    pub in_flight_batches: usize,
    /// Whether the queue has stopped admitting.
    pub draining: bool,
}

/// The coalescing queue.  Shared by connection handlers (producers) and
/// the worker pool (consumers) behind an `Arc`.
#[derive(Debug)]
pub struct CoalescingQueue {
    cfg: QueueConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl CoalescingQueue {
    /// An empty queue with the given tunables.
    #[must_use]
    pub fn new(cfg: QueueConfig) -> Self {
        Self { cfg, state: Mutex::new(State::default()), cv: Condvar::new() }
    }

    /// The configured tunables.
    #[must_use]
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    fn retry_after_ms(&self) -> u64 {
        (self.cfg.flush_after.as_millis() as u64).max(1)
    }

    /// Enqueue a job under `key`.  Non-blocking: the caller waits on the
    /// job's reply channel for completion.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] once [`CoalescingQueue::drain`] has begun;
    /// [`SubmitError::Overloaded`] when accepting the job would exceed
    /// `max_queue` queued instances.
    pub fn submit(&self, key: JobKey, job: Job) -> Result<(), SubmitError> {
        let n = job.inputs.len();
        let mut st = self.state.lock().expect("queue poisoned");
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queued_instances + n > self.cfg.max_queue {
            return Err(SubmitError::Overloaded { retry_after_ms: self.retry_after_ms() });
        }
        st.queued_instances += n;
        let pos = match st.groups.iter().position(|g| g.key == key) {
            Some(pos) => pos,
            None => {
                st.groups.push(PendingGroup {
                    key,
                    jobs: Vec::new(),
                    instances: 0,
                    deadline: Instant::now() + self.cfg.flush_after,
                });
                st.groups.len() - 1
            }
        };
        st.groups[pos].jobs.push(job);
        st.groups[pos].instances += n;
        if st.groups[pos].instances >= self.cfg.max_batch {
            let g = st.groups.remove(pos);
            st.ready.push_back(Batch { key: g.key, jobs: g.jobs });
        }
        // Wake workers either way: a ready batch needs a consumer, a fresh
        // group needs someone to arm its deadline timer.
        self.cv.notify_all();
        Ok(())
    }

    /// Block until a batch is available (size- or deadline-flushed) and
    /// claim it.  Returns `None` once the queue is draining and empty —
    /// the worker-pool exit signal.
    pub fn next_batch(&self) -> Option<Batch> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(b) = st.ready.pop_front() {
                st.queued_instances -= b.instances();
                st.in_flight_batches += 1;
                return Some(b);
            }
            // Flush groups whose deadline has passed (all of them when
            // draining: nothing else is coming to fill them).
            let now = Instant::now();
            let mut flushed = false;
            let mut i = 0;
            while i < st.groups.len() {
                if st.draining || st.groups[i].deadline <= now {
                    let g = st.groups.remove(i);
                    st.ready.push_back(Batch { key: g.key, jobs: g.jobs });
                    flushed = true;
                } else {
                    i += 1;
                }
            }
            if flushed {
                continue;
            }
            if st.draining {
                // Empty and draining: wake the drain() waiter and any
                // sibling workers, then exit.
                self.cv.notify_all();
                return None;
            }
            let wait = st
                .groups
                .iter()
                .map(|g| g.deadline)
                .min()
                .map(|d| d.saturating_duration_since(now).max(Duration::from_millis(1)));
            st = match wait {
                Some(d) => self.cv.wait_timeout(st, d).expect("queue poisoned").0,
                None => self.cv.wait(st).expect("queue poisoned"),
            };
        }
    }

    /// Mark one claimed batch as finished (call after replying to its jobs).
    pub fn batch_done(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.in_flight_batches -= 1;
        self.cv.notify_all();
    }

    /// Stop admitting new jobs, flush every open group, and block until
    /// all accepted work has executed.  Idempotent; concurrent callers all
    /// return once the queue is empty.
    pub fn drain(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.draining = true;
        self.cv.notify_all();
        while st.queued_instances > 0
            || st.in_flight_batches > 0
            || !st.ready.is_empty()
            || !st.groups.is_empty()
        {
            // The timeout is belt-and-braces against a missed wakeup; the
            // normal path is a notify from `batch_done`/`next_batch`.
            st = self.cv.wait_timeout(st, Duration::from_millis(50)).expect("queue poisoned").0;
        }
    }

    /// A point-in-time occupancy reading.
    #[must_use]
    pub fn depth(&self) -> QueueDepth {
        let st = self.state.lock().expect("queue poisoned");
        QueueDepth {
            queued_instances: st.queued_instances,
            open_groups: st.groups.len(),
            ready_batches: st.ready.len(),
            in_flight_batches: st.in_flight_batches,
            draining: st.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::Layout;
    use std::sync::Arc;

    fn key(algo: &str) -> JobKey {
        JobKey { algo: algo.into(), size: 8, layout: Layout::ColumnWise }
    }

    fn job(instances: usize) -> (Job, mpsc::Receiver<JobReply>) {
        let (tx, rx) = mpsc::channel();
        let inputs = vec![vec![0u64; 2]; instances];
        (Job { inputs, enqueued: Instant::now(), reply: tx }, rx)
    }

    fn queue(max_batch: usize, max_queue: usize, flush_ms: u64) -> CoalescingQueue {
        CoalescingQueue::new(QueueConfig {
            max_batch,
            max_queue,
            flush_after: Duration::from_millis(flush_ms),
        })
    }

    #[test]
    fn size_trigger_flushes_a_full_group() {
        let q = queue(4, 100, 60_000);
        for _ in 0..3 {
            q.submit(key("a"), job(1).0).unwrap();
        }
        assert_eq!(q.depth().open_groups, 1);
        assert_eq!(q.depth().ready_batches, 0);
        q.submit(key("a"), job(1).0).unwrap();
        let d = q.depth();
        assert_eq!((d.open_groups, d.ready_batches), (0, 1));
        let b = q.next_batch().unwrap();
        assert_eq!(b.instances(), 4);
        assert_eq!(b.jobs.len(), 4);
        assert_eq!(q.depth().in_flight_batches, 1);
        q.batch_done();
        assert_eq!(q.depth().in_flight_batches, 0);
    }

    #[test]
    fn deadline_trigger_flushes_a_partial_group() {
        let q = queue(1000, 100, 20);
        q.submit(key("a"), job(2).0).unwrap();
        let t0 = Instant::now();
        let b = q.next_batch().expect("deadline flush");
        assert!(t0.elapsed() >= Duration::from_millis(10), "flushed too early");
        assert_eq!(b.instances(), 2);
        q.batch_done();
    }

    #[test]
    fn distinct_keys_never_share_a_batch() {
        let q = queue(2, 100, 60_000);
        q.submit(key("a"), job(1).0).unwrap();
        q.submit(key("b"), job(1).0).unwrap();
        assert_eq!(q.depth().open_groups, 2);
        q.submit(key("a"), job(1).0).unwrap();
        let b = q.next_batch().unwrap();
        assert_eq!(b.key, key("a"));
        assert_eq!(b.instances(), 2);
        q.batch_done();
    }

    #[test]
    fn admission_control_rejects_over_limit_submits() {
        let q = queue(1000, 4, 60_000);
        q.submit(key("a"), job(3).0).unwrap();
        // 3 + 2 > 4: rejected with a retry hint, and nothing enqueued.
        let err = q.submit(key("a"), job(2).0).unwrap_err();
        assert_eq!(err, SubmitError::Overloaded { retry_after_ms: 60_000 });
        assert_eq!(q.depth().queued_instances, 3);
        // A fitting submit still gets in.
        q.submit(key("a"), job(1).0).unwrap();
        assert_eq!(q.depth().queued_instances, 4);
    }

    #[test]
    fn drain_completes_accepted_work_and_rejects_new() {
        let q = Arc::new(queue(1000, 100, 60_000));
        let (j, rx) = job(2);
        q.submit(key("a"), j).unwrap();
        // A worker thread consumes until shutdown.
        let qc = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut served = 0;
            while let Some(b) = qc.next_batch() {
                let p = b.instances();
                for jb in b.jobs {
                    let done = JobDone {
                        outputs: vec![vec![9]; jb.inputs.len()],
                        batch_p: p,
                        queue_us: 0,
                        exec_us: 0,
                    };
                    jb.reply.send(Ok(done)).unwrap();
                }
                served += p;
                qc.batch_done();
            }
            served
        });
        q.drain();
        assert_eq!(q.submit(key("a"), job(1).0), Err(SubmitError::Draining));
        let d = q.depth();
        assert_eq!((d.queued_instances, d.in_flight_batches), (0, 0));
        assert!(d.draining);
        // The accepted job completed with its reply delivered.
        let done = rx.recv().unwrap().unwrap();
        assert_eq!(done.outputs.len(), 2);
        assert_eq!(worker.join().unwrap(), 2);
    }

    #[test]
    fn concurrent_single_instance_submits_coalesce() {
        let q = Arc::new(queue(8, 1000, 50));
        let qc = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut batches = Vec::new();
            while let Some(b) = qc.next_batch() {
                let p = b.instances();
                batches.push(p);
                for jb in b.jobs {
                    let done = JobDone {
                        outputs: vec![vec![0]; jb.inputs.len()],
                        batch_p: p,
                        queue_us: 0,
                        exec_us: 0,
                    };
                    jb.reply.send(Ok(done)).unwrap();
                }
                qc.batch_done();
            }
            batches
        });
        let mut receivers = Vec::new();
        for _ in 0..32 {
            let (j, rx) = job(1);
            q.submit(key("a"), j).unwrap();
            receivers.push(rx);
        }
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok());
        }
        q.drain();
        let batches = worker.join().unwrap();
        assert_eq!(batches.iter().sum::<usize>(), 32);
        assert!(batches.len() < 32, "32 submits must coalesce into fewer batches, got {batches:?}");
    }
}
