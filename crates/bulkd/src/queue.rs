//! The coalescing queue: groups compatible jobs, bounds admission, drains.
//!
//! Jobs sharing a [`JobKey`] accumulate in an open *group*; a group flushes
//! to the ready queue as one batch when its instance count reaches the
//! target `p` (`max_batch`) or its deadline (`flush_after` past the first
//! job) expires — whichever comes first.  A submit's instances are never
//! split across batches.  Admission is bounded by `max_queue` total queued
//! instances; beyond it submitters get [`SubmitError::Overloaded`] with a
//! retry hint instead of unbounded buffering.
//!
//! All time flows through the injected [`Clock`] (microseconds) and all
//! blocking through the injected [`Scheduler`], so the same queue runs
//! under the production thread pool *and* single-threaded deterministic
//! simulation: the non-blocking core ([`CoalescingQueue::try_next_batch`],
//! [`CoalescingQueue::begin_drain`], [`CoalescingQueue::drained`]) is what
//! the simulator drives directly; the blocking wrappers
//! ([`CoalescingQueue::next_batch`], [`CoalescingQueue::drain`]) are thin
//! epoch-checked loops over it.

use crate::clock::{real_runtime, Clock, Scheduler};
use crate::protocol::JobKey;
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Tunables of a [`CoalescingQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Target batch `p`: a group flushes as soon as it holds this many
    /// instances.
    pub max_batch: usize,
    /// Admission bound on total queued (grouped + ready) instances.
    pub max_queue: usize,
    /// How long a group may wait for more riders before flushing anyway.
    pub flush_after: Duration,
}

/// Per-stage timing breakdown of one completed job, all in microseconds
/// on the daemon's [`Clock`].  This is the trace context's final form:
/// the monotone stage stamps collapsed into the durations an operator
/// (or the opt-in `"timing"` reply echo) actually reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Admission → submit-record durable (includes the group-commit wait).
    pub journal_us: u64,
    /// Enqueue → the job's group flushed into a ready batch.
    pub queue_us: u64,
    /// Batch assembled → a worker started executing it.
    pub dispatch_us: u64,
    /// Batch execution (compile-or-cache-hit plus the sharded replay).
    pub exec_us: u64,
    /// Execution end → completion journaled and the reply written.
    pub finalize_us: u64,
    /// Admission → reply written, end to end.
    pub total_us: u64,
}

impl StageBreakdown {
    /// The breakdown as a JSON object (field order = stage order).
    #[must_use]
    pub fn to_json(&self) -> obs::Json {
        let mut o = obs::Json::obj();
        o.set("journal_us", self.journal_us);
        o.set("queue_us", self.queue_us);
        o.set("dispatch_us", self.dispatch_us);
        o.set("exec_us", self.exec_us);
        o.set("finalize_us", self.finalize_us);
        o.set("total_us", self.total_us);
        o
    }
}

/// What a completed job hands back to its submitter.
#[derive(Debug)]
pub struct JobDone {
    /// Per-instance output words (bit patterns), in submission order.
    pub outputs: Vec<Vec<u64>>,
    /// Total instance count of the batch this job rode in.
    pub batch_p: usize,
    /// Microseconds the job waited from enqueue to execution start.
    pub queue_us: u64,
    /// Microseconds the batch spent executing.
    pub exec_us: u64,
    /// Full stage breakdown, present when the submit opted into timing.
    pub breakdown: Option<StageBreakdown>,
}

/// The per-job completion message.
pub type JobReply = Result<JobDone, String>;

/// Monotone stage timestamps a job accumulates on its way through the
/// daemon, in clock microseconds.  Zero means "not reached" (or not
/// applicable — e.g. `journaled_us` with the WAL off records the same
/// instant as admission).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStamps {
    /// Admission accepted the job (trace context opened).
    pub accepted_us: u64,
    /// The submit record became durable (after any group-commit wait).
    pub journaled_us: u64,
    /// The job's group flushed into a ready batch (stamped by the queue).
    pub assembled_us: u64,
}

/// One accepted submit: its instances plus the channel to answer on.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned job id — also the job's trace id (unique across
    /// restarts via the WAL).
    pub id: u64,
    /// Per-instance input words (bit patterns).
    pub inputs: Vec<Vec<u64>>,
    /// Clock time (microseconds) at which the job entered the queue.
    pub enqueued_us: u64,
    /// Completion channel back to the connection handler.
    pub reply: mpsc::Sender<JobReply>,
    /// Stage timestamps recorded so far (the per-job trace context).
    pub stages: StageStamps,
    /// Whether the submitter asked for the timing breakdown in its reply.
    pub timing: bool,
}

impl Job {
    /// A job with empty stage stamps and no timing opt-in — the common
    /// construction for recovery requeues and tests.
    #[must_use]
    pub fn new(
        id: u64,
        inputs: Vec<Vec<u64>>,
        enqueued_us: u64,
        reply: mpsc::Sender<JobReply>,
    ) -> Self {
        Self { id, inputs, enqueued_us, reply, stages: StageStamps::default(), timing: false }
    }
}

/// A flushed group, ready for one worker to execute as a unit.
#[derive(Debug)]
pub struct Batch {
    /// The shared coalescing key.
    pub key: JobKey,
    /// The coalesced jobs, in arrival order.
    pub jobs: Vec<Job>,
}

impl Batch {
    /// Total instances across the batch's jobs — the executed `p`.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.jobs.iter().map(|j| j.inputs.len()).sum()
    }
}

/// Why a submit was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is draining; no new work is accepted.
    Draining,
    /// The queue is full; retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff, one flush interval.
        retry_after_ms: u64,
    },
}

/// Outcome of one non-blocking poll for work.
#[derive(Debug)]
pub enum TryNext {
    /// A batch was claimed; execute it, then call
    /// [`CoalescingQueue::batch_done`].
    Batch(Batch),
    /// Nothing ready.  `next_deadline_us` is the earliest open-group
    /// flush deadline, if any group is open — the time by which polling
    /// again is guaranteed to make progress.
    Empty {
        /// Earliest open-group deadline on the queue's clock.
        next_deadline_us: Option<u64>,
    },
    /// The queue is draining and empty: the consumer should exit.
    Drained,
}

/// Capacity held against `max_queue` by [`CoalescingQueue::reserve`],
/// waiting to be turned into a visible job by
/// [`CoalescingQueue::enqueue`] or released by
/// [`CoalescingQueue::cancel`].
///
/// The two-phase shape exists for write-ahead logging: a submit must be
/// *admitted* (capacity reserved) before it is journaled, but must not
/// become visible to workers until the journal append succeeded —
/// otherwise a completion could be executed (and logged) for a job whose
/// submit record never made it to disk.
#[derive(Debug)]
#[must_use = "a reservation holds queue capacity until enqueued or cancelled"]
pub struct Admission {
    instances: usize,
}

#[derive(Debug)]
struct PendingGroup {
    key: JobKey,
    jobs: Vec<Job>,
    instances: usize,
    deadline_us: u64,
}

#[derive(Debug, Default)]
struct State {
    groups: Vec<PendingGroup>,
    ready: VecDeque<Batch>,
    queued_instances: usize,
    in_flight_batches: usize,
    draining: bool,
}

/// A point-in-time queue occupancy reading (for `status`/`stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDepth {
    /// Instances waiting in open groups or ready batches.
    pub queued_instances: usize,
    /// Open (not yet flushed) groups.
    pub open_groups: usize,
    /// Flushed batches awaiting a worker.
    pub ready_batches: usize,
    /// Batches currently executing.
    pub in_flight_batches: usize,
    /// Whether the queue has stopped admitting.
    pub draining: bool,
}

/// Waiting work under one coalescing key — the observable half of the
/// multi-tenant fairness question: is a hot key starving the others?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyDepth {
    /// The coalescing key.
    pub key: JobKey,
    /// Instances waiting under this key (open group + ready batches).
    pub queued_instances: usize,
    /// Jobs waiting under this key.
    pub waiting_jobs: usize,
    /// Enqueue stamp of the longest-waiting job, when any is waiting.
    pub oldest_enqueued_us: Option<u64>,
}

/// The coalescing queue.  Shared by connection handlers (producers) and
/// the worker pool (consumers) behind an `Arc`.
#[derive(Debug)]
pub struct CoalescingQueue {
    cfg: QueueConfig,
    clock: Arc<dyn Clock>,
    sched: Arc<dyn Scheduler>,
    state: Mutex<State>,
}

impl CoalescingQueue {
    /// An empty queue on the production runtime (real clock, condvar
    /// scheduler).
    #[must_use]
    pub fn new(cfg: QueueConfig) -> Self {
        let (clock, sched) = real_runtime();
        Self::with_runtime(cfg, clock, sched)
    }

    /// An empty queue on an injected runtime — a [`crate::clock::VirtualClock`]
    /// plus [`crate::clock::SimScheduler`] puts the queue under
    /// deterministic simulation control.
    #[must_use]
    pub fn with_runtime(
        cfg: QueueConfig,
        clock: Arc<dyn Clock>,
        sched: Arc<dyn Scheduler>,
    ) -> Self {
        Self { cfg, clock, sched, state: Mutex::new(State::default()) }
    }

    /// The configured tunables.
    #[must_use]
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// The scheduler this queue notifies (shared with its consumers).
    #[must_use]
    pub fn scheduler(&self) -> &Arc<dyn Scheduler> {
        &self.sched
    }

    fn retry_after_ms(&self) -> u64 {
        (self.cfg.flush_after.as_millis() as u64).max(1)
    }

    /// Enqueue a job under `key`.  Non-blocking: the caller waits on the
    /// job's reply channel for completion.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] once [`CoalescingQueue::drain`] has begun;
    /// [`SubmitError::Overloaded`] when accepting the job would exceed
    /// `max_queue` queued instances.
    pub fn submit(&self, key: JobKey, job: Job) -> Result<(), SubmitError> {
        let adm = self.reserve(job.inputs.len())?;
        self.enqueue(adm, key, job);
        Ok(())
    }

    /// Phase one of admission: reserve capacity for `instances` without
    /// making anything visible to workers.  Follow with
    /// [`CoalescingQueue::enqueue`] or [`CoalescingQueue::cancel`].
    ///
    /// # Errors
    ///
    /// Same admission rules as [`CoalescingQueue::submit`].
    pub fn reserve(&self, instances: usize) -> Result<Admission, SubmitError> {
        let mut st = self.state.lock().expect("queue poisoned");
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queued_instances + instances > self.cfg.max_queue {
            return Err(SubmitError::Overloaded { retry_after_ms: self.retry_after_ms() });
        }
        st.queued_instances += instances;
        Ok(Admission { instances })
    }

    /// Reserve capacity bypassing the admission bound and drain check.
    ///
    /// Only for WAL recovery replay: journaled jobs were already admitted
    /// (and possibly acknowledged) in a previous life, so turning them
    /// away now would break the acked-implies-completed contract.
    pub fn reserve_unbounded(&self, instances: usize) -> Admission {
        let mut st = self.state.lock().expect("queue poisoned");
        st.queued_instances += instances;
        Admission { instances }
    }

    /// Release a reservation without enqueuing (the journal append
    /// failed, or the caller aborted between the phases).
    pub fn cancel(&self, adm: Admission) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.queued_instances -= adm.instances;
        drop(st);
        self.sched.notify_all();
    }

    /// Phase two of admission: make a reserved job visible to workers.
    /// Infallible — capacity was granted at [`CoalescingQueue::reserve`]
    /// time, and a drain that began in between still owes the job
    /// execution (it was admitted first).
    ///
    /// # Panics
    ///
    /// If the reservation's instance count does not match the job's.
    pub fn enqueue(&self, adm: Admission, key: JobKey, job: Job) {
        let n = job.inputs.len();
        assert_eq!(adm.instances, n, "reservation/job instance mismatch");
        let now = self.clock.now_us();
        let deadline_us = now + self.cfg.flush_after.as_micros() as u64;
        let mut st = self.state.lock().expect("queue poisoned");
        let pos = match st.groups.iter().position(|g| g.key == key) {
            Some(pos) => pos,
            None => {
                st.groups.push(PendingGroup { key, jobs: Vec::new(), instances: 0, deadline_us });
                st.groups.len() - 1
            }
        };
        st.groups[pos].jobs.push(job);
        st.groups[pos].instances += n;
        if st.groups[pos].instances >= self.cfg.max_batch {
            Self::flush_group(&mut st, pos, now);
        }
        drop(st);
        // Wake workers either way: a ready batch needs a consumer, a fresh
        // group needs someone to arm its deadline timer.
        self.sched.notify_all();
    }

    /// Non-blocking poll: claim a ready batch, flushing any group whose
    /// deadline has passed (all of them when draining — nothing else is
    /// coming to fill them).  This is the consumer core the simulator
    /// drives directly; threads use [`CoalescingQueue::next_batch`].
    pub fn try_next_batch(&self) -> TryNext {
        let now = self.clock.now_us();
        let mut st = self.state.lock().expect("queue poisoned");
        let mut i = 0;
        while i < st.groups.len() {
            if st.draining || st.groups[i].deadline_us <= now {
                Self::flush_group(&mut st, i, now);
            } else {
                i += 1;
            }
        }
        if let Some(b) = st.ready.pop_front() {
            st.queued_instances -= b.instances();
            st.in_flight_batches += 1;
            return TryNext::Batch(b);
        }
        if st.draining {
            if st.in_flight_batches == 0 {
                // Queue empty, nothing in flight: tell the drain waiter.
                drop(st);
                self.sched.notify_all();
                return TryNext::Drained;
            }
            return TryNext::Drained;
        }
        TryNext::Empty { next_deadline_us: st.groups.iter().map(|g| g.deadline_us).min() }
    }

    /// Block until a batch is available (size- or deadline-flushed) and
    /// claim it.  Returns `None` once the queue is draining and empty —
    /// the worker-pool exit signal.
    pub fn next_batch(&self) -> Option<Batch> {
        loop {
            let epoch = self.sched.epoch();
            match self.try_next_batch() {
                TryNext::Batch(b) => return Some(b),
                TryNext::Drained => return None,
                TryNext::Empty { next_deadline_us } => self.sched.wait(epoch, next_deadline_us),
            }
        }
    }

    /// Mark one claimed batch as finished (call after replying to its jobs).
    pub fn batch_done(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.in_flight_batches -= 1;
        drop(st);
        self.sched.notify_all();
    }

    /// Stop admitting new jobs and wake every consumer so open groups
    /// flush.  Non-blocking half of [`CoalescingQueue::drain`]; pair with
    /// [`CoalescingQueue::drained`] polling.  Idempotent.
    pub fn begin_drain(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.draining = true;
        drop(st);
        self.sched.notify_all();
    }

    /// Whether every accepted job has finished executing (only
    /// meaningful once [`CoalescingQueue::begin_drain`] ran).
    #[must_use]
    pub fn drained(&self) -> bool {
        let st = self.state.lock().expect("queue poisoned");
        st.queued_instances == 0
            && st.in_flight_batches == 0
            && st.ready.is_empty()
            && st.groups.is_empty()
    }

    /// Stop admitting new jobs, flush every open group, and block until
    /// all accepted work has executed.  Idempotent; concurrent callers all
    /// return once the queue is empty.
    pub fn drain(&self) {
        self.begin_drain();
        loop {
            let epoch = self.sched.epoch();
            if self.drained() {
                return;
            }
            // The deadline is belt-and-braces against a missed wakeup; the
            // normal path is a notify from `batch_done`/`try_next_batch`.
            self.sched.wait(epoch, Some(self.clock.now_us() + 50_000));
        }
    }

    /// Move group `i` to the ready queue, stamping every rider's
    /// batch-assembled time.  Caller holds the state lock.
    fn flush_group(st: &mut State, i: usize, now: u64) {
        let mut g = st.groups.remove(i);
        for j in &mut g.jobs {
            j.stages.assembled_us = now;
        }
        st.ready.push_back(Batch { key: g.key, jobs: g.jobs });
    }

    /// Per-key occupancy: waiting instances/jobs and the oldest enqueue
    /// stamp under each key with work outstanding, sorted by key.  Scans
    /// open groups and ready batches under the lock — both are bounded by
    /// `max_queue` instances, so the scan is as cheap as [`Self::depth`].
    #[must_use]
    pub fn per_key_depth(&self) -> Vec<KeyDepth> {
        let st = self.state.lock().expect("queue poisoned");
        let mut out: Vec<KeyDepth> = Vec::new();
        {
            let mut fold = |key: &JobKey, jobs: &[Job]| {
                let slot = match out.iter_mut().find(|d| &d.key == key) {
                    Some(s) => s,
                    None => {
                        out.push(KeyDepth {
                            key: key.clone(),
                            queued_instances: 0,
                            waiting_jobs: 0,
                            oldest_enqueued_us: None,
                        });
                        out.last_mut().expect("just pushed")
                    }
                };
                for j in jobs {
                    slot.queued_instances += j.inputs.len();
                    slot.waiting_jobs += 1;
                    slot.oldest_enqueued_us = Some(match slot.oldest_enqueued_us {
                        Some(t) => t.min(j.enqueued_us),
                        None => j.enqueued_us,
                    });
                }
            };
            for g in &st.groups {
                fold(&g.key, &g.jobs);
            }
            for b in &st.ready {
                fold(&b.key, &b.jobs);
            }
        }
        drop(st);
        out.sort_by_key(|d| d.key.to_string());
        out
    }

    /// A point-in-time occupancy reading.
    #[must_use]
    pub fn depth(&self) -> QueueDepth {
        let st = self.state.lock().expect("queue poisoned");
        QueueDepth {
            queued_instances: st.queued_instances,
            open_groups: st.groups.len(),
            ready_batches: st.ready.len(),
            in_flight_batches: st.in_flight_batches,
            draining: st.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimScheduler, VirtualClock};
    use oblivious::Layout;
    use std::time::Instant;

    fn key(algo: &str) -> JobKey {
        JobKey { algo: algo.into(), size: 8, layout: Layout::ColumnWise }
    }

    fn job(instances: usize) -> (Job, mpsc::Receiver<JobReply>) {
        let (tx, rx) = mpsc::channel();
        let inputs = vec![vec![0u64; 2]; instances];
        (Job::new(0, inputs, 0, tx), rx)
    }

    fn queue(max_batch: usize, max_queue: usize, flush_ms: u64) -> CoalescingQueue {
        CoalescingQueue::new(QueueConfig {
            max_batch,
            max_queue,
            flush_after: Duration::from_millis(flush_ms),
        })
    }

    /// A queue under a virtual clock the test advances by hand.
    fn sim_queue(
        max_batch: usize,
        max_queue: usize,
        flush_ms: u64,
    ) -> (CoalescingQueue, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        let q = CoalescingQueue::with_runtime(
            QueueConfig { max_batch, max_queue, flush_after: Duration::from_millis(flush_ms) },
            Arc::<VirtualClock>::clone(&clock) as Arc<dyn Clock>,
            Arc::new(SimScheduler::new()),
        );
        (q, clock)
    }

    #[test]
    fn size_trigger_flushes_a_full_group() {
        let q = queue(4, 100, 60_000);
        for _ in 0..3 {
            q.submit(key("a"), job(1).0).unwrap();
        }
        assert_eq!(q.depth().open_groups, 1);
        assert_eq!(q.depth().ready_batches, 0);
        q.submit(key("a"), job(1).0).unwrap();
        let d = q.depth();
        assert_eq!((d.open_groups, d.ready_batches), (0, 1));
        let b = q.next_batch().unwrap();
        assert_eq!(b.instances(), 4);
        assert_eq!(b.jobs.len(), 4);
        assert_eq!(q.depth().in_flight_batches, 1);
        q.batch_done();
        assert_eq!(q.depth().in_flight_batches, 0);
    }

    #[test]
    fn deadline_trigger_flushes_a_partial_group() {
        let q = queue(1000, 100, 20);
        q.submit(key("a"), job(2).0).unwrap();
        let t0 = Instant::now();
        let b = q.next_batch().expect("deadline flush");
        assert!(t0.elapsed() >= Duration::from_millis(10), "flushed too early");
        assert_eq!(b.instances(), 2);
        q.batch_done();
    }

    /// The same deadline semantics, with zero sleeping: under a virtual
    /// clock the flush instant is exact and the test is deterministic.
    #[test]
    fn deadline_flush_is_exact_under_a_virtual_clock() {
        let (q, clock) = sim_queue(1000, 100, 20);
        clock.advance_to(5_000);
        q.submit(key("a"), job(2).0).unwrap();
        match q.try_next_batch() {
            TryNext::Empty { next_deadline_us } => assert_eq!(next_deadline_us, Some(25_000)),
            other => panic!("group must still be open: {other:?}"),
        }
        clock.advance_to(24_999);
        assert!(matches!(q.try_next_batch(), TryNext::Empty { .. }));
        clock.advance_to(25_000);
        match q.try_next_batch() {
            TryNext::Batch(b) => assert_eq!(b.instances(), 2),
            other => panic!("deadline reached, must flush: {other:?}"),
        }
        q.batch_done();
        match q.try_next_batch() {
            TryNext::Empty { next_deadline_us } => assert_eq!(next_deadline_us, None),
            other => panic!("empty queue: {other:?}"),
        }
    }

    #[test]
    fn distinct_keys_never_share_a_batch() {
        let q = queue(2, 100, 60_000);
        q.submit(key("a"), job(1).0).unwrap();
        q.submit(key("b"), job(1).0).unwrap();
        assert_eq!(q.depth().open_groups, 2);
        q.submit(key("a"), job(1).0).unwrap();
        let b = q.next_batch().unwrap();
        assert_eq!(b.key, key("a"));
        assert_eq!(b.instances(), 2);
        q.batch_done();
    }

    #[test]
    fn admission_control_rejects_over_limit_submits() {
        let q = queue(1000, 4, 60_000);
        q.submit(key("a"), job(3).0).unwrap();
        // 3 + 2 > 4: rejected with a retry hint, and nothing enqueued.
        let err = q.submit(key("a"), job(2).0).unwrap_err();
        assert_eq!(err, SubmitError::Overloaded { retry_after_ms: 60_000 });
        assert_eq!(q.depth().queued_instances, 3);
        // A fitting submit still gets in.
        q.submit(key("a"), job(1).0).unwrap();
        assert_eq!(q.depth().queued_instances, 4);
    }

    #[test]
    fn drain_completes_accepted_work_and_rejects_new() {
        let q = Arc::new(queue(1000, 100, 60_000));
        let (j, rx) = job(2);
        q.submit(key("a"), j).unwrap();
        // A worker thread consumes until shutdown.
        let qc = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut served = 0;
            while let Some(b) = qc.next_batch() {
                let p = b.instances();
                for jb in b.jobs {
                    let done = JobDone {
                        outputs: vec![vec![9]; jb.inputs.len()],
                        batch_p: p,
                        queue_us: 0,
                        exec_us: 0,
                        breakdown: None,
                    };
                    jb.reply.send(Ok(done)).unwrap();
                }
                served += p;
                qc.batch_done();
            }
            served
        });
        q.drain();
        assert_eq!(q.submit(key("a"), job(1).0), Err(SubmitError::Draining));
        let d = q.depth();
        assert_eq!((d.queued_instances, d.in_flight_batches), (0, 0));
        assert!(d.draining);
        // The accepted job completed with its reply delivered.
        let done = rx.recv().unwrap().unwrap();
        assert_eq!(done.outputs.len(), 2);
        assert_eq!(worker.join().unwrap(), 2);
    }

    #[test]
    fn concurrent_single_instance_submits_coalesce() {
        let q = Arc::new(queue(8, 1000, 50));
        let qc = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut batches = Vec::new();
            while let Some(b) = qc.next_batch() {
                let p = b.instances();
                batches.push(p);
                for jb in b.jobs {
                    let done = JobDone {
                        outputs: vec![vec![0]; jb.inputs.len()],
                        batch_p: p,
                        queue_us: 0,
                        exec_us: 0,
                        breakdown: None,
                    };
                    jb.reply.send(Ok(done)).unwrap();
                }
                qc.batch_done();
            }
            batches
        });
        let mut receivers = Vec::new();
        for _ in 0..32 {
            let (j, rx) = job(1);
            q.submit(key("a"), j).unwrap();
            receivers.push(rx);
        }
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok());
        }
        q.drain();
        let batches = worker.join().unwrap();
        assert_eq!(batches.iter().sum::<usize>(), 32);
        assert!(batches.len() < 32, "32 submits must coalesce into fewer batches, got {batches:?}");
    }

    #[test]
    fn cancelled_reservation_releases_capacity() {
        let q = queue(1000, 4, 60_000);
        let adm = q.reserve(3).unwrap();
        assert_eq!(q.depth().queued_instances, 3);
        // Capacity is held even though nothing is visible to workers yet.
        assert!(matches!(q.reserve(2), Err(SubmitError::Overloaded { .. })));
        q.cancel(adm);
        assert_eq!(q.depth().queued_instances, 0);
        q.reserve(4).map(|a| q.cancel(a)).unwrap();
    }

    #[test]
    fn reserved_job_can_be_enqueued_after_drain_begins() {
        let q = Arc::new(queue(1000, 100, 60_000));
        let adm = q.reserve(1).unwrap();
        let qc = Arc::clone(&q);
        let drainer = std::thread::spawn(move || qc.drain());
        // Wait until the drain flag is up.
        while !q.depth().draining {
            std::thread::sleep(Duration::from_millis(1));
        }
        // New reservations are refused, but the already-admitted job must
        // still be enqueuable (the drain waits for it).
        assert_eq!(q.reserve(1).unwrap_err(), SubmitError::Draining);
        let (j, rx) = job(1);
        q.enqueue(adm, key("a"), j);
        let b = q.next_batch().expect("drain flushes the admitted job");
        for jb in b.jobs {
            let done = JobDone {
                outputs: vec![vec![1]],
                batch_p: 1,
                queue_us: 0,
                exec_us: 0,
                breakdown: None,
            };
            jb.reply.send(Ok(done)).unwrap();
        }
        q.batch_done();
        assert!(rx.recv().unwrap().is_ok());
        drainer.join().unwrap();
    }

    /// Satellite regression: the `flush_after` deadline timer racing a
    /// concurrent `drain`.  Both paths pull groups out of `st.groups` and
    /// push them to `ready`; the hazard is a job being flushed twice (two
    /// replies) or silently dropped (drain observes an empty queue while
    /// the job sits in a batch a timer wakeup is mid-flushing).  The test
    /// hammers the window: many submitters on distinct keys (so groups
    /// only ever deadline-flush), a tiny flush window, workers consuming,
    /// and a drain fired mid-storm.
    #[test]
    fn deadline_flush_racing_drain_loses_and_duplicates_nothing() {
        const WORKERS: usize = 3;
        const SUBMITTERS: usize = 8;
        let q = Arc::new(queue(1000, 10_000, 2));
        let served = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let qc = Arc::clone(&q);
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    while let Some(b) = qc.next_batch() {
                        let p = b.instances();
                        for jb in b.jobs {
                            let done = JobDone {
                                outputs: vec![vec![7]; jb.inputs.len()],
                                batch_p: p,
                                queue_us: 0,
                                exec_us: 0,
                                breakdown: None,
                            };
                            jb.reply.send(Ok(done)).unwrap();
                        }
                        served.fetch_add(p, std::sync::atomic::Ordering::SeqCst);
                        qc.batch_done();
                    }
                })
            })
            .collect();

        let accepted = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|s| {
                let qc = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    let mut receivers = Vec::new();
                    // A distinct key per (submitter, iteration) keeps every
                    // group below max_batch: only the deadline timer — the
                    // racer under test — can flush it.
                    for i in 0..40 {
                        let (j, rx) = job(1);
                        match qc.submit(key(&format!("k{s}-{i}")), j) {
                            Ok(()) => {
                                accepted.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                receivers.push(rx);
                            }
                            Err(SubmitError::Draining) => break,
                            Err(SubmitError::Overloaded { .. }) => {}
                        }
                        if i % 8 == 0 {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    // Exactly one reply per accepted job — a second flush of
                    // the same group would panic the worker's send (receiver
                    // consumed), a dropped job would hang recv here.
                    let mut replies = 0;
                    for rx in receivers {
                        assert!(rx
                            .recv_timeout(Duration::from_secs(30))
                            .expect("accepted job never replied")
                            .is_ok());
                        replies += 1;
                    }
                    replies
                })
            })
            .collect();

        // Let the storm develop, then drain right through it.
        std::thread::sleep(Duration::from_millis(10));
        q.drain();
        let replies: usize = submitters.into_iter().map(|h| h.join().unwrap()).sum();
        for w in workers {
            w.join().unwrap();
        }
        let accepted = accepted.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(replies, accepted, "replies must match accepted submits");
        assert_eq!(
            served.load(std::sync::atomic::Ordering::SeqCst),
            accepted,
            "served instances must match accepted instances"
        );
        let d = q.depth();
        assert_eq!(
            (d.queued_instances, d.open_groups, d.ready_batches, d.in_flight_batches),
            (0, 0, 0, 0),
            "queue accounting must balance after drain: {d:?}"
        );
        assert!(accepted > 0, "the storm never got going");
    }

    #[test]
    fn reserve_unbounded_ignores_limit_and_drain() {
        let q = queue(1000, 2, 60_000);
        let adm = q.reserve_unbounded(10);
        assert_eq!(q.depth().queued_instances, 10);
        let (j, _rx) = job(10);
        q.enqueue(adm, key("a"), j);
        assert_eq!(q.depth().open_groups, 1);
    }

    /// A job enqueued at a specific virtual instant (for age tracking).
    fn job_at(instances: usize, enqueued_us: u64) -> (Job, mpsc::Receiver<JobReply>) {
        let (tx, rx) = mpsc::channel();
        let inputs = vec![vec![0u64; 2]; instances];
        (Job::new(0, inputs, enqueued_us, tx), rx)
    }

    #[test]
    fn per_key_depth_tracks_waiting_work_and_oldest_age() {
        let (q, clock) = sim_queue(1000, 100, 50);
        clock.advance_to(1_000);
        q.submit(key("hot"), job_at(2, 1_000).0).unwrap();
        clock.advance_to(3_000);
        q.submit(key("hot"), job_at(1, 3_000).0).unwrap();
        q.submit(key("cold"), job_at(4, 3_000).0).unwrap();
        let d = q.per_key_depth();
        assert_eq!(d.len(), 2, "{d:?}");
        // Sorted by key string: "cold/…" before "hot/…".
        assert_eq!(d[0].key, key("cold"));
        assert_eq!((d[0].queued_instances, d[0].waiting_jobs), (4, 1));
        assert_eq!(d[0].oldest_enqueued_us, Some(3_000));
        assert_eq!(d[1].key, key("hot"));
        assert_eq!((d[1].queued_instances, d[1].waiting_jobs), (3, 2));
        assert_eq!(d[1].oldest_enqueued_us, Some(1_000));
        // Ready (flushed) work still counts until a worker claims it.
        clock.advance(60_000);
        match q.try_next_batch() {
            TryNext::Batch(b) => {
                assert!(q.per_key_depth().iter().all(|x| x.key != b.key));
            }
            other => panic!("deadline passed, must flush: {other:?}"),
        }
    }

    #[test]
    fn flush_stamps_every_riders_assembled_time() {
        let (q, clock) = sim_queue(2, 100, 50);
        clock.advance_to(100);
        q.submit(key("a"), job_at(1, 100).0).unwrap();
        clock.advance_to(700);
        q.submit(key("a"), job_at(1, 700).0).unwrap(); // size flush now
        match q.try_next_batch() {
            TryNext::Batch(b) => {
                for j in &b.jobs {
                    assert_eq!(j.stages.assembled_us, 700, "size flush stamps flush instant");
                }
            }
            other => panic!("size-flushed batch expected: {other:?}"),
        }
        q.batch_done();
        // Deadline flush stamps the poll instant that noticed the expiry.
        q.submit(key("b"), job_at(1, 700).0).unwrap();
        clock.advance_to(90_000);
        match q.try_next_batch() {
            TryNext::Batch(b) => assert_eq!(b.jobs[0].stages.assembled_us, 90_000),
            other => panic!("deadline-flushed batch expected: {other:?}"),
        }
        q.batch_done();
    }

    /// The simulator's drive loop in miniature: one thread, virtual time,
    /// non-blocking polls — begin_drain/drained instead of blocking drain.
    #[test]
    fn single_threaded_drain_via_nonblocking_core() {
        let (q, clock) = sim_queue(8, 100, 10);
        let (j, rx) = job(3);
        q.submit(key("a"), j).unwrap();
        q.begin_drain();
        assert!(!q.drained(), "accepted job still owed execution");
        // Draining flushes the open group without waiting for its deadline.
        let b = match q.try_next_batch() {
            TryNext::Batch(b) => b,
            other => panic!("drain must flush the open group: {other:?}"),
        };
        assert_eq!(b.instances(), 3);
        for jb in b.jobs {
            let done = JobDone {
                outputs: vec![vec![1]; 3],
                batch_p: 3,
                queue_us: 0,
                exec_us: 0,
                breakdown: None,
            };
            jb.reply.send(Ok(done)).unwrap();
        }
        assert!(!q.drained(), "batch still in flight");
        q.batch_done();
        assert!(q.drained());
        assert!(matches!(q.try_next_batch(), TryNext::Drained));
        assert!(rx.recv().unwrap().is_ok());
        let _ = clock;
    }
}
