//! The replication seam: how a primary's serve loop talks to a
//! WAL-shipping sink without depending on the `repl` crate (which
//! depends on this one).
//!
//! The contract is semi-synchronous replication: the worker journals a
//! job's completion, learns the record's WAL sequence number, and calls
//! [`ReplSink::wait_replicated`] *before* the reply goes to the client.
//! Once that returns, the completion record is on the follower's disk
//! (or the sink has deliberately degraded after its timeout) — which is
//! what lets a promoted standby serve every previously acked job's
//! output after the primary dies mid-load.

use obs::Json;

/// A replication sink the serving loop gates acknowledgements on.
///
/// Implementations must be cheap to query ([`ReplSink::stats_json`] is
/// called per stats/metrics request) and must never block
/// `wait_replicated` forever: a dead follower degrades the pair to
/// solo-durability after a bounded timeout rather than wedging the
/// worker pool.
pub trait ReplSink: Send + Sync + std::fmt::Debug + 'static {
    /// Block until the follower's durable high-water mark covers WAL
    /// sequence number `seq`, or the sink's degrade timeout elapses.
    /// Called on the worker ack path after the completion record is
    /// locally durable.
    fn wait_replicated(&self, seq: u64);

    /// The `repl` section of the stats snapshot.  `durable_seq` is the
    /// local journal's durable high-water mark and `now_us` the server
    /// clock, from which the sink computes its lag gauges
    /// (`lag_records`, `lag_us`) and follower state.
    fn stats_json(&self, durable_seq: u64, now_us: u64) -> Json;
}
