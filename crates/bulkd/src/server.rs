//! The daemon: TCP accept loop, connection handlers, and the worker pool.
//!
//! Threading model: the calling thread runs the accept loop; each
//! connection gets its own handler thread (blocking line-at-a-time reads);
//! a fixed pool of worker threads consumes coalesced batches from the
//! queue.  A `drain` request blocks its connection until every accepted
//! job has executed, then stops the accept loop, and [`serve`] returns the
//! final stats snapshot after joining the workers.

use crate::protocol::{self, JobKey, Request, PROTOCOL_VERSION};
use crate::queue::{CoalescingQueue, Job, JobDone, QueueConfig, SubmitError};
use crate::stats::ServerStats;
use obs::trace::chrome_trace;
use obs::{Json, Tracer};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the embedding binary executes one coalesced batch.
///
/// `bulkd` stays catalog-agnostic: the CLI implements this over its
/// algorithm registry and shared [`oblivious::ScheduleCache`]s.  All words
/// cross as raw bit patterns (the wire encoding), so one trait covers
/// `f32`/`u32`/`u64` programs alike.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Admission-time check of a key; returns the expected input words per
    /// instance so malformed submits bounce before they queue.
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason (unknown algorithm, bad size).
    fn validate(&self, key: &JobKey) -> Result<usize, String>;

    /// Execute the batch: one inner vector of input bits per instance, in
    /// order; returns per-instance output bits in the same order.
    ///
    /// # Errors
    ///
    /// A human-readable execution failure, fanned out to every rider.
    fn execute(&self, key: &JobKey, inputs: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, String>;

    /// The shared schedule cache's cumulative `(hits, compiles)`.
    fn cache_stats(&self) -> (u64, u64);
}

/// Tunables of one [`serve`] invocation.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Target batch `p` (size-based flush trigger).
    pub max_batch: usize,
    /// Admission bound on queued instances.
    pub max_queue: usize,
    /// Deadline-based flush trigger, in milliseconds.
    pub flush_after_ms: u64,
    /// Where to write the per-batch Chrome trace at shutdown, if anywhere.
    pub trace_path: Option<PathBuf>,
}

struct Shared {
    queue: CoalescingQueue,
    stats: ServerStats,
    executor: Box<dyn BatchExecutor>,
    tracer: Mutex<Tracer>,
    started: Instant,
    addr: SocketAddr,
    stop_accepting: AtomicBool,
}

/// Run the daemon until a client sends `drain`.  `on_ready` fires once
/// with the bound address (the way tests and the CLI learn an ephemeral
/// port).  Returns the final stats snapshot.
///
/// # Errors
///
/// Bind/IO failures and a post-drain accounting imbalance.
pub fn serve(
    cfg: &ServerConfig,
    executor: Box<dyn BatchExecutor>,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<Json, String> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    let shared = Arc::new(Shared {
        queue: CoalescingQueue::new(QueueConfig {
            max_batch: cfg.max_batch.max(1),
            max_queue: cfg.max_queue.max(1),
            flush_after: Duration::from_millis(cfg.flush_after_ms.max(1)),
        }),
        stats: ServerStats::new(),
        executor,
        tracer: Mutex::new(Tracer::new()),
        started: Instant::now(),
        addr,
        stop_accepting: AtomicBool::new(false),
    });
    {
        let mut t = shared.tracer.lock().expect("tracer poisoned");
        for w in 0..cfg.workers.max(1) {
            t.name_track(w as u64, format!("worker-{w}"));
        }
    }

    let workers: Vec<_> = (0..cfg.workers.max(1))
        .map(|idx| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("bulkd-worker-{idx}"))
                .spawn(move || worker_loop(idx as u64, &sh))
                .map_err(|e| format!("spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    on_ready(addr);

    for conn in listener.incoming() {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("bulkd-conn".into())
            .spawn(move || handle_conn(stream, &sh));
    }

    for w in workers {
        let _ = w.join();
    }
    if let Some(path) = &cfg.trace_path {
        let trace = {
            let t = shared.tracer.lock().expect("tracer poisoned");
            chrome_trace(&[("bulkd", &t)])
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, trace.to_pretty())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    shared.stats.check_balanced()?;
    Ok(shared.stats.snapshot(shared.queue.depth(), shared.executor.cache_stats()))
}

fn worker_loop(tid: u64, sh: &Shared) {
    while let Some(batch) = sh.queue.next_batch() {
        let t0 = Instant::now();
        let inputs: Vec<Vec<u64>> =
            batch.jobs.iter().flat_map(|j| j.inputs.iter().cloned()).collect();
        let p = inputs.len();
        let result = sh.executor.execute(&batch.key, &inputs);
        let exec_us = t0.elapsed().as_micros() as u64;

        {
            let ts = t0.duration_since(sh.started).as_micros() as u64;
            let mut args = Json::obj();
            args.set("algo", batch.key.algo.as_str());
            args.set("size", batch.key.size);
            args.set("layout", protocol::layout_name(batch.key.layout));
            args.set("p", p);
            args.set("jobs", batch.jobs.len());
            let mut t = sh.tracer.lock().expect("tracer poisoned");
            t.span(tid, "batch", "exec", ts, exec_us.max(1), args);
        }
        sh.stats.on_batch(p as u64, exec_us);

        match result {
            Ok(outputs) => {
                let mut off = 0;
                for job in batch.jobs {
                    let n = job.inputs.len();
                    let queue_us = t0.duration_since(job.enqueued).as_micros() as u64;
                    let done = JobDone {
                        outputs: outputs[off..off + n].to_vec(),
                        batch_p: p,
                        queue_us,
                        exec_us,
                    };
                    off += n;
                    sh.stats.on_job_done(n as u64, queue_us, false);
                    let _ = job.reply.send(Ok(done));
                }
            }
            Err(e) => {
                for job in batch.jobs {
                    let n = job.inputs.len() as u64;
                    let queue_us = t0.duration_since(job.enqueued).as_micros() as u64;
                    sh.stats.on_job_done(n, queue_us, true);
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
        }
        sh.queue.batch_done();
    }
}

fn handle_conn(stream: TcpStream, sh: &Shared) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = handle_line(&line, sh);
        let mut text = resp.to_compact();
        text.push('\n');
        // The drain response must be on the wire *before* the accept loop
        // is released: `serve` may return (and the process exit) the
        // moment it pops, and this handler thread would die mid-write.
        let wrote = writer.write_all(text.as_bytes()).and_then(|()| writer.flush());
        if shutdown {
            sh.stop_accepting.store(true, Ordering::SeqCst);
            // Self-connect to pop the accept loop out of `incoming()`.
            let _ = TcpStream::connect(sh.addr);
        }
        if wrote.is_err() {
            return;
        }
    }
}

/// Returns the response plus whether the caller must trigger shutdown
/// after the response is on the wire.
fn handle_line(line: &str, sh: &Shared) -> (Json, bool) {
    let req = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            sh.stats.on_protocol_error();
            return (protocol::resp_error("protocol", &e), false);
        }
    };
    match req {
        Request::Status => {
            let d = sh.queue.depth();
            let mut o = Json::obj();
            o.set("ok", true);
            o.set("protocol_version", PROTOCOL_VERSION);
            o.set("queued_instances", d.queued_instances);
            o.set("open_groups", d.open_groups);
            o.set("ready_batches", d.ready_batches);
            o.set("in_flight_batches", d.in_flight_batches);
            o.set("draining", d.draining);
            o.set("uptime_us", sh.started.elapsed().as_micros() as u64);
            (o, false)
        }
        Request::Stats => {
            let mut snap = sh.stats.snapshot(sh.queue.depth(), sh.executor.cache_stats());
            snap.set("ok", true);
            (snap, false)
        }
        Request::Drain => {
            sh.queue.drain();
            let mut snap = sh.stats.snapshot(sh.queue.depth(), sh.executor.cache_stats());
            snap.set("ok", true);
            snap.set("drained", true);
            (snap, true)
        }
        Request::Submit { key, inputs } => (handle_submit(key, inputs, sh), false),
    }
}

fn handle_submit(key: JobKey, inputs: Vec<Vec<u64>>, sh: &Shared) -> Json {
    let n = inputs.len() as u64;
    sh.stats.on_submit(n);
    if inputs.is_empty() {
        sh.stats.on_reject(0);
        return protocol::resp_error("bad-request", "submit carries no instances");
    }
    let words = match sh.executor.validate(&key) {
        Ok(w) => w,
        Err(e) => {
            sh.stats.on_reject(n);
            return protocol::resp_error("bad-request", &e);
        }
    };
    if let Some(bad) = inputs.iter().find(|i| i.len() != words) {
        sh.stats.on_reject(n);
        return protocol::resp_error(
            "bad-request",
            &format!("{key} expects {words} input words per instance, got {}", bad.len()),
        );
    }
    let (tx, rx) = mpsc::channel();
    let job = Job { inputs, enqueued: Instant::now(), reply: tx };
    match sh.queue.submit(key, job) {
        Err(SubmitError::Draining) => {
            sh.stats.on_reject(n);
            protocol::resp_error("draining", "server is draining; no new work accepted")
        }
        Err(SubmitError::Overloaded { retry_after_ms }) => {
            sh.stats.on_reject(n);
            protocol::resp_overloaded(retry_after_ms)
        }
        Ok(()) => {
            sh.stats.on_accept(n);
            match rx.recv() {
                Ok(Ok(done)) => {
                    protocol::resp_outputs(&done.outputs, done.batch_p, done.queue_us, done.exec_us)
                }
                Ok(Err(e)) => protocol::resp_error("exec", &e),
                Err(_) => protocol::resp_error("exec", "worker dropped the job"),
            }
        }
    }
}
