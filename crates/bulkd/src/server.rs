//! The daemon: TCP accept loop, connection handlers, and the worker pool.
//!
//! Threading model: the calling thread runs the accept loop; each
//! connection gets its own handler thread (blocking line-at-a-time reads);
//! a fixed pool of worker threads consumes coalesced batches from the
//! queue.  A `drain` request blocks its connection until every accepted
//! job has executed, then stops the accept loop, and [`serve`] returns the
//! final stats snapshot after joining the workers.

use crate::clock::{real_runtime, Clock};
use crate::journal::{Journal, JournalConfig};
use crate::protocol::{self, JobKey, Request, PROTOCOL_VERSION};
use crate::queue::{CoalescingQueue, Job, JobDone, QueueConfig, SubmitError};
use crate::stats::ServerStats;
use obs::trace::chrome_trace;
use obs::{Json, Tracer};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How the embedding binary executes one coalesced batch.
///
/// `bulkd` stays catalog-agnostic: the CLI implements this over its
/// algorithm registry and shared [`oblivious::ScheduleCache`]s.  All words
/// cross as raw bit patterns (the wire encoding), so one trait covers
/// `f32`/`u32`/`u64` programs alike.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Admission-time check of a key; returns the expected input words per
    /// instance so malformed submits bounce before they queue.
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason (unknown algorithm, bad size).
    fn validate(&self, key: &JobKey) -> Result<usize, String>;

    /// Execute the batch: one inner vector of input bits per instance, in
    /// order; returns per-instance output bits in the same order.
    ///
    /// # Errors
    ///
    /// A human-readable execution failure, fanned out to every rider.
    fn execute(&self, key: &JobKey, inputs: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, String>;

    /// The shared schedule cache's cumulative `(hits, compiles)`.
    fn cache_stats(&self) -> (u64, u64);
}

/// Tunables of one [`serve`] invocation.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Target batch `p` (size-based flush trigger).
    pub max_batch: usize,
    /// Admission bound on queued instances.
    pub max_queue: usize,
    /// Deadline-based flush trigger, in milliseconds.
    pub flush_after_ms: u64,
    /// Where to write the per-batch Chrome trace at shutdown, if anywhere.
    pub trace_path: Option<PathBuf>,
    /// Write-ahead logging of accepted jobs; `None` disables durability.
    pub wal: Option<JournalConfig>,
}

struct Shared {
    queue: CoalescingQueue,
    stats: ServerStats,
    executor: Box<dyn BatchExecutor>,
    tracer: Mutex<Tracer>,
    // Anchored at serve() entry, so now_us() doubles as uptime.
    clock: Arc<dyn Clock>,
    addr: SocketAddr,
    stop_accepting: AtomicBool,
    journal: Option<Journal>,
    next_job_id: AtomicU64,
}

fn wal_section(sh: &Shared) -> Option<Json> {
    sh.journal.as_ref().map(Journal::stats_json)
}

/// Run the daemon until a client sends `drain`.  `on_ready` fires once
/// with the bound address (the way tests and the CLI learn an ephemeral
/// port).  Returns the final stats snapshot.
///
/// # Errors
///
/// Bind/IO failures and a post-drain accounting imbalance.
pub fn serve(
    cfg: &ServerConfig,
    executor: Box<dyn BatchExecutor>,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<Json, String> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // Open the journal (repairing a torn tail, replaying survivors)
    // before anything is visible to clients.
    let (journal, recovery) = match &cfg.wal {
        Some(wal_cfg) => {
            let (j, r) = Journal::open(wal_cfg)?;
            (Some(j), Some(r))
        }
        None => (None, None),
    };
    let next_job_id = recovery.as_ref().map_or(1, |r| r.next_job_id);
    let (clock, sched) = real_runtime();
    let shared = Arc::new(Shared {
        queue: CoalescingQueue::with_runtime(
            QueueConfig {
                max_batch: cfg.max_batch.max(1),
                max_queue: cfg.max_queue.max(1),
                flush_after: Duration::from_millis(cfg.flush_after_ms.max(1)),
            },
            Arc::clone(&clock),
            sched,
        ),
        stats: ServerStats::new(),
        executor,
        tracer: Mutex::new(Tracer::new()),
        clock,
        addr,
        stop_accepting: AtomicBool::new(false),
        journal,
        next_job_id: AtomicU64::new(next_job_id),
    });
    {
        let mut t = shared.tracer.lock().expect("tracer poisoned");
        for w in 0..cfg.workers.max(1) {
            t.name_track(w as u64, format!("worker-{w}"));
        }
    }

    let workers: Vec<_> = (0..cfg.workers.max(1))
        .map(|idx| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("bulkd-worker-{idx}"))
                .spawn(move || worker_loop(idx as u64, &sh))
                .map_err(|e| format!("spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // Re-queue journaled jobs that never completed before the crash.
    // Their original submitters are gone, so the reply receiver is a
    // dropped channel end; execution (and its completion record) is what
    // matters.  Admission is unbounded: these jobs were already admitted
    // — and possibly acknowledged — in a previous life.
    if let Some(r) = recovery {
        for job in r.requeue {
            let n = job.inputs.len() as u64;
            shared.stats.on_submit(n);
            shared.stats.on_accept(n);
            let adm = shared.queue.reserve_unbounded(job.inputs.len());
            let (tx, _rx) = mpsc::channel();
            shared.queue.enqueue(
                adm,
                job.key,
                Job {
                    id: job.id,
                    inputs: job.inputs,
                    enqueued_us: shared.clock.now_us(),
                    reply: tx,
                },
            );
        }
    }

    on_ready(addr);

    for conn in listener.incoming() {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("bulkd-conn".into())
            .spawn(move || handle_conn(stream, &sh));
    }

    for w in workers {
        let _ = w.join();
    }
    if let Some(path) = &cfg.trace_path {
        let trace = {
            let t = shared.tracer.lock().expect("tracer poisoned");
            chrome_trace(&[("bulkd", &t)])
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, trace.to_pretty())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    // Every accepted job has now completed: checkpoint so a clean
    // shutdown leaves a single-segment log holding only the job-id
    // high-water mark.
    if let Some(journal) = &shared.journal {
        journal.checkpoint(shared.next_job_id.load(Ordering::SeqCst))?;
    }
    shared.stats.check_balanced()?;
    Ok(shared.stats.snapshot(
        shared.queue.depth(),
        shared.executor.cache_stats(),
        wal_section(&shared),
    ))
}

fn worker_loop(tid: u64, sh: &Shared) {
    while let Some(batch) = sh.queue.next_batch() {
        let t0_us = sh.clock.now_us();
        let inputs: Vec<Vec<u64>> =
            batch.jobs.iter().flat_map(|j| j.inputs.iter().cloned()).collect();
        let p = inputs.len();
        let result = sh.executor.execute(&batch.key, &inputs);
        let exec_us = sh.clock.now_us().saturating_sub(t0_us);

        {
            let mut args = Json::obj();
            args.set("algo", batch.key.algo.as_str());
            args.set("size", batch.key.size);
            args.set("layout", protocol::layout_name(batch.key.layout));
            args.set("p", p);
            args.set("jobs", batch.jobs.len());
            let mut t = sh.tracer.lock().expect("tracer poisoned");
            t.span(tid, "batch", "exec", t0_us, exec_us.max(1), args);
        }
        sh.stats.on_batch(p as u64, exec_us);

        match result {
            Ok(outputs) => {
                let mut off = 0;
                for job in batch.jobs {
                    let n = job.inputs.len();
                    let queue_us = t0_us.saturating_sub(job.enqueued_us);
                    let done = JobDone {
                        outputs: outputs[off..off + n].to_vec(),
                        batch_p: p,
                        queue_us,
                        exec_us,
                    };
                    off += n;
                    log_completion(sh, job.id, Ok(&done.outputs));
                    sh.stats.on_job_done(n as u64, queue_us, false);
                    let _ = job.reply.send(Ok(done));
                }
            }
            Err(e) => {
                for job in batch.jobs {
                    let n = job.inputs.len() as u64;
                    let queue_us = t0_us.saturating_sub(job.enqueued_us);
                    log_completion(sh, job.id, Err(&e));
                    sh.stats.on_job_done(n, queue_us, true);
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
        }
        sh.queue.batch_done();
    }
}

/// Journal a job's completion *before* its reply goes out, so an
/// acknowledged answer is never re-executed after a crash.  A journal
/// append failure here is reported but does not withhold the reply: the
/// job *did* execute, and execution is deterministic, so the worst case
/// of the lost record is one redundant (bit-identical) re-execution.
fn log_completion(sh: &Shared, job_id: u64, result: Result<&[Vec<u64>], &String>) {
    if let Some(journal) = &sh.journal {
        if let Err(e) = journal.log_complete(job_id, result.map_err(String::as_str)) {
            eprintln!("bulkd: journal completion append failed for job {job_id}: {e}");
        }
    }
}

fn handle_conn(stream: TcpStream, sh: &Shared) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = handle_line(&line, sh);
        let mut text = resp.to_compact();
        text.push('\n');
        // The drain response must be on the wire *before* the accept loop
        // is released: `serve` may return (and the process exit) the
        // moment it pops, and this handler thread would die mid-write.
        let wrote = writer.write_all(text.as_bytes()).and_then(|()| writer.flush());
        if shutdown {
            sh.stop_accepting.store(true, Ordering::SeqCst);
            // Self-connect to pop the accept loop out of `incoming()`.
            let _ = TcpStream::connect(sh.addr);
        }
        if wrote.is_err() {
            return;
        }
    }
}

/// Returns the response plus whether the caller must trigger shutdown
/// after the response is on the wire.
fn handle_line(line: &str, sh: &Shared) -> (Json, bool) {
    let req = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            sh.stats.on_protocol_error();
            return (protocol::resp_error("protocol", &e), false);
        }
    };
    match req {
        Request::Status => {
            let d = sh.queue.depth();
            let mut o = Json::obj();
            o.set("ok", true);
            o.set("protocol_version", PROTOCOL_VERSION);
            o.set("queued_instances", d.queued_instances);
            o.set("open_groups", d.open_groups);
            o.set("ready_batches", d.ready_batches);
            o.set("in_flight_batches", d.in_flight_batches);
            o.set("draining", d.draining);
            o.set("uptime_us", sh.clock.now_us());
            (o, false)
        }
        Request::Stats => {
            let mut snap =
                sh.stats.snapshot(sh.queue.depth(), sh.executor.cache_stats(), wal_section(sh));
            snap.set("ok", true);
            (snap, false)
        }
        Request::Drain => {
            sh.queue.drain();
            let mut snap =
                sh.stats.snapshot(sh.queue.depth(), sh.executor.cache_stats(), wal_section(sh));
            snap.set("ok", true);
            snap.set("drained", true);
            (snap, true)
        }
        Request::Submit { key, inputs } => (handle_submit(key, inputs, sh), false),
    }
}

fn handle_submit(key: JobKey, inputs: Vec<Vec<u64>>, sh: &Shared) -> Json {
    let n = inputs.len() as u64;
    sh.stats.on_submit(n);
    if inputs.is_empty() {
        sh.stats.on_reject(0);
        return protocol::resp_error("bad-request", "submit carries no instances");
    }
    let words = match sh.executor.validate(&key) {
        Ok(w) => w,
        Err(e) => {
            sh.stats.on_reject(n);
            return protocol::resp_error("bad-request", &e);
        }
    };
    if let Some(bad) = inputs.iter().find(|i| i.len() != words) {
        sh.stats.on_reject(n);
        return protocol::resp_error(
            "bad-request",
            &format!("{key} expects {words} input words per instance, got {}", bad.len()),
        );
    }
    // Two-phase admission: reserve capacity, journal the submit, then
    // make the job visible.  The WAL append sits between the phases so a
    // job can never execute (let alone complete) without its submit
    // record on disk, yet a full queue is still refused before any I/O.
    let adm = match sh.queue.reserve(inputs.len()) {
        Err(SubmitError::Draining) => {
            sh.stats.on_reject(n);
            return protocol::resp_error("draining", "server is draining; no new work accepted");
        }
        Err(SubmitError::Overloaded { retry_after_ms }) => {
            sh.stats.on_reject(n);
            return protocol::resp_overloaded(retry_after_ms);
        }
        Ok(adm) => adm,
    };
    let id = sh.next_job_id.fetch_add(1, Ordering::SeqCst);
    if let Some(journal) = &sh.journal {
        if let Err(e) = journal.log_submit(id, &key, &inputs) {
            sh.queue.cancel(adm);
            sh.stats.on_reject(n);
            return protocol::resp_error("wal", &format!("journal append failed: {e}"));
        }
    }
    let (tx, rx) = mpsc::channel();
    sh.queue.enqueue(adm, key, Job { id, inputs, enqueued_us: sh.clock.now_us(), reply: tx });
    sh.stats.on_accept(n);
    match rx.recv() {
        Ok(Ok(done)) => {
            protocol::resp_outputs(&done.outputs, done.batch_p, done.queue_us, done.exec_us)
        }
        Ok(Err(e)) => protocol::resp_error("exec", &e),
        Err(_) => protocol::resp_error("exec", "worker dropped the job"),
    }
}
