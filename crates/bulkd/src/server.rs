//! The daemon: TCP accept loop, connection handlers, and the worker pool.
//!
//! Threading model: the calling thread runs the accept loop; each
//! connection gets its own handler thread (blocking line-at-a-time reads);
//! a fixed pool of worker threads consumes coalesced batches from the
//! queue.  A `drain` request blocks its connection until every accepted
//! job has executed, then stops the accept loop, and [`serve`] returns the
//! final stats snapshot after joining the workers.

use crate::clock::{real_runtime, Clock};
use crate::journal::{Journal, JournalConfig};
use crate::protocol::{self, JobKey, Request, PROTOCOL_VERSION};
use crate::queue::{
    CoalescingQueue, Job, JobDone, QueueConfig, StageBreakdown, StageStamps, SubmitError,
};
use crate::repl::ReplSink;
use crate::stats::ServerStats;
use obs::trace::chrome_trace;
use obs::{Gauge, Histogram, Json, PromText, Ring, Tracer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once, Weak};
use std::time::Duration;

/// How the embedding binary executes one coalesced batch.
///
/// `bulkd` stays catalog-agnostic: the CLI implements this over its
/// algorithm registry and shared [`oblivious::ScheduleCache`]s.  All words
/// cross as raw bit patterns (the wire encoding), so one trait covers
/// `f32`/`u32`/`u64` programs alike.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Admission-time check of a key; returns the expected input words per
    /// instance so malformed submits bounce before they queue.
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason (unknown algorithm, bad size).
    fn validate(&self, key: &JobKey) -> Result<usize, String>;

    /// Execute the batch: one inner vector of input bits per instance, in
    /// order; returns per-instance output bits in the same order.
    ///
    /// # Errors
    ///
    /// A human-readable execution failure, fanned out to every rider.
    fn execute(&self, key: &JobKey, inputs: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, String>;

    /// The shared schedule cache's cumulative `(hits, compiles)`.
    fn cache_stats(&self) -> (u64, u64);
}

/// Tunables of one [`serve`] invocation.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Stable identity this node reports in `status` probes and stats
    /// snapshots, so cluster-merged views stay attributable.  `None`
    /// falls back to the bound address (which is ephemeral under
    /// `127.0.0.1:0` — name nodes explicitly when routing over them).
    pub node_id: Option<String>,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Target batch `p` (size-based flush trigger).
    pub max_batch: usize,
    /// Admission bound on queued instances.
    pub max_queue: usize,
    /// Deadline-based flush trigger, in milliseconds.
    pub flush_after_ms: u64,
    /// Where to write the per-batch Chrome trace at shutdown, if anywhere.
    pub trace_path: Option<PathBuf>,
    /// Write-ahead logging of accepted jobs; `None` disables durability.
    pub wal: Option<JournalConfig>,
    /// Record stage events into the flight recorder (`false` is the
    /// overhead-measurement baseline; stats counters stay on).
    pub instrument: bool,
    /// Where the flight recorder dumps its Chrome trace (a `.txt` text
    /// tail lands next to it).  Flushed atomically every 200ms while the
    /// server runs, plus on panic, drain, `dump` requests and shutdown —
    /// so even `kill -9` leaves a readable recording.
    pub recorder_path: Option<PathBuf>,
    /// Replication sink: when set, the node reports `role: "primary"`,
    /// completion acks gate on [`ReplSink::wait_replicated`], and stats /
    /// metrics grow a `repl` section with the follower's lag.
    pub repl: Option<Arc<dyn ReplSink>>,
    /// Marks a server that took over via standby promotion; reported in
    /// stats so failover postmortems can tell the second life apart.
    pub promoted: bool,
}

/// Flight-recorder events retained (oldest overwritten beyond this).
const RING_CAPACITY: usize = 8192;
/// Lines in the human-readable text-tail dump.
const TAIL_LINES: usize = 64;

/// The flight recorder: the event ring plus its dump target, shared by
/// connection handlers, workers, the periodic flusher thread and the
/// process-wide panic hook.
struct Recorder {
    ring: Ring,
    path: Option<PathBuf>,
    /// Serializes dumps (flusher vs. drain vs. `dump` requests) so two
    /// writers never interleave on the same temp file.
    dump_lock: Mutex<()>,
}

impl Recorder {
    /// Write the Chrome trace and text tail via temp-file + rename, so a
    /// concurrent reader — or a post-`kill -9` autopsy — never sees a
    /// torn file.
    fn dump_files(&self) -> Result<(), String> {
        let Some(path) = &self.path else { return Ok(()) };
        let _g = self.dump_lock.lock().expect("recorder dump lock poisoned");
        let events = self.ring.snapshot();
        write_atomic(path, &obs::ring::chrome_trace(&events).to_pretty())?;
        write_atomic(&path.with_extension("txt"), &self.ring.text_tail(TAIL_LINES))
    }
}

fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

/// Live recorders, drained by the panic hook: a panicking server still
/// leaves its flight recording on disk.  The hook is installed once per
/// process and walks whatever recorders are alive at panic time.
static RECORDERS: Mutex<Vec<Weak<Recorder>>> = Mutex::new(Vec::new());
static PANIC_HOOK: Once = Once::new();

fn register_recorder(rec: &Arc<Recorder>) {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if let Ok(list) = RECORDERS.lock() {
                for weak in list.iter() {
                    if let Some(rec) = weak.upgrade() {
                        let _ = rec.dump_files();
                    }
                }
            }
        }));
    });
    let mut list = RECORDERS.lock().expect("recorder registry poisoned");
    list.retain(|w| w.upgrade().is_some());
    list.push(Arc::downgrade(rec));
}

struct Shared {
    queue: CoalescingQueue,
    stats: ServerStats,
    executor: Box<dyn BatchExecutor>,
    tracer: Mutex<Tracer>,
    // Anchored at serve() entry, so now_us() doubles as uptime.
    clock: Arc<dyn Clock>,
    addr: SocketAddr,
    node_id: String,
    stop_accepting: AtomicBool,
    journal: Option<Journal>,
    next_job_id: AtomicU64,
    recorder: Arc<Recorder>,
    connections: Gauge,
    instrument: bool,
    repl: Option<Arc<dyn ReplSink>>,
    role: &'static str,
    promoted: bool,
}

/// The `repl` section for stats/metrics: the sink's own lag view, fed
/// the journal's durable high-water mark and the server clock.
fn repl_section(sh: &Shared) -> Option<Json> {
    let repl = sh.repl.as_ref()?;
    let durable = sh.journal.as_ref().map_or(0, Journal::durable_seq);
    Some(repl.stats_json(durable, sh.clock.now_us()))
}

/// Replication metric families, appended to the Prometheus exposition.
/// Present only on a primary — their absence is how dashboards tell a
/// solo node from a replicated one.
fn repl_prometheus(sh: &Shared) -> String {
    let Some(j) = repl_section(sh) else { return String::new() };
    let num = |path: &str| j.path(path).and_then(Json::as_f64).unwrap_or(0.0);
    let mut p = PromText::new();
    p.gauge(
        "bulkd_repl_lag_records",
        "WAL records durable locally but not yet on the follower.",
        num("lag_records"),
    );
    p.gauge(
        "bulkd_repl_lag_us",
        "Microseconds since the follower was last fully caught up (0 when current).",
        num("lag_us"),
    );
    p.gauge(
        "bulkd_repl_follower_connected",
        "1 while a follower holds the replication stream.",
        num("follower_connected"),
    );
    p.gauge(
        "bulkd_repl_replicated_seq",
        "Follower's acknowledged durable WAL sequence number.",
        num("replicated_seq"),
    );
    p.counter(
        "bulkd_repl_degraded_acks_total",
        "Acks released after the replication wait timed out.",
        num("degraded_acks") as u64,
    );
    p.finish()
}

fn wal_section(sh: &Shared) -> Option<Json> {
    sh.journal.as_ref().map(Journal::stats_json)
}

/// Record one stage event into the flight recorder (no-op when
/// instrumentation is off).
fn rec(sh: &Shared, ts_us: u64, track: u32, name: &'static str, job: u64, value: i64) {
    if sh.instrument {
        sh.recorder.ring.record(ts_us, track, name, job, value);
    }
}

/// The full stats snapshot with live queue occupancy, per-key depths and
/// the cache/WAL sections attached, stamped with this node's identity and
/// protocol version so cluster-merged snapshots stay attributable and
/// version skew is detectable.
fn stats_snapshot(sh: &Shared) -> Json {
    let mut snap = sh.stats.snapshot(
        sh.queue.depth(),
        &sh.queue.per_key_depth(),
        sh.clock.now_us(),
        sh.executor.cache_stats(),
        wal_section(sh),
    );
    snap.set("node_id", sh.node_id.as_str());
    snap.set("protocol_version", PROTOCOL_VERSION);
    snap.set("role", sh.role);
    snap.set("promoted", sh.promoted);
    if let Some(repl) = repl_section(sh) {
        snap.set("repl", repl);
    }
    snap
}

/// Run the daemon until a client sends `drain`.  `on_ready` fires once
/// with the bound address (the way tests and the CLI learn an ephemeral
/// port).  Returns the final stats snapshot.
///
/// # Errors
///
/// Bind/IO failures and a post-drain accounting imbalance.
pub fn serve(
    cfg: &ServerConfig,
    executor: Box<dyn BatchExecutor>,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<Json, String> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    serve_with_listener(listener, cfg, executor, on_ready)
}

/// [`serve`] over an already-bound listener.  This is the promotion
/// path's seam: a standby hands its control listener straight to the
/// serving loop, so takeover involves no rebind (and no `EADDRINUSE` /
/// `TIME_WAIT` race) — clients that dialed the standby's address keep
/// working across the role change.
///
/// # Errors
///
/// IO failures and a post-drain accounting imbalance.
pub fn serve_with_listener(
    listener: TcpListener,
    cfg: &ServerConfig,
    executor: Box<dyn BatchExecutor>,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<Json, String> {
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // Open the journal (repairing a torn tail, replaying survivors)
    // before anything is visible to clients.
    let (journal, recovery) = match &cfg.wal {
        Some(wal_cfg) => {
            let (j, r) = Journal::open(wal_cfg)?;
            (Some(j), Some(r))
        }
        None => (None, None),
    };
    let next_job_id = recovery.as_ref().map_or(1, |r| r.next_job_id);
    let (clock, sched) = real_runtime();
    let recorder = Arc::new(Recorder {
        ring: Ring::with_capacity(RING_CAPACITY),
        path: cfg.recorder_path.clone(),
        dump_lock: Mutex::new(()),
    });
    if cfg.instrument && cfg.recorder_path.is_some() {
        register_recorder(&recorder);
    }
    let shared = Arc::new(Shared {
        queue: CoalescingQueue::with_runtime(
            QueueConfig {
                max_batch: cfg.max_batch.max(1),
                max_queue: cfg.max_queue.max(1),
                flush_after: Duration::from_millis(cfg.flush_after_ms.max(1)),
            },
            Arc::clone(&clock),
            sched,
        ),
        stats: ServerStats::new(),
        executor,
        tracer: Mutex::new(Tracer::new()),
        clock,
        addr,
        node_id: cfg.node_id.clone().unwrap_or_else(|| addr.to_string()),
        stop_accepting: AtomicBool::new(false),
        journal,
        next_job_id: AtomicU64::new(next_job_id),
        recorder: Arc::clone(&recorder),
        connections: Gauge::new(),
        instrument: cfg.instrument,
        repl: cfg.repl.clone(),
        role: if cfg.repl.is_some() || cfg.promoted { "primary" } else { "solo" },
        promoted: cfg.promoted,
    });
    // Periodic atomic recorder flushes: at any instant — including the
    // instant a `kill -9` lands — the last completed dump is on disk.
    let flusher_stop = Arc::new(AtomicBool::new(false));
    let flusher = if cfg.instrument && cfg.recorder_path.is_some() {
        let rec = Arc::clone(&recorder);
        let stop = Arc::clone(&flusher_stop);
        Some(
            std::thread::Builder::new()
                .name("bulkd-recorder".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = rec.dump_files();
                        std::thread::sleep(Duration::from_millis(200));
                    }
                    let _ = rec.dump_files();
                })
                .map_err(|e| format!("spawn recorder flusher: {e}"))?,
        )
    } else {
        None
    };
    {
        let mut t = shared.tracer.lock().expect("tracer poisoned");
        for w in 0..cfg.workers.max(1) {
            t.name_track(w as u64, format!("worker-{w}"));
        }
    }

    let workers: Vec<_> = (0..cfg.workers.max(1))
        .map(|idx| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("bulkd-worker-{idx}"))
                .spawn(move || worker_loop(idx as u64, &sh))
                .map_err(|e| format!("spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // Re-queue journaled jobs that never completed before the crash.
    // Their original submitters are gone, so the reply receiver is a
    // dropped channel end; execution (and its completion record) is what
    // matters.  Admission is unbounded: these jobs were already admitted
    // — and possibly acknowledged — in a previous life.
    if let Some(r) = recovery {
        for job in r.requeue {
            let n = job.inputs.len() as u64;
            shared.stats.on_submit(n);
            shared.stats.on_accept(n);
            let adm = shared.queue.reserve_unbounded(job.inputs.len());
            let (tx, _rx) = mpsc::channel();
            let now = shared.clock.now_us();
            let mut j = Job::new(job.id, job.inputs, now, tx);
            // The job's real admission/journal stamps died with the old
            // process; its second-life trace starts here.
            j.stages = StageStamps { accepted_us: now, journaled_us: now, assembled_us: 0 };
            rec(&shared, now, 0, "requeued", j.id, n as i64);
            shared.queue.enqueue(adm, job.key, j);
        }
    }

    on_ready(addr);

    for conn in listener.incoming() {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("bulkd-conn".into())
            .spawn(move || handle_conn(stream, &sh));
    }

    for w in workers {
        let _ = w.join();
    }
    flusher_stop.store(true, Ordering::Relaxed);
    if let Some(f) = flusher {
        let _ = f.join();
    }
    if let Some(path) = &cfg.trace_path {
        let trace = {
            let t = shared.tracer.lock().expect("tracer poisoned");
            chrome_trace(&[("bulkd", &t)])
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, trace.to_pretty())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    // Every accepted job has now completed: checkpoint so a clean
    // shutdown leaves a single-segment log holding only the job-id
    // high-water mark.
    if let Some(journal) = &shared.journal {
        journal.checkpoint(shared.next_job_id.load(Ordering::SeqCst))?;
    }
    shared.stats.check_balanced()?;
    Ok(stats_snapshot(&shared))
}

/// Assemble a job's stage breakdown from its trace-context stamps: the
/// monotone timeline accepted → journaled → enqueued → assembled →
/// executing (`t0_us`) → executed → completion-journaled (`done_us`).
fn stage_breakdown(job: &Job, t0_us: u64, exec_us: u64, done_us: u64) -> StageBreakdown {
    let st = &job.stages;
    StageBreakdown {
        journal_us: st.journaled_us.saturating_sub(st.accepted_us),
        queue_us: st.assembled_us.saturating_sub(job.enqueued_us),
        dispatch_us: t0_us.saturating_sub(st.assembled_us),
        exec_us,
        finalize_us: done_us.saturating_sub(t0_us.saturating_add(exec_us)),
        total_us: done_us.saturating_sub(st.accepted_us),
    }
}

fn worker_loop(tid: u64, sh: &Shared) {
    // Ring track 0 is the submit/protocol path; workers get 1-based
    // tracks, so per-shard "executed" events separate in the trace view.
    let track = u32::try_from(tid).unwrap_or(u32::MAX - 1) + 1;
    while let Some(batch) = sh.queue.next_batch() {
        let t0_us = sh.clock.now_us();
        for job in &batch.jobs {
            rec(sh, job.stages.assembled_us, track, "assembled", job.id, job.inputs.len() as i64);
        }
        let inputs: Vec<Vec<u64>> =
            batch.jobs.iter().flat_map(|j| j.inputs.iter().cloned()).collect();
        let p = inputs.len();
        let (_, compiles_before) = sh.executor.cache_stats();
        let result = sh.executor.execute(&batch.key, &inputs);
        let exec_end_us = sh.clock.now_us();
        let exec_us = exec_end_us.saturating_sub(t0_us);
        let (_, compiles_after) = sh.executor.cache_stats();
        let schedule = if compiles_after > compiles_before { "compiled" } else { "cache_hit" };
        rec(sh, t0_us, track, schedule, 0, p as i64);
        rec(sh, exec_end_us, track, "executed", 0, p as i64);

        {
            let mut args = Json::obj();
            args.set("algo", batch.key.algo.as_str());
            args.set("size", batch.key.size);
            args.set("layout", protocol::layout_name(batch.key.layout));
            args.set("p", p);
            args.set("jobs", batch.jobs.len());
            let mut t = sh.tracer.lock().expect("tracer poisoned");
            t.span(tid, "batch", "exec", t0_us, exec_us.max(1), args);
        }
        sh.stats.on_batch(p as u64, exec_us);

        match result {
            Ok(outputs) => {
                let mut off = 0;
                for job in batch.jobs {
                    let n = job.inputs.len();
                    let queue_us = t0_us.saturating_sub(job.enqueued_us);
                    let job_outputs = outputs[off..off + n].to_vec();
                    off += n;
                    let seq = match log_completion(sh, job.id, Ok(&job_outputs)) {
                        Ok(seq) => seq,
                        Err(e) => {
                            // Fail-stop: the completion record's durability
                            // is unknown, so the result is never acked.
                            let done_us = sh.clock.now_us();
                            rec(sh, done_us, track, "completion_refused", job.id, -1);
                            let breakdown = stage_breakdown(&job, t0_us, exec_us, done_us);
                            sh.stats.on_job_done(&batch.key, n as u64, queue_us, true, &breakdown);
                            let _ = job.reply.send(Err(format!("journal fail-stopped: {e}")));
                            continue;
                        }
                    };
                    // Semi-synchronous replication: the reply leaves only
                    // once the follower's durable mark covers this
                    // completion record (or the sink degrades after its
                    // timeout) — what makes acked jobs survive the death
                    // of the node that acked them.
                    if seq > 0 {
                        if let Some(repl) = &sh.repl {
                            repl.wait_replicated(seq);
                        }
                    }
                    let done_us = sh.clock.now_us();
                    let breakdown = stage_breakdown(&job, t0_us, exec_us, done_us);
                    rec(sh, done_us, track, "completion_journaled", job.id, 0);
                    sh.stats.on_job_done(&batch.key, n as u64, queue_us, false, &breakdown);
                    let done = JobDone {
                        outputs: job_outputs,
                        batch_p: p,
                        queue_us,
                        exec_us,
                        breakdown: Some(breakdown),
                    };
                    let _ = job.reply.send(Ok(done));
                }
            }
            Err(e) => {
                for job in batch.jobs {
                    let n = job.inputs.len() as u64;
                    let queue_us = t0_us.saturating_sub(job.enqueued_us);
                    // The reply is already an error; a failed completion
                    // append cannot make it ackable, so its result is moot.
                    // A successful append still gates on replication: an
                    // error reply is an answer too, and the standby must
                    // know the job is settled before it can take over.
                    if let Ok(seq) = log_completion(sh, job.id, Err(&e)) {
                        if seq > 0 {
                            if let Some(repl) = &sh.repl {
                                repl.wait_replicated(seq);
                            }
                        }
                    }
                    let done_us = sh.clock.now_us();
                    rec(sh, done_us, track, "completion_journaled", job.id, -1);
                    let breakdown = stage_breakdown(&job, t0_us, exec_us, done_us);
                    sh.stats.on_job_done(&batch.key, n, queue_us, true, &breakdown);
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
        }
        sh.queue.batch_done();
    }
}

/// Journal a job's completion *before* its reply goes out, so an
/// acknowledged answer is never re-executed after a crash.  The
/// fail-stop contract lives here: when the append or its fsync fails,
/// the result must NOT be acknowledged — the journal has fail-stopped
/// and the caller turns the reply into an error instead.  The
/// `bug-ack-before-fsync` test feature reintroduces the historical bug
/// (log the failure, ack anyway) so the simulator's durability invariant
/// can prove it catches it.
fn log_completion(
    sh: &Shared,
    job_id: u64,
    result: Result<&[Vec<u64>], &String>,
) -> Result<u64, String> {
    let Some(journal) = &sh.journal else { return Ok(0) };
    match journal.log_complete(job_id, result.map_err(String::as_str)) {
        Ok(seq) => Ok(seq),
        Err(e) => {
            eprintln!("bulkd: journal completion append failed for job {job_id}: {e}");
            if crate::journal::ack_despite_fsync_error() {
                Ok(0)
            } else {
                Err(e)
            }
        }
    }
}

fn handle_conn(stream: TcpStream, sh: &Shared) {
    sh.connections.add(1);
    conn_loop(stream, sh);
    sh.connections.add(-1);
}

/// Longest accepted protocol line, in bytes (a submit's inputs dominate;
/// anything bigger is a protocol error, not an allocation bomb).
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Account and log an abnormal connection end.  `phase` is one of
/// `"mid-line"` (EOF with a partial request buffered), `"mid-reply"`
/// (the reply write failed under the peer), or `"read-error"`.  Clean
/// EOFs — no buffered bytes, reads done — are not disconnects.
fn note_disconnect(sh: &Shared, phase: &'static str, buffered: usize, detail: &str) {
    sh.stats.on_disconnect(phase);
    let now = sh.clock.now_us();
    rec(sh, now, 0, "disconnect", 0, buffered as i64);
    let mut o = Json::obj();
    o.set("event", "disconnect");
    o.set("phase", phase);
    o.set("buffered_bytes", buffered);
    o.set("ts_us", now);
    if !detail.is_empty() {
        o.set("detail", detail);
    }
    eprintln!("bulkd: {}", o.to_compact());
}

/// The per-connection loop: raw reads feed a [`protocol::LineFramer`],
/// which yields complete requests regardless of how the transport chunks
/// them — one-byte dribble, several requests coalesced into a segment,
/// or a line split across reads all frame identically.  The simulator
/// drives the same framer with scheduler-chosen chunkings.
fn conn_loop(mut stream: TcpStream, sh: &Shared) {
    let mut framer = protocol::LineFramer::new(MAX_LINE_BYTES);
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every fully-framed line before reading more bytes, so a
        // coalesced segment yields its replies in request order.
        loop {
            let line = match framer.next_line() {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(e) => {
                    // Unframeable input (over-long or non-UTF-8 line):
                    // answer once, then hang up — resynchronizing on a
                    // byte stream with no trustworthy framing is guesswork.
                    sh.stats.on_protocol_error();
                    let mut text = protocol::resp_error("protocol", &e).to_compact();
                    text.push('\n');
                    let _ = stream.write_all(text.as_bytes()).and_then(|()| stream.flush());
                    return;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = handle_line(&line, sh);
            let mut text = resp.to_compact();
            text.push('\n');
            // The drain response must be on the wire *before* the accept
            // loop is released: `serve` may return (and the process exit)
            // the moment it pops, and this handler thread would die
            // mid-write.
            let wrote = stream.write_all(text.as_bytes()).and_then(|()| stream.flush());
            if shutdown {
                sh.stop_accepting.store(true, Ordering::SeqCst);
                // Self-connect to pop the accept loop out of `incoming()`.
                let _ = TcpStream::connect(sh.addr);
            }
            if let Err(e) = wrote {
                note_disconnect(sh, "mid-reply", framer.buffered(), &e.to_string());
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if framer.buffered() > 0 {
                    note_disconnect(sh, "mid-line", framer.buffered(), "");
                }
                return;
            }
            Ok(n) => framer.push(&chunk[..n]),
            Err(e) => {
                note_disconnect(sh, "read-error", framer.buffered(), &e.to_string());
                return;
            }
        }
    }
}

/// Returns the response plus whether the caller must trigger shutdown
/// after the response is on the wire.
fn handle_line(line: &str, sh: &Shared) -> (Json, bool) {
    let req = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            sh.stats.on_protocol_error();
            return (protocol::resp_error("protocol", &e), false);
        }
    };
    match req {
        Request::Status => {
            let d = sh.queue.depth();
            let mut o = Json::obj();
            o.set("ok", true);
            o.set("protocol_version", PROTOCOL_VERSION);
            o.set("node_id", sh.node_id.as_str());
            o.set("queued_instances", d.queued_instances);
            o.set("open_groups", d.open_groups);
            o.set("ready_batches", d.ready_batches);
            o.set("in_flight_batches", d.in_flight_batches);
            o.set("draining", d.draining);
            o.set("uptime_us", sh.clock.now_us());
            o.set("role", sh.role);
            if let Some(repl) = repl_section(sh) {
                o.set("repl", repl);
            }
            (o, false)
        }
        Request::Stats => {
            let mut snap = stats_snapshot(sh);
            snap.set("ok", true);
            (snap, false)
        }
        Request::Metrics => {
            let (fsync, group_batch) = sh.journal.as_ref().map_or_else(
                || (Histogram::new(), Histogram::new()),
                |j| (j.fsync_latency(), j.group_batch_sizes()),
            );
            let mut text = sh.stats.render_prometheus(
                sh.queue.depth(),
                &sh.queue.per_key_depth(),
                sh.clock.now_us(),
                sh.executor.cache_stats(),
                &fsync,
                &group_batch,
                sh.connections.get(),
                (sh.recorder.ring.recorded(), sh.recorder.ring.overwritten()),
            );
            text.push_str(&repl_prometheus(sh));
            let mut o = Json::obj();
            o.set("ok", true);
            o.set("metrics", text);
            (o, false)
        }
        Request::Dump => {
            if sh.instrument {
                if let Err(e) = sh.recorder.dump_files() {
                    return (protocol::resp_error("dump", &e), false);
                }
            }
            let mut o = Json::obj();
            o.set("ok", true);
            o.set("recorded", sh.recorder.ring.recorded());
            o.set("overwritten", sh.recorder.ring.overwritten());
            o.set("tail", sh.recorder.ring.text_tail(TAIL_LINES));
            if let Some(p) = &sh.recorder.path {
                o.set("path", p.display().to_string());
            }
            (o, false)
        }
        Request::Drain => {
            sh.queue.drain();
            if sh.instrument {
                let _ = sh.recorder.dump_files();
            }
            let mut snap = stats_snapshot(sh);
            snap.set("ok", true);
            snap.set("drained", true);
            (snap, true)
        }
        Request::Promote => (
            protocol::resp_error(
                "not_standby",
                "this node is not a warm standby; promote targets a standby's control port",
            ),
            false,
        ),
        Request::Submit { key, inputs, timing } => (handle_submit(key, inputs, timing, sh), false),
    }
}

fn handle_submit(key: JobKey, inputs: Vec<Vec<u64>>, timing: bool, sh: &Shared) -> Json {
    let n = inputs.len() as u64;
    sh.stats.on_submit(n);
    if inputs.is_empty() {
        sh.stats.on_reject(0);
        return protocol::resp_error("bad-request", "submit carries no instances");
    }
    let words = match sh.executor.validate(&key) {
        Ok(w) => w,
        Err(e) => {
            sh.stats.on_reject(n);
            return protocol::resp_error("bad-request", &e);
        }
    };
    if let Some(bad) = inputs.iter().find(|i| i.len() != words) {
        sh.stats.on_reject(n);
        return protocol::resp_error(
            "bad-request",
            &format!("{key} expects {words} input words per instance, got {}", bad.len()),
        );
    }
    // Two-phase admission: reserve capacity, journal the submit, then
    // make the job visible.  The WAL append sits between the phases so a
    // job can never execute (let alone complete) without its submit
    // record on disk, yet a full queue is still refused before any I/O.
    let adm = match sh.queue.reserve(inputs.len()) {
        Err(SubmitError::Draining) => {
            sh.stats.on_reject(n);
            return protocol::resp_error("draining", "server is draining; no new work accepted");
        }
        Err(SubmitError::Overloaded { retry_after_ms }) => {
            sh.stats.on_reject(n);
            return protocol::resp_overloaded(retry_after_ms);
        }
        Ok(adm) => adm,
    };
    let id = sh.next_job_id.fetch_add(1, Ordering::SeqCst);
    // Trace context opens here: the job id doubles as the trace id, and
    // every stage below stamps the same monotone clock.
    let accepted_us = sh.clock.now_us();
    rec(sh, accepted_us, 0, "accepted", id, n as i64);
    if let Some(journal) = &sh.journal {
        if let Err(e) = journal.log_submit(id, &key, &inputs) {
            sh.queue.cancel(adm);
            sh.stats.on_reject(n);
            return protocol::resp_error("wal", &format!("journal append failed: {e}"));
        }
    }
    // `journaled` covers the append *and* its group-commit durability
    // wait; without a WAL the stage is zero-width.
    let journaled_us = if sh.journal.is_some() { sh.clock.now_us() } else { accepted_us };
    if sh.journal.is_some() {
        rec(
            sh,
            journaled_us,
            0,
            "journaled",
            id,
            (journaled_us.saturating_sub(accepted_us)) as i64,
        );
    }
    let (tx, rx) = mpsc::channel();
    let enqueued_us = sh.clock.now_us();
    let mut job = Job::new(id, inputs, enqueued_us, tx);
    job.stages = StageStamps { accepted_us, journaled_us, assembled_us: 0 };
    job.timing = timing;
    sh.queue.enqueue(adm, key, job);
    rec(sh, enqueued_us, 0, "enqueued", id, 0);
    sh.stats.on_accept(n);
    match rx.recv() {
        Ok(Ok(done)) => {
            let reply_us = sh.clock.now_us();
            let total = done.breakdown.as_ref().map_or(0, |b| b.total_us as i64);
            rec(sh, reply_us, 0, "reply_written", id, total);
            let echoed =
                if timing { done.breakdown.as_ref().map(StageBreakdown::to_json) } else { None };
            protocol::resp_outputs(&done.outputs, done.batch_p, done.queue_us, done.exec_us, echoed)
        }
        Ok(Err(e)) => protocol::resp_error("exec", &e),
        Err(_) => protocol::resp_error("exec", "worker dropped the job"),
    }
}
