//! Live server counters and latency/batch-size distributions.
//!
//! One mutex guards the whole set — every touch is a few integer adds, so
//! contention is negligible next to batch execution — and `snapshot`
//! renders the versioned `RunReport`-style JSON document that the `stats`
//! protocol command returns.  The same live state also renders as
//! Prometheus text exposition ([`ServerStats::render_prometheus`]) for
//! the `metrics` protocol verb.

use crate::queue::{KeyDepth, QueueDepth, StageBreakdown};
use crate::JobKey;
use obs::{Histogram, Json, PromText, RunReport};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Cumulative per-key service counters.
#[derive(Debug, Default, Clone, Copy)]
struct KeyServed {
    served_jobs: u64,
    served_instances: u64,
}

/// One histogram per pipeline stage.  Every *completed* job records
/// exactly one sample into each, so each histogram's mass equals the
/// completed-job count — the invariant the CI metrics scrape asserts.
#[derive(Debug, Default)]
struct StageHists {
    journal_us: Histogram,
    queue_us: Histogram,
    dispatch_us: Histogram,
    exec_us: Histogram,
    finalize_us: Histogram,
    total_us: Histogram,
}

impl StageHists {
    fn record(&mut self, b: &StageBreakdown) {
        self.journal_us.record(b.journal_us);
        self.queue_us.record(b.queue_us);
        self.dispatch_us.record(b.dispatch_us);
        self.exec_us.record(b.exec_us);
        self.finalize_us.record(b.finalize_us);
        self.total_us.record(b.total_us);
    }

    fn named(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("journal", &self.journal_us),
            ("queue", &self.queue_us),
            ("dispatch", &self.dispatch_us),
            ("exec", &self.exec_us),
            ("finalize", &self.finalize_us),
            ("total", &self.total_us),
        ]
    }
}

#[derive(Debug, Default)]
struct Inner {
    submitted_jobs: u64,
    accepted_jobs: u64,
    rejected_jobs: u64,
    completed_jobs: u64,
    failed_jobs: u64,
    submitted_instances: u64,
    accepted_instances: u64,
    rejected_instances: u64,
    completed_instances: u64,
    protocol_errors: u64,
    disconnects: u64,
    disconnects_mid_line: u64,
    disconnects_mid_reply: u64,
    batches: u64,
    batch_p: Histogram,
    queue_wait_us: Histogram,
    exec_us: Histogram,
    stages: StageHists,
    /// Served totals per coalescing key, keyed by the key's display form.
    per_key: BTreeMap<String, KeyServed>,
}

/// Thread-safe server statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    inner: Mutex<Inner>,
}

impl ServerStats {
    /// A zeroed statistics set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("stats poisoned")
    }

    /// A well-formed submit request arrived (before admission).
    pub fn on_submit(&self, instances: u64) {
        let mut s = self.lock();
        s.submitted_jobs += 1;
        s.submitted_instances += instances;
    }

    /// A submit passed admission and was enqueued.
    pub fn on_accept(&self, instances: u64) {
        let mut s = self.lock();
        s.accepted_jobs += 1;
        s.accepted_instances += instances;
    }

    /// A submit was turned away (overloaded, draining, or bad request).
    pub fn on_reject(&self, instances: u64) {
        let mut s = self.lock();
        s.rejected_jobs += 1;
        s.rejected_instances += instances;
    }

    /// A line failed to parse as a protocol request.
    pub fn on_protocol_error(&self) {
        self.lock().protocol_errors += 1;
    }

    /// A connection ended abnormally.  `phase` is `"mid-line"` (EOF with
    /// a partial request buffered), `"mid-reply"` (the reply write failed
    /// under the peer), or `"read-error"`.  Clean EOFs are not counted.
    pub fn on_disconnect(&self, phase: &str) {
        let mut s = self.lock();
        s.disconnects += 1;
        match phase {
            "mid-line" => s.disconnects_mid_line += 1,
            "mid-reply" => s.disconnects_mid_reply += 1,
            _ => {}
        }
    }

    /// One coalesced batch executed with `instances` total lanes.
    pub fn on_batch(&self, instances: u64, exec_us: u64) {
        let mut s = self.lock();
        s.batches += 1;
        s.batch_p.record(instances);
        s.exec_us.record(exec_us);
    }

    /// One accepted job finished (`failed` when its batch's execution
    /// errored); `queue_us` is its enqueue-to-execution wait and
    /// `breakdown` its full stage timing.  Completed (non-failed) jobs
    /// record one sample into every stage histogram and count toward
    /// their key's served totals.
    pub fn on_job_done(
        &self,
        key: &JobKey,
        instances: u64,
        queue_us: u64,
        failed: bool,
        breakdown: &StageBreakdown,
    ) {
        let mut s = self.lock();
        if failed {
            s.failed_jobs += 1;
        } else {
            s.completed_jobs += 1;
            s.completed_instances += instances;
            s.stages.record(breakdown);
            let k = s.per_key.entry(key.to_string()).or_default();
            k.served_jobs += 1;
            k.served_instances += instances;
        }
        s.queue_wait_us.record(queue_us);
    }

    /// Accounting invariant check: every submitted job must be accounted
    /// as accepted or rejected, and (once the queue is empty) every
    /// accepted job as completed or failed.  Returns a description of the
    /// first violated equation.
    ///
    /// # Errors
    ///
    /// The violated equation, with both sides' values.
    pub fn check_balanced(&self) -> Result<(), String> {
        let s = self.lock();
        if s.submitted_jobs != s.accepted_jobs + s.rejected_jobs {
            return Err(format!(
                "submitted_jobs {} != accepted {} + rejected {}",
                s.submitted_jobs, s.accepted_jobs, s.rejected_jobs
            ));
        }
        if s.accepted_jobs != s.completed_jobs + s.failed_jobs {
            return Err(format!(
                "accepted_jobs {} != completed {} + failed {}",
                s.accepted_jobs, s.completed_jobs, s.failed_jobs
            ));
        }
        Ok(())
    }

    /// The versioned observability snapshot served by the `stats` command.
    ///
    /// `per_key` is the queue's current per-key occupancy and `now_us`
    /// the clock reading that turns its oldest-enqueue stamps into ages;
    /// `cache` is the shared schedule cache's `(hits, compiles)` pair;
    /// `wal` is the journal's section ([`crate::Journal::stats_json`]),
    /// `None` when the server runs without durability.
    #[must_use]
    pub fn snapshot(
        &self,
        depth: QueueDepth,
        per_key: &[KeyDepth],
        now_us: u64,
        cache: (u64, u64),
        wal: Option<Json>,
    ) -> Json {
        let s = self.lock();
        let mut report = RunReport::new("bulkd");

        let mut admission = Json::obj();
        admission.set("submitted_jobs", s.submitted_jobs);
        admission.set("accepted_jobs", s.accepted_jobs);
        admission.set("rejected_jobs", s.rejected_jobs);
        admission.set("submitted_instances", s.submitted_instances);
        admission.set("accepted_instances", s.accepted_instances);
        admission.set("rejected_instances", s.rejected_instances);
        admission.set("protocol_errors", s.protocol_errors);
        report.set("admission", admission);

        let mut connections = Json::obj();
        connections.set("disconnects", s.disconnects);
        connections.set("disconnects_mid_line", s.disconnects_mid_line);
        connections.set("disconnects_mid_reply", s.disconnects_mid_reply);
        report.set("connections", connections);

        let mut execution = Json::obj();
        execution.set("batches", s.batches);
        execution.set("completed_jobs", s.completed_jobs);
        execution.set("failed_jobs", s.failed_jobs);
        execution.set("completed_instances", s.completed_instances);
        execution.set("exec_us", s.exec_us.summary_json());
        report.set("execution", execution);

        // Coalesce factor: jobs per executed batch — 1.0 means no
        // amortization, `p` means the paper's ideal of one schedule replay
        // serving `p` requests.
        let mut coalescing = Json::obj();
        let factor = if s.batches == 0 {
            Json::Null
        } else {
            Json::from((s.completed_jobs + s.failed_jobs) as f64 / s.batches as f64)
        };
        coalescing.set("coalesce_factor", factor);
        coalescing.set("mean_batch_p", s.batch_p.mean());
        coalescing.set("batch_p", s.batch_p.summary_json());
        report.set("coalescing", coalescing);

        let mut queue = Json::obj();
        queue.set("queued_instances", depth.queued_instances);
        queue.set("open_groups", depth.open_groups);
        queue.set("ready_batches", depth.ready_batches);
        queue.set("in_flight_batches", depth.in_flight_batches);
        queue.set("draining", depth.draining);
        queue.set("queue_wait_us", s.queue_wait_us.summary_json());
        report.set("queue", queue);

        // Per-key visibility: waiting work (from the queue) joined with
        // cumulative served totals — the fairness view.  A key appears as
        // soon as it has either.
        let mut by_key: BTreeMap<String, (Option<&KeyDepth>, KeyServed)> = BTreeMap::new();
        for d in per_key {
            by_key.entry(d.key.to_string()).or_insert((None, KeyServed::default())).0 = Some(d);
        }
        for (k, v) in &s.per_key {
            by_key.entry(k.clone()).or_insert((None, KeyServed::default())).1 = *v;
        }
        let mut pk = Json::obj();
        for (k, (d, served)) in by_key {
            let mut e = Json::obj();
            e.set("queued_instances", d.map_or(0, |d| d.queued_instances));
            e.set("waiting_jobs", d.map_or(0, |d| d.waiting_jobs));
            e.set(
                "oldest_wait_us",
                d.and_then(|d| d.oldest_enqueued_us)
                    .map_or(Json::Null, |t| Json::from(now_us.saturating_sub(t))),
            );
            e.set("served_jobs", served.served_jobs);
            e.set("served_instances", served.served_instances);
            pk.set(&k, e);
        }
        report.set("per_key", pk);

        let mut stages = Json::obj();
        for (name, h) in s.stages.named() {
            stages.set(&format!("{name}_us"), h.summary_json());
        }
        report.set("stages", stages);

        let (hits, compiles) = cache;
        let mut sc = Json::obj();
        sc.set("hits", hits);
        sc.set("compiles", compiles);
        let total = hits + compiles;
        let rate = if total == 0 { Json::Null } else { Json::from(hits as f64 / total as f64) };
        sc.set("hit_rate", rate);
        report.set("schedule_cache", sc);

        report.set(
            "wal",
            wal.unwrap_or_else(|| {
                let mut off = Json::obj();
                off.set("enabled", false);
                off
            }),
        );

        report.json().clone()
    }

    /// Render the live state as Prometheus text exposition (the `metrics`
    /// protocol verb).
    ///
    /// `fsync_us` / `group_batch` come from the journal (empty histograms
    /// when the server runs without a WAL, so the families are always
    /// present); `connections` is the live connection gauge and `recorder`
    /// the flight recorder's `(recorded, overwritten)` event counts.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn render_prometheus(
        &self,
        depth: QueueDepth,
        per_key: &[KeyDepth],
        now_us: u64,
        cache: (u64, u64),
        fsync_us: &Histogram,
        group_batch: &Histogram,
        connections: i64,
        recorder: (u64, u64),
    ) -> String {
        let s = self.lock();
        let mut p = PromText::new();

        p.counter("bulkd_jobs_submitted_total", "Well-formed submit requests.", s.submitted_jobs);
        p.counter("bulkd_jobs_accepted_total", "Submits that passed admission.", s.accepted_jobs);
        p.counter("bulkd_jobs_rejected_total", "Submits turned away.", s.rejected_jobs);
        p.counter("bulkd_jobs_completed_total", "Jobs that finished OK.", s.completed_jobs);
        p.counter("bulkd_jobs_failed_total", "Jobs whose batch errored.", s.failed_jobs);
        p.counter(
            "bulkd_instances_submitted_total",
            "Problem instances across submits.",
            s.submitted_instances,
        );
        p.counter(
            "bulkd_instances_completed_total",
            "Problem instances completed OK.",
            s.completed_instances,
        );
        p.counter("bulkd_protocol_errors_total", "Unparseable request lines.", s.protocol_errors);
        p.counter("bulkd_disconnects_total", "Connections that ended abnormally.", s.disconnects);
        p.counter(
            "bulkd_disconnects_mid_line_total",
            "Peers that vanished with a partial request buffered.",
            s.disconnects_mid_line,
        );
        p.counter(
            "bulkd_disconnects_mid_reply_total",
            "Reply writes that failed under the peer.",
            s.disconnects_mid_reply,
        );
        p.counter("bulkd_batches_total", "Coalesced batches executed.", s.batches);

        p.gauge(
            "bulkd_queue_depth_instances",
            "Instances admitted but not yet executed.",
            depth.queued_instances as f64,
        );
        p.gauge("bulkd_queue_open_groups", "Coalescing groups open.", depth.open_groups as f64);
        p.gauge(
            "bulkd_queue_ready_batches",
            "Batches flushed and awaiting a worker.",
            depth.ready_batches as f64,
        );
        p.gauge(
            "bulkd_queue_in_flight_batches",
            "Batches currently executing.",
            depth.in_flight_batches as f64,
        );
        p.gauge(
            "bulkd_queue_draining",
            "1 while the server refuses new work.",
            u64::from(depth.draining) as f64,
        );
        p.gauge("bulkd_connections_active", "Open client connections.", connections as f64);

        let finished = s.completed_jobs + s.failed_jobs;
        let factor = if s.batches == 0 { 0.0 } else { finished as f64 / s.batches as f64 };
        p.gauge("bulkd_coalesce_factor", "Finished jobs per executed batch.", factor);

        let (hits, compiles) = cache;
        p.counter("bulkd_schedule_cache_hits_total", "Schedule cache hits.", hits);
        p.counter("bulkd_schedule_cache_compiles_total", "Schedule cache misses.", compiles);
        let rate = if hits + compiles == 0 { 0.0 } else { hits as f64 / (hits + compiles) as f64 };
        p.gauge("bulkd_schedule_cache_hit_rate", "Hits over lookups.", rate);

        // Per-key families share the series-building logic with `snapshot`:
        // union of currently-waiting keys and ever-served keys.
        let mut by_key: BTreeMap<String, (Option<&KeyDepth>, KeyServed)> = BTreeMap::new();
        for d in per_key {
            by_key.entry(d.key.to_string()).or_insert((None, KeyServed::default())).0 = Some(d);
        }
        for (k, v) in &s.per_key {
            by_key.entry(k.clone()).or_insert((None, KeyServed::default())).1 = *v;
        }
        let mut queued = Vec::new();
        let mut waiting = Vec::new();
        let mut oldest = Vec::new();
        let mut served_jobs = Vec::new();
        let mut served_instances = Vec::new();
        for (k, (d, sv)) in &by_key {
            queued.push((k.clone(), d.map_or(0, |d| d.queued_instances) as f64));
            waiting.push((k.clone(), d.map_or(0, |d| d.waiting_jobs) as f64));
            let age = d.and_then(|d| d.oldest_enqueued_us).map_or(0, |t| now_us.saturating_sub(t));
            oldest.push((k.clone(), age as f64));
            served_jobs.push((k.clone(), sv.served_jobs));
            served_instances.push((k.clone(), sv.served_instances));
        }
        p.gauge_vec(
            "bulkd_key_queued_instances",
            "Instances waiting, per coalescing key.",
            "key",
            &queued,
        );
        p.gauge_vec("bulkd_key_waiting_jobs", "Jobs waiting, per coalescing key.", "key", &waiting);
        p.gauge_vec(
            "bulkd_key_oldest_wait_us",
            "Age of the oldest waiting job, per key (0 when idle).",
            "key",
            &oldest,
        );
        p.counter_vec(
            "bulkd_key_served_jobs_total",
            "Jobs completed, per key.",
            "key",
            &served_jobs,
        );
        p.counter_vec(
            "bulkd_key_served_instances_total",
            "Instances completed, per key.",
            "key",
            &served_instances,
        );

        let stage_series: Vec<(String, &Histogram)> =
            s.stages.named().into_iter().map(|(n, h)| (n.to_string(), h)).collect();
        p.histogram_vec(
            "bulkd_stage_latency_us",
            "Per-stage latency of completed jobs; each stage's mass equals completed jobs.",
            "stage",
            &stage_series,
        );
        p.histogram("bulkd_queue_wait_us", "Enqueue-to-execution wait per job.", &s.queue_wait_us);
        p.histogram("bulkd_batch_exec_us", "Batch execution time.", &s.exec_us);
        p.histogram("bulkd_batch_instances", "Coalesced instances per batch.", &s.batch_p);
        p.histogram("bulkd_fsync_latency_us", "WAL fsync latency (group-commit leader).", fsync_us);
        p.histogram(
            "bulkd_group_commit_batch_size",
            "Appends covered per group-commit fsync.",
            group_batch,
        );

        let (recorded, overwritten) = recorder;
        p.counter("bulkd_recorder_events_total", "Flight-recorder events written.", recorded);
        p.counter(
            "bulkd_recorder_overwritten_total",
            "Flight-recorder events lost to wraparound.",
            overwritten,
        );

        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblivious::Layout;

    const IDLE: QueueDepth = QueueDepth {
        queued_instances: 0,
        open_groups: 0,
        ready_batches: 0,
        in_flight_batches: 0,
        draining: false,
    };

    fn key(algo: &str) -> JobKey {
        JobKey { algo: algo.into(), size: 8, layout: Layout::ColumnWise }
    }

    fn bd(queue_us: u64) -> StageBreakdown {
        StageBreakdown {
            journal_us: 10,
            queue_us,
            dispatch_us: 5,
            exec_us: 200,
            finalize_us: 3,
            total_us: 218 + queue_us,
        }
    }

    #[test]
    fn snapshot_reports_every_section_versioned() {
        let st = ServerStats::new();
        st.on_submit(4);
        st.on_accept(4);
        st.on_submit(1);
        st.on_reject(1);
        st.on_batch(4, 250);
        st.on_job_done(&key("prefix-sums"), 4, 90, false, &bd(90));
        st.on_protocol_error();
        let j = st.snapshot(IDLE, &[], 0, (7, 1), None);
        assert_eq!(j.path("tool").unwrap().as_str(), Some("bulkd"));
        assert_eq!(j.path("wal.enabled"), Some(&Json::Bool(false)));
        assert_eq!(j.path("schema_version").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("admission.submitted_jobs").unwrap().as_i64(), Some(2));
        assert_eq!(j.path("admission.rejected_jobs").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("admission.protocol_errors").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("execution.batches").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("coalescing.coalesce_factor").unwrap().as_f64(), Some(1.0));
        assert_eq!(j.path("coalescing.mean_batch_p").unwrap().as_f64(), Some(4.0));
        assert_eq!(j.path("schedule_cache.hit_rate").unwrap().as_f64(), Some(0.875));
        assert_eq!(j.path("queue.queued_instances").unwrap().as_i64(), Some(0));
        // Per-key and stage sections are present.
        assert_eq!(j.path("per_key.prefix-sums/8/col.served_jobs").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("stages.exec_us.total").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("stages.total_us.total").unwrap().as_i64(), Some(1));
        // The snapshot is a parseable RunReport.
        assert!(RunReport::parse(&j.to_pretty()).is_ok());
    }

    #[test]
    fn balance_check_catches_lost_jobs() {
        let st = ServerStats::new();
        st.on_submit(1);
        assert!(st.check_balanced().unwrap_err().contains("submitted_jobs"));
        st.on_accept(1);
        assert!(st.check_balanced().unwrap_err().contains("accepted_jobs"));
        st.on_job_done(&key("fir"), 1, 5, false, &bd(5));
        st.check_balanced().unwrap();
        // Failed jobs balance too.
        st.on_submit(1);
        st.on_accept(1);
        st.on_job_done(&key("fir"), 1, 5, true, &bd(5));
        st.check_balanced().unwrap();
    }

    #[test]
    fn disconnects_count_by_phase_without_unbalancing() {
        let st = ServerStats::new();
        st.on_disconnect("mid-line");
        st.on_disconnect("mid-reply");
        st.on_disconnect("read-error");
        st.check_balanced().unwrap();
        let j = st.snapshot(IDLE, &[], 0, (0, 0), None);
        assert_eq!(j.path("connections.disconnects").unwrap().as_i64(), Some(3));
        assert_eq!(j.path("connections.disconnects_mid_line").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("connections.disconnects_mid_reply").unwrap().as_i64(), Some(1));
        let text = st.render_prometheus(
            IDLE,
            &[],
            0,
            (0, 0),
            &Histogram::new(),
            &Histogram::new(),
            0,
            (0, 0),
        );
        assert!(text.contains("\nbulkd_disconnects_total 3\n"), "{text}");
        assert!(text.contains("\nbulkd_disconnects_mid_line_total 1\n"), "{text}");
    }

    #[test]
    fn empty_stats_snapshot_is_null_safe() {
        let j = ServerStats::new().snapshot(IDLE, &[], 0, (0, 0), None);
        assert_eq!(j.path("coalescing.coalesce_factor"), Some(&Json::Null));
        assert_eq!(j.path("schedule_cache.hit_rate"), Some(&Json::Null));
    }

    #[test]
    fn wal_section_passes_through_when_provided() {
        let mut w = Json::obj();
        w.set("enabled", true);
        w.set("log_submits", 3u64);
        let j = ServerStats::new().snapshot(IDLE, &[], 0, (0, 0), Some(w));
        assert_eq!(j.path("wal.enabled"), Some(&Json::Bool(true)));
        assert_eq!(j.path("wal.log_submits").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn per_key_section_joins_waiting_and_served_views() {
        let st = ServerStats::new();
        // "fir" has only served history; "hot" has only waiting work.
        st.on_job_done(&key("fir"), 3, 10, false, &bd(10));
        st.on_job_done(&key("fir"), 2, 20, false, &bd(20));
        let waiting = [KeyDepth {
            key: key("hot"),
            queued_instances: 6,
            waiting_jobs: 2,
            oldest_enqueued_us: Some(1_000),
        }];
        let j = st.snapshot(IDLE, &waiting, 5_000, (0, 0), None);
        assert_eq!(j.path("per_key.fir/8/col.served_jobs").unwrap().as_i64(), Some(2));
        assert_eq!(j.path("per_key.fir/8/col.served_instances").unwrap().as_i64(), Some(5));
        assert_eq!(j.path("per_key.fir/8/col.queued_instances").unwrap().as_i64(), Some(0));
        assert_eq!(j.path("per_key.fir/8/col.oldest_wait_us"), Some(&Json::Null));
        assert_eq!(j.path("per_key.hot/8/col.queued_instances").unwrap().as_i64(), Some(6));
        assert_eq!(j.path("per_key.hot/8/col.waiting_jobs").unwrap().as_i64(), Some(2));
        assert_eq!(j.path("per_key.hot/8/col.oldest_wait_us").unwrap().as_i64(), Some(4_000));
        assert_eq!(j.path("per_key.hot/8/col.served_jobs").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn failed_jobs_do_not_enter_stage_histograms_or_served_totals() {
        let st = ServerStats::new();
        st.on_job_done(&key("fir"), 1, 5, false, &bd(5));
        st.on_job_done(&key("fir"), 1, 7, true, &bd(7));
        let j = st.snapshot(IDLE, &[], 0, (0, 0), None);
        // Stage mass equals completed (not finished) jobs — the invariant
        // the CI metrics scrape asserts.
        assert_eq!(j.path("stages.total_us.total").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("per_key.fir/8/col.served_jobs").unwrap().as_i64(), Some(1));
        // Queue wait records both outcomes.
        assert_eq!(j.path("queue.queue_wait_us.total").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn prometheus_rendering_exposes_all_families() {
        let st = ServerStats::new();
        st.on_submit(2);
        st.on_accept(2);
        st.on_batch(2, 300);
        st.on_job_done(&key("prefix-sums"), 1, 40, false, &bd(40));
        st.on_job_done(&key("prefix-sums"), 1, 60, false, &bd(60));
        let fsync = Histogram::new();
        let gc = Histogram::new();
        let text = st.render_prometheus(IDLE, &[], 0, (3, 1), &fsync, &gc, 2, (10, 0));
        assert!(text.contains("\nbulkd_jobs_completed_total 2\n"), "{text}");
        assert!(text.contains("\nbulkd_connections_active 2\n"), "{text}");
        assert!(text.contains("\nbulkd_schedule_cache_hit_rate 0.75\n"), "{text}");
        assert!(
            text.contains("bulkd_key_served_jobs_total{key=\"prefix-sums/8/col\"} 2"),
            "{text}"
        );
        // Stage-latency mass equals completed jobs, for every stage.
        for stage in ["journal", "queue", "dispatch", "exec", "finalize", "total"] {
            let needle = format!("bulkd_stage_latency_us_count{{stage=\"{stage}\"}} 2");
            assert!(text.contains(&needle), "missing {needle} in:\n{text}");
        }
        // WAL-off servers still expose the fsync families (empty).
        assert!(text.contains("\nbulkd_fsync_latency_us_count 0\n"), "{text}");
        assert!(text.contains("\nbulkd_group_commit_batch_size_count 0\n"), "{text}");
        assert!(text.contains("\nbulkd_recorder_events_total 10\n"), "{text}");
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "bad line: {line}");
        }
    }
}
