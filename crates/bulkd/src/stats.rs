//! Live server counters and latency/batch-size distributions.
//!
//! One mutex guards the whole set — every touch is a few integer adds, so
//! contention is negligible next to batch execution — and `snapshot`
//! renders the versioned `RunReport`-style JSON document that the `stats`
//! protocol command returns.

use crate::queue::QueueDepth;
use obs::{Histogram, Json, RunReport};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct Inner {
    submitted_jobs: u64,
    accepted_jobs: u64,
    rejected_jobs: u64,
    completed_jobs: u64,
    failed_jobs: u64,
    submitted_instances: u64,
    accepted_instances: u64,
    rejected_instances: u64,
    completed_instances: u64,
    protocol_errors: u64,
    batches: u64,
    batch_p: Histogram,
    queue_wait_us: Histogram,
    exec_us: Histogram,
}

/// Thread-safe server statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    inner: Mutex<Inner>,
}

impl ServerStats {
    /// A zeroed statistics set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("stats poisoned")
    }

    /// A well-formed submit request arrived (before admission).
    pub fn on_submit(&self, instances: u64) {
        let mut s = self.lock();
        s.submitted_jobs += 1;
        s.submitted_instances += instances;
    }

    /// A submit passed admission and was enqueued.
    pub fn on_accept(&self, instances: u64) {
        let mut s = self.lock();
        s.accepted_jobs += 1;
        s.accepted_instances += instances;
    }

    /// A submit was turned away (overloaded, draining, or bad request).
    pub fn on_reject(&self, instances: u64) {
        let mut s = self.lock();
        s.rejected_jobs += 1;
        s.rejected_instances += instances;
    }

    /// A line failed to parse as a protocol request.
    pub fn on_protocol_error(&self) {
        self.lock().protocol_errors += 1;
    }

    /// One coalesced batch executed with `instances` total lanes.
    pub fn on_batch(&self, instances: u64, exec_us: u64) {
        let mut s = self.lock();
        s.batches += 1;
        s.batch_p.record(instances);
        s.exec_us.record(exec_us);
    }

    /// One accepted job finished (`failed` when its batch's execution
    /// errored); `queue_us` is its enqueue-to-execution wait.
    pub fn on_job_done(&self, instances: u64, queue_us: u64, failed: bool) {
        let mut s = self.lock();
        if failed {
            s.failed_jobs += 1;
        } else {
            s.completed_jobs += 1;
            s.completed_instances += instances;
        }
        s.queue_wait_us.record(queue_us);
    }

    /// Accounting invariant check: every submitted job must be accounted
    /// as accepted or rejected, and (once the queue is empty) every
    /// accepted job as completed or failed.  Returns a description of the
    /// first violated equation.
    ///
    /// # Errors
    ///
    /// The violated equation, with both sides' values.
    pub fn check_balanced(&self) -> Result<(), String> {
        let s = self.lock();
        if s.submitted_jobs != s.accepted_jobs + s.rejected_jobs {
            return Err(format!(
                "submitted_jobs {} != accepted {} + rejected {}",
                s.submitted_jobs, s.accepted_jobs, s.rejected_jobs
            ));
        }
        if s.accepted_jobs != s.completed_jobs + s.failed_jobs {
            return Err(format!(
                "accepted_jobs {} != completed {} + failed {}",
                s.accepted_jobs, s.completed_jobs, s.failed_jobs
            ));
        }
        Ok(())
    }

    /// The versioned observability snapshot served by the `stats` command.
    ///
    /// `cache` is the shared schedule cache's `(hits, compiles)` pair;
    /// `wal` is the journal's section ([`crate::Journal::stats_json`]),
    /// `None` when the server runs without durability.
    #[must_use]
    pub fn snapshot(&self, depth: QueueDepth, cache: (u64, u64), wal: Option<Json>) -> Json {
        let s = self.lock();
        let mut report = RunReport::new("bulkd");

        let mut admission = Json::obj();
        admission.set("submitted_jobs", s.submitted_jobs);
        admission.set("accepted_jobs", s.accepted_jobs);
        admission.set("rejected_jobs", s.rejected_jobs);
        admission.set("submitted_instances", s.submitted_instances);
        admission.set("accepted_instances", s.accepted_instances);
        admission.set("rejected_instances", s.rejected_instances);
        admission.set("protocol_errors", s.protocol_errors);
        report.set("admission", admission);

        let mut execution = Json::obj();
        execution.set("batches", s.batches);
        execution.set("completed_jobs", s.completed_jobs);
        execution.set("failed_jobs", s.failed_jobs);
        execution.set("completed_instances", s.completed_instances);
        execution.set("exec_us", s.exec_us.summary_json());
        report.set("execution", execution);

        // Coalesce factor: jobs per executed batch — 1.0 means no
        // amortization, `p` means the paper's ideal of one schedule replay
        // serving `p` requests.
        let mut coalescing = Json::obj();
        let factor = if s.batches == 0 {
            Json::Null
        } else {
            Json::from((s.completed_jobs + s.failed_jobs) as f64 / s.batches as f64)
        };
        coalescing.set("coalesce_factor", factor);
        coalescing.set("mean_batch_p", s.batch_p.mean());
        coalescing.set("batch_p", s.batch_p.summary_json());
        report.set("coalescing", coalescing);

        let mut queue = Json::obj();
        queue.set("queued_instances", depth.queued_instances);
        queue.set("open_groups", depth.open_groups);
        queue.set("ready_batches", depth.ready_batches);
        queue.set("in_flight_batches", depth.in_flight_batches);
        queue.set("draining", depth.draining);
        queue.set("queue_wait_us", s.queue_wait_us.summary_json());
        report.set("queue", queue);

        let (hits, compiles) = cache;
        let mut sc = Json::obj();
        sc.set("hits", hits);
        sc.set("compiles", compiles);
        let total = hits + compiles;
        let rate = if total == 0 { Json::Null } else { Json::from(hits as f64 / total as f64) };
        sc.set("hit_rate", rate);
        report.set("schedule_cache", sc);

        report.set(
            "wal",
            wal.unwrap_or_else(|| {
                let mut off = Json::obj();
                off.set("enabled", false);
                off
            }),
        );

        report.json().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDLE: QueueDepth = QueueDepth {
        queued_instances: 0,
        open_groups: 0,
        ready_batches: 0,
        in_flight_batches: 0,
        draining: false,
    };

    #[test]
    fn snapshot_reports_every_section_versioned() {
        let st = ServerStats::new();
        st.on_submit(4);
        st.on_accept(4);
        st.on_submit(1);
        st.on_reject(1);
        st.on_batch(4, 250);
        st.on_job_done(4, 90, false);
        st.on_protocol_error();
        let j = st.snapshot(IDLE, (7, 1), None);
        assert_eq!(j.path("tool").unwrap().as_str(), Some("bulkd"));
        assert_eq!(j.path("wal.enabled"), Some(&Json::Bool(false)));
        assert_eq!(j.path("schema_version").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("admission.submitted_jobs").unwrap().as_i64(), Some(2));
        assert_eq!(j.path("admission.rejected_jobs").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("admission.protocol_errors").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("execution.batches").unwrap().as_i64(), Some(1));
        assert_eq!(j.path("coalescing.coalesce_factor").unwrap().as_f64(), Some(1.0));
        assert_eq!(j.path("coalescing.mean_batch_p").unwrap().as_f64(), Some(4.0));
        assert_eq!(j.path("schedule_cache.hit_rate").unwrap().as_f64(), Some(0.875));
        assert_eq!(j.path("queue.queued_instances").unwrap().as_i64(), Some(0));
        // The snapshot is a parseable RunReport.
        assert!(RunReport::parse(&j.to_pretty()).is_ok());
    }

    #[test]
    fn balance_check_catches_lost_jobs() {
        let st = ServerStats::new();
        st.on_submit(1);
        assert!(st.check_balanced().unwrap_err().contains("submitted_jobs"));
        st.on_accept(1);
        assert!(st.check_balanced().unwrap_err().contains("accepted_jobs"));
        st.on_job_done(1, 5, false);
        st.check_balanced().unwrap();
        // Failed jobs balance too.
        st.on_submit(1);
        st.on_accept(1);
        st.on_job_done(1, 5, true);
        st.check_balanced().unwrap();
    }

    #[test]
    fn empty_stats_snapshot_is_null_safe() {
        let j = ServerStats::new().snapshot(IDLE, (0, 0), None);
        assert_eq!(j.path("coalescing.coalesce_factor"), Some(&Json::Null));
        assert_eq!(j.path("schedule_cache.hit_rate"), Some(&Json::Null));
    }

    #[test]
    fn wal_section_passes_through_when_provided() {
        let mut w = Json::obj();
        w.set("enabled", true);
        w.set("log_submits", 3u64);
        let j = ServerStats::new().snapshot(IDLE, (0, 0), Some(w));
        assert_eq!(j.path("wal.enabled"), Some(&Json::Bool(true)));
        assert_eq!(j.path("wal.log_submits").unwrap().as_i64(), Some(3));
    }
}
