//! Replay idempotence at every truncation point.
//!
//! The journal's prefix contract: recovering from ANY prefix of the log
//! yields exactly the state that prefix describes — submits without a
//! completion are requeued in submit order, completed submits are not,
//! and `next_job_id` clears every durable id and checkpoint.  A crash
//! can cut the log anywhere, so the contract is checked at *every*
//! record boundary against an independent reference model, and then
//! end-to-end at *every byte offset* of a real segment file through
//! `wal::scan` (torn tails must degrade to the longest clean prefix,
//! never to a panic or an invented job).

use bulkd::journal::{
    complete_payload, replay, submit_payload, REC_CHECKPOINT, REC_COMPLETE, REC_SUBMIT,
};
use bulkd::JobKey;
use oblivious::Layout;
use obs::Json;
use wal::record::{encode, Record};
use wal::segment::{file_name, SEGMENT_MAGIC};

fn key(algo: &str, size: usize) -> JobKey {
    let layout = if size.is_multiple_of(2) { Layout::ColumnWise } else { Layout::RowWise };
    JobKey { algo: algo.into(), size, layout }
}

fn checkpoint_payload(next_job: u64) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("next_job", next_job);
    o.to_compact().into_bytes()
}

/// A synthetic log exercising every shape the daemon writes: interleaved
/// submits and completions, out-of-order completion, a checkpoint, jobs
/// whose completion never lands, and inputs with extreme bit patterns.
fn synthetic_log() -> Vec<Record> {
    let jobs: &[(u64, JobKey, Vec<Vec<u64>>)] = &[
        (1, key("prefix-sums", 8), vec![vec![1, 2], vec![3, 4]]),
        (2, key("sort", 16), vec![vec![u64::MAX]]),
        (3, key("prefix-sums", 8), vec![vec![0, 1 << 63]]),
        (4, key("transpose", 32), vec![vec![5], vec![6], vec![7]]),
        (5, key("sort", 16), vec![vec![f64::NAN.to_bits()]]),
    ];
    let find = |id: u64| jobs.iter().find(|(j, _, _)| *j == id).unwrap();
    let payloads: Vec<(u8, Vec<u8>)> = vec![
        (REC_SUBMIT, submit_payload(1, &find(1).1, &find(1).2)),
        (REC_SUBMIT, submit_payload(2, &find(2).1, &find(2).2)),
        (REC_COMPLETE, complete_payload(1, Ok(&[vec![11, 12], vec![13, 14]]))),
        (REC_SUBMIT, submit_payload(3, &find(3).1, &find(3).2)),
        (REC_CHECKPOINT, checkpoint_payload(10)),
        (REC_SUBMIT, submit_payload(4, &find(4).1, &find(4).2)),
        // Out-of-order completion: job 4 finishes before job 3.
        (REC_COMPLETE, complete_payload(4, Ok(&[vec![8], vec![9], vec![10]]))),
        (REC_COMPLETE, complete_payload(3, Err("device fault"))),
        (REC_SUBMIT, submit_payload(5, &find(5).1, &find(5).2)),
        // Jobs 2 and 5 never complete: always requeued once submitted.
    ];
    payloads
        .into_iter()
        .enumerate()
        .map(|(i, (rec_type, payload))| Record { seq: i as u64 + 1, rec_type, payload })
        .collect()
}

/// The reference model: what a prefix of `log` must recover to,
/// computed independently of `replay`'s implementation.
fn expected_state(prefix: &[Record]) -> (Vec<u64>, u64, u64) {
    let mut submits: Vec<u64> = Vec::new();
    let mut completed: Vec<u64> = Vec::new();
    let mut max_id = 0u64;
    let mut checkpoint = 1u64;
    for rec in prefix {
        let j = Json::parse(std::str::from_utf8(&rec.payload).unwrap()).unwrap();
        match rec.rec_type {
            REC_SUBMIT => {
                let id = j.get("job").and_then(Json::as_i64).unwrap() as u64;
                submits.push(id);
                max_id = max_id.max(id);
            }
            REC_COMPLETE => {
                completed.push(j.get("job").and_then(Json::as_i64).unwrap() as u64);
            }
            REC_CHECKPOINT => {
                checkpoint =
                    checkpoint.max(j.get("next_job").and_then(Json::as_i64).unwrap() as u64);
            }
            other => panic!("unexpected type {other}"),
        }
    }
    let requeue: Vec<u64> = submits.iter().copied().filter(|id| !completed.contains(id)).collect();
    let already = submits.iter().filter(|id| completed.contains(id)).count() as u64;
    (requeue, checkpoint.max(max_id + 1), already)
}

#[test]
fn every_record_boundary_prefix_recovers_to_the_prefix_state() {
    let log = synthetic_log();
    for cut in 0..=log.len() {
        let prefix = &log[..cut];
        let rec = replay(prefix).unwrap_or_else(|e| panic!("prefix of {cut} records: {e}"));
        let (want_requeue, want_next, want_already) = expected_state(prefix);
        let got: Vec<u64> = rec.requeue.iter().map(|r| r.id).collect();
        assert_eq!(got, want_requeue, "requeue set at cut {cut}");
        assert_eq!(rec.next_job_id, want_next, "next_job_id at cut {cut}");
        assert_eq!(rec.already_completed, want_already, "already_completed at cut {cut}");
        assert_eq!(rec.recovered_records, cut as u64);
        // Requeued jobs carry their full submit payload back, verbatim.
        for r in &rec.requeue {
            let original = prefix
                .iter()
                .find(|p| {
                    p.rec_type == REC_SUBMIT
                        && Json::parse(std::str::from_utf8(&p.payload).unwrap())
                            .unwrap()
                            .get("job")
                            .and_then(Json::as_i64)
                            == Some(r.id as i64)
                })
                .expect("requeued job must come from a submit record");
            let j = Json::parse(std::str::from_utf8(&original.payload).unwrap()).unwrap();
            assert_eq!(j.get("algo").and_then(Json::as_str), Some(r.key.algo.as_str()));
            let inputs: Vec<Vec<u64>> = j
                .get("inputs")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|w| bulkd::protocol::words_from_json(w).unwrap())
                .collect();
            assert_eq!(inputs, r.inputs, "job {} inputs survive recovery bit-exactly", r.id);
        }
    }
}

#[test]
fn replay_is_idempotent() {
    // Recovering, then recovering again from the same records, is a
    // fixed point — the restarted daemon can crash before writing
    // anything new and recover to the identical state.
    let log = synthetic_log();
    let a = replay(&log).unwrap();
    let b = replay(&log).unwrap();
    assert_eq!(
        a.requeue.iter().map(|r| r.id).collect::<Vec<_>>(),
        b.requeue.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    assert_eq!(a.next_job_id, b.next_job_id);
    assert_eq!(a.already_completed, b.already_completed);
}

#[test]
fn every_byte_cut_of_a_real_segment_recovers_the_longest_clean_prefix() {
    let log = synthetic_log();
    let mut body = Vec::new();
    let mut boundaries = vec![0usize];
    for r in &log {
        body.extend_from_slice(&encode(r.seq, r.rec_type, &r.payload));
        boundaries.push(body.len());
    }
    let dir = std::env::temp_dir().join(format!("bulkd-journal-trunc-{}", std::process::id()));
    for cut in 0..=body.len() {
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(file_name(1));
        let mut bytes = SEGMENT_MAGIC.to_vec();
        bytes.extend_from_slice(&body[..cut]);
        std::fs::write(&path, bytes).unwrap();

        let scan = wal::scan(&dir).unwrap();
        // The scan must surface exactly the records fully written before
        // the cut — then recovery over them must match the prefix model.
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        assert_eq!(scan.records.len(), complete, "byte cut {cut}");
        let rec = replay(&scan.records).unwrap_or_else(|e| panic!("byte cut {cut}: {e}"));
        let (want_requeue, want_next, want_already) = expected_state(&log[..complete]);
        assert_eq!(
            rec.requeue.iter().map(|r| r.id).collect::<Vec<_>>(),
            want_requeue,
            "byte cut {cut}"
        );
        assert_eq!(rec.next_job_id, want_next, "byte cut {cut}");
        assert_eq!(rec.already_completed, want_already, "byte cut {cut}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
