//! Property tests for the wire protocol: seeded random request fuzzing
//! (every generated request must survive a wire round-trip bit-exactly)
//! and a malformed-line corpus (every bad line must produce a structured
//! error, never a panic — a daemon that aborts on a client's typo is a
//! remote crash switch).

use bulkd::protocol::{
    hex_to_word, resp_error, resp_outputs, resp_overloaded, word_to_hex, Request,
};
use bulkd::JobKey;
use obs::{Json, Rng};

/// Interesting word bit patterns plus random fill: zero, all-ones, sign
/// bit, NaN payloads — everything a plain JSON number would mangle.
fn gen_word(rng: &mut Rng) -> u64 {
    match rng.range_u64(0, 6) {
        0 => 0,
        1 => u64::MAX,
        2 => 1 << 63,
        3 => u64::from(f32::NAN.to_bits()),
        4 => f64::NAN.to_bits(),
        _ => rng.next_u64(),
    }
}

fn gen_request(rng: &mut Rng) -> Request {
    match rng.range_u64(0, 8) {
        0 => Request::Status,
        1 => Request::Stats,
        2 => Request::Drain,
        3 => Request::Metrics,
        4 => Request::Dump,
        _ => {
            let algo_pool = ["prefix-sums", "sort", "x", "a-b-c", "transpose32"];
            let algo = algo_pool[rng.range_u64(0, algo_pool.len() as u64) as usize].to_string();
            let size = 1 + rng.range_u64(0, 1 << 20) as usize;
            let layout = if rng.range_u64(0, 2) == 0 {
                oblivious::Layout::RowWise
            } else {
                oblivious::Layout::ColumnWise
            };
            let instances = rng.range_u64(0, 5) as usize;
            let inputs = (0..instances)
                .map(|_| {
                    let words = rng.range_u64(0, 5) as usize;
                    (0..words).map(|_| gen_word(rng)).collect()
                })
                .collect();
            let timing = rng.range_u64(0, 2) == 1;
            Request::Submit { key: JobKey { algo, size, layout }, inputs, timing }
        }
    }
}

#[test]
fn every_generated_request_round_trips_bit_exactly() {
    let mut rng = Rng::new(0x5EED_0001);
    for i in 0..500 {
        let req = gen_request(&mut rng);
        let line = req.to_json().to_compact();
        let back = Request::parse_line(&line)
            .unwrap_or_else(|e| panic!("iteration {i}: {line} did not parse: {e}"));
        assert_eq!(back, req, "iteration {i}: wire round-trip changed the request");
        // The wire form itself must be stable: re-serializing the parsed
        // request yields the identical line.
        assert_eq!(back.to_json().to_compact(), line, "iteration {i}: unstable serialization");
    }
}

#[test]
fn every_strict_prefix_of_a_valid_line_is_a_structured_error() {
    let mut rng = Rng::new(0x5EED_0002);
    for _ in 0..25 {
        let line = gen_request(&mut rng).to_json().to_compact();
        assert!(line.is_ascii(), "compact protocol lines are ASCII: {line}");
        for cut in 0..line.len() {
            let prefix = &line[..cut];
            let err = Request::parse_line(prefix).expect_err("a strict prefix cannot parse");
            assert!(!err.is_empty(), "error for {prefix:?} must carry a diagnosis");
        }
    }
}

#[test]
fn responses_round_trip_through_the_json_layer() {
    let mut rng = Rng::new(0x5EED_0003);
    for _ in 0..100 {
        let outputs: Vec<Vec<u64>> = (0..rng.range_u64(0, 4))
            .map(|_| (0..rng.range_u64(0, 4)).map(|_| gen_word(&mut rng)).collect())
            .collect();
        let timing = if rng.range_u64(0, 2) == 1 {
            let mut t = Json::obj();
            t.set("queue_us", rng.next_u64() >> 40);
            t.set("exec_us", rng.next_u64() >> 40);
            Some(t)
        } else {
            None
        };
        let r = resp_outputs(
            &outputs,
            rng.range_u64(1, 256) as usize,
            rng.next_u64() >> 40,
            17,
            timing,
        );
        let parsed = Json::parse(&r.to_compact()).expect("response must be valid JSON");
        assert_eq!(parsed, r, "response changed across a JSON round-trip");
        assert_eq!(parsed.path("ok"), Some(&Json::Bool(true)));
    }
    for r in [resp_overloaded(7), resp_error("exec", "unit \"x/4\" is not in the catalog")] {
        let parsed = Json::parse(&r.to_compact()).unwrap();
        assert_eq!(parsed.path("ok"), Some(&Json::Bool(false)));
        assert!(parsed.path("error").is_some());
    }
}

#[test]
fn malformed_corpus_yields_errors_never_panics() {
    // Every line here is wrong in a different way; `parse_line` must
    // return a non-empty structured error for each — and, above all,
    // must not panic on any of them.
    let corpus: &[&str] = &[
        "",
        "   ",
        "{",
        "}",
        "null",
        "42",
        "\"submit\"",
        "[{\"cmd\":\"status\"}]",
        "{\"cmd\":42}",
        "{\"cmd\":null}",
        "{\"cmd\":\"submit\"}",
        "{\"cmd\":\"submit\",\"algo\":7,\"size\":4,\"layout\":\"row\",\"inputs\":[]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":0,\"layout\":\"row\",\"inputs\":[]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":-4,\"layout\":\"row\",\"inputs\":[]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"diag\",\"inputs\":[]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\"inputs\":7}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\"inputs\":[7]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\"inputs\":[[7]]}",
        // Out-of-range and malformed hex words.
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\
         \"inputs\":[[\"0x1ffffffffffffffff\"]]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\
         \"inputs\":[[\"0x\"]]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\
         \"inputs\":[[\"0xgg\"]]}",
        "{\"cmd\":\"submit\",\"algo\":\"x\",\"size\":4,\"layout\":\"row\",\
         \"inputs\":[[\"ff\"]]}",
        "{\"cmd\":\"explode\"}",
        // Trailing garbage after a complete document.
        "{\"cmd\":\"status\"} extra",
    ];
    for line in corpus {
        let err = Request::parse_line(line)
            .expect_err(&format!("malformed line {line:?} must not parse"));
        assert!(!err.is_empty(), "error for {line:?} must carry a diagnosis");
    }
    // Duplicate keys must not panic either way the parser resolves them;
    // if it accepts the line, the result must be a coherent request.
    for line in ["{\"cmd\":\"status\",\"cmd\":\"stats\"}", "{\"cmd\":\"drain\",\"cmd\":7}"] {
        match Request::parse_line(line) {
            Ok(req) => assert!(
                matches!(req, Request::Status | Request::Stats | Request::Drain),
                "duplicate-key line {line:?} parsed to a nonsense request"
            ),
            Err(e) => assert!(!e.is_empty(), "error for {line:?} must carry a diagnosis"),
        }
    }
}

#[test]
fn hex_words_reject_out_of_range_values_with_context() {
    // 17 hex digits overflows u64: the error must name the word.
    let e = hex_to_word("0x1ffffffffffffffff").unwrap_err();
    assert!(e.contains("0x1ffffffffffffffff"), "{e}");
    // Round-trip at the boundary stays exact.
    assert_eq!(hex_to_word(&word_to_hex(u64::MAX)).unwrap(), u64::MAX);
    assert_eq!(hex_to_word(&word_to_hex(0)).unwrap(), 0);
}
