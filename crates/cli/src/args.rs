//! Minimal dependency-free argument parsing for `bulkrun`.

use oblivious::Layout;
use umm_core::MachineConfig;
use wal::FsyncPolicy;

/// A parsed `bulkrun` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bulkrun list`
    List,
    /// `bulkrun trace <algo> [--size N] [--head K]`
    Trace {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// How many steps to print.
        head: usize,
    },
    /// `bulkrun model <algo> [--size N] [--p P] [--width W] [--latency L]`
    Model {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Machine parameters.
        cfg: MachineConfig,
    },
    /// `bulkrun run <algo> [--size N] [--p P] [--layout row|col]
    /// [--profile PATH]`
    Run {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Arrangement.
        layout: Layout,
        /// Write a JSON `RunReport` (model profile + device scheduler
        /// profile) to this path.
        profile: Option<String>,
        /// Write a Chrome Trace Event Format JSON timeline (engine, UMM,
        /// DMM and device processes) to this path.
        trace: Option<String>,
        /// Execute through a compiled schedule (one dry run, replayed)
        /// instead of re-interpreting the program.
        compiled: bool,
        /// Number of instance shards replayed on separate threads
        /// (`--compiled` only).
        shards: usize,
    },
    /// `bulkrun timeline <algo> [--size N] [--p P] [--layout row|col]
    /// [--width W] [--latency L] [--cols C]`
    Timeline {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Arrangement.
        layout: Layout,
        /// Machine parameters.
        cfg: MachineConfig,
        /// Terminal columns for the time axis.
        cols: usize,
    },
    /// `bulkrun compare <a.json> <b.json> [--threshold PCT]`
    Compare {
        /// Baseline report path.
        a: String,
        /// Candidate report path.
        b: String,
        /// Relative tolerance for gated metrics, in percent.
        threshold: f64,
    },
    /// `bulkrun hmm <algo> [--size N] [--p P] [--dmms D]`
    Hmm {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Number of DMMs (streaming multiprocessors).
        dmms: usize,
    },
    /// `bulkrun serve [--addr A] [--node-id ID] [--workers N]
    /// [--max-batch P] [--max-queue Q] [--flush-after-ms MS] [--shards N]
    /// [--trace PATH] [--wal-dir DIR] [--fsync POLICY]
    /// [--wal-segment-bytes B]`
    Serve {
        /// Bind address (`127.0.0.1:0` picks an ephemeral port).
        addr: String,
        /// Stable node identity reported in status/stats (defaults to
        /// the bound address; name nodes explicitly when routing).
        node_id: Option<String>,
        /// Worker threads executing batches.
        workers: usize,
        /// Target batch `p` (size-based flush trigger).
        max_batch: usize,
        /// Admission bound on queued instances.
        max_queue: usize,
        /// Deadline-based flush trigger, in milliseconds.
        flush_after_ms: u64,
        /// Shards each batch replay splits over.
        shards: usize,
        /// Write a Chrome-trace of batch executions here at shutdown.
        trace: Option<String>,
        /// Write-ahead log directory; `None` disables durability.
        wal_dir: Option<String>,
        /// When WAL appends are fsynced.
        fsync: FsyncPolicy,
        /// WAL segment rotation threshold in bytes.
        wal_segment_bytes: u64,
        /// Flight-recorder dump path (Chrome trace + `.txt` tail).
        recorder: Option<String>,
        /// Record per-stage trace events (`--no-instrument` disables).
        instrument: bool,
        /// Replication listener bind address: ship the WAL to a warm
        /// standby and gate completion acks on its durable mark.
        /// Requires `--wal-dir`.
        replicate_to: Option<String>,
    },
    /// `bulkrun standby --follow ADDR --wal-dir DIR [--addr A]
    /// [--node-id ID] [--reconnect-ms MS] [--wal-segment-bytes B]
    /// [--workers N] [--max-batch P] [--max-queue Q]
    /// [--flush-after-ms MS] [--shards N]` — follow a primary's
    /// replication stream; on `promote`, recover from the replicated WAL
    /// and serve on the same address.
    Standby {
        /// Control bind address (the address a promoted node serves on).
        addr: String,
        /// Stable node identity (HELLO handshake + status).
        node_id: Option<String>,
        /// The primary's replication listener (`serve --replicate-to`).
        follow: String,
        /// Local WAL directory receiving the shipped records.
        wal_dir: String,
        /// Local WAL segment rotation threshold in bytes.
        wal_segment_bytes: u64,
        /// Redial backoff while the primary is unreachable, in ms.
        reconnect_ms: u64,
        /// Worker threads of the promoted server.
        workers: usize,
        /// Target batch `p` of the promoted server.
        max_batch: usize,
        /// Admission bound of the promoted server.
        max_queue: usize,
        /// Flush deadline of the promoted server, in milliseconds.
        flush_after_ms: u64,
        /// Shards each batch replay splits over after promotion.
        shards: usize,
    },
    /// `bulkrun promote [--addr A]` — ask a warm standby to take over as
    /// the serving primary.
    Promote {
        /// Standby control address.
        addr: String,
        /// Dial timeout in milliseconds (`None` = OS default).
        connect_timeout_ms: Option<u64>,
        /// Reply-read timeout in milliseconds (`None` = block forever).
        read_timeout_ms: Option<u64>,
    },
    /// `bulkrun route --backends id=addr,… [--addr A] [--vnodes V]
    /// [--probe-interval-ms MS] [--probe-timeout-ms MS] [--down-after K]
    /// [--up-after J] [--connect-timeout-ms MS] [--read-timeout-ms MS]`
    Route {
        /// Bind address (`127.0.0.1:0` picks an ephemeral port).
        addr: String,
        /// Backend bulkd nodes (`id=addr` entries; the ring hashes ids).
        backends: Vec<router::Backend>,
        /// Warm standbys shadowing backends (`id=addr`, id naming the
        /// backend; the prober auto-promotes on a debounced Down).
        standbys: Vec<router::Backend>,
        /// Virtual nodes per backend on the hash ring.
        vnodes: usize,
        /// Milliseconds between health-probe rounds.
        probe_interval_ms: u64,
        /// Connect/read timeout of one health probe, in milliseconds.
        probe_timeout_ms: u64,
        /// Consecutive probe failures before a node is marked down.
        down_after: u32,
        /// Consecutive probe successes before a down node is marked up.
        up_after: u32,
        /// Backend dial timeout when forwarding, in milliseconds.
        connect_timeout_ms: u64,
        /// Backend reply-read timeout when forwarding, in milliseconds.
        read_timeout_ms: u64,
    },
    /// `bulkrun drain [--addr A]` — drain a server and print its final
    /// stats snapshot as pure JSON.
    Drain {
        /// Server address.
        addr: String,
        /// Dial timeout in milliseconds (`None` = OS default).
        connect_timeout_ms: Option<u64>,
        /// Reply-read timeout in milliseconds (`None` = block forever).
        read_timeout_ms: Option<u64>,
    },
    /// `bulkrun metrics [--addr A]` — print the server's live counters,
    /// gauges and histograms in Prometheus text exposition format.
    Metrics {
        /// Server address.
        addr: String,
        /// Dial timeout in milliseconds (`None` = OS default).
        connect_timeout_ms: Option<u64>,
        /// Reply-read timeout in milliseconds (`None` = block forever).
        read_timeout_ms: Option<u64>,
    },
    /// `bulkrun dump [--addr A]` — ask the server to dump its flight
    /// recorder and print the event tail.
    Dump {
        /// Server address.
        addr: String,
        /// Dial timeout in milliseconds (`None` = OS default).
        connect_timeout_ms: Option<u64>,
        /// Reply-read timeout in milliseconds (`None` = block forever).
        read_timeout_ms: Option<u64>,
    },
    /// `bulkrun submit <algo> [--size N] [--layout row|col] [--addr A]
    /// [--count C] [--seed S]`
    Submit {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Arrangement.
        layout: Layout,
        /// Server address.
        addr: String,
        /// Instances carried by the single submit.
        count: usize,
        /// Seed for deterministic input generation.
        seed: u64,
        /// Ask the server to echo the per-stage timing breakdown.
        timing: bool,
        /// Dial timeout in milliseconds (`None` = OS default).
        connect_timeout_ms: Option<u64>,
        /// Reply-read timeout in milliseconds (`None` = block forever).
        read_timeout_ms: Option<u64>,
    },
    /// `bulkrun loadgen <algo> [--size N] [--layout row|col] [--addr A]
    /// [--clients C] [--duration-ms MS] [--instances N] [--seed S]
    /// [--report PATH] [--drain-after]`
    Loadgen {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Arrangement.
        layout: Layout,
        /// Server address.
        addr: String,
        /// Concurrent closed-loop clients.
        clients: usize,
        /// How long to keep submitting, in milliseconds.
        duration_ms: u64,
        /// Instances per submit.
        instances_per_submit: usize,
        /// Root seed for the per-client RNG streams.
        seed: u64,
        /// Write the combined loadgen + server-stats report here.
        report: Option<String>,
        /// Send `drain` when done (shuts the server down).
        drain_after: bool,
        /// Request per-stage timing on every submit so the report can
        /// split latency into queue-wait vs service time
        /// (`--no-timing` disables, for overhead baselines).
        timing: bool,
        /// Skewed scenario: most clients hammer one key while a minority
        /// submits a cold key, to exercise the per-key stats.
        hot_key: bool,
        /// Dial timeout in milliseconds (`None` = OS default).
        connect_timeout_ms: Option<u64>,
        /// Reply-read timeout in milliseconds (`None` = block forever).
        read_timeout_ms: Option<u64>,
    },
    /// `bulkrun sim [--seeds N] [--seed0 S] [--clients C] [--workers W]
    /// [--jobs J] [--replay SEED] [--crash-at K] [--report PATH]`
    Sim {
        /// How many seeds to explore (each seed also gets a crash sweep
        /// over every WAL cut point).
        seeds: u64,
        /// First seed of the explored range.
        seed0: u64,
        /// Simulated client actors per schedule.
        clients: usize,
        /// Simulated worker actors per schedule.
        workers: usize,
        /// Jobs each simulated client submits.
        jobs: usize,
        /// Replay one seed instead of exploring: print its decision trace
        /// and verify two runs produce bit-identical traces and stats.
        replay: Option<u64>,
        /// With `--replay`: crash the daemon after WAL append number K
        /// (1-based) and verify recovery for every legal surviving cut.
        crash_at: Option<u64>,
        /// Inject connection faults: partial/coalesced delivery of
        /// request bytes, status probes racing submits, disconnects
        /// mid-submit and mid-reply.
        conn_faults: bool,
        /// When exploring: additionally sweep an injected fsync failure
        /// over every sync attempt of each seed's clean run.
        fsync_errors: bool,
        /// With `--replay`: fail the Nth WAL fsync attempt (1-based) and
        /// verify the journal fail-stops cleanly.
        fsync_fail_at: Option<u64>,
        /// Write the exploration report (or replayed trace) here.
        report: Option<String>,
    },
    /// `bulkrun help`
    Help,
}

/// Default bind/connect address for the serving commands.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7070";

/// Default bind address for the routing tier (distinct from bulkd's so
/// a router and a node co-exist on one host out of the box).
pub const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:7171";

/// Usage text.
pub const USAGE: &str = "\
bulkrun — bulk execution of oblivious algorithms (UMM reproduction)

USAGE:
  bulkrun list                                   catalog of algorithms
  bulkrun trace <algo> [--size N] [--head K]     show the address function a(t)
  bulkrun model <algo> [--size N] [--p P]        UMM/DMM model times
                       [--width W] [--latency L]
  bulkrun run   <algo> [--size N] [--p P]        bulk-execute random instances
                       [--layout row|col]
                       [--profile PATH]          write a JSON RunReport
                                                 (model rounds + histogram,
                                                 device worker/block timings)
                       [--trace PATH]            write a Chrome-trace timeline
                                                 (open in Perfetto / about:tracing)
                       [--compiled]              replay a compiled schedule
                                                 instead of re-interpreting
                       [--shards N]              split instances over N threads
                                                 (requires --compiled)
  bulkrun timeline <algo> [--size N] [--p P]     plain-terminal warp timeline
                       [--layout row|col]        of the UMM model simulation
                       [--width W] [--latency L]
                       [--cols C]
  bulkrun compare <a.json> <b.json>              diff two RunReports; exits
                       [--threshold PCT]         non-zero on regression beyond
                                                 the tolerance (default 0%)
  bulkrun hmm   <algo> [--size N] [--p P]        shared-memory staging analysis
                       [--dmms D]
  bulkrun serve        [--addr A]                batch-serving daemon: coalesce
                       [--workers N]             submits by (algo, n, layout),
                       [--max-batch P]           execute via cached compiled
                       [--max-queue Q]           schedules; bounded queue with
                       [--flush-after-ms MS]     overload backpressure
                       [--shards N]
                       [--trace PATH]            Chrome-trace of batch spans
                       [--wal-dir DIR]           write-ahead log: accepted jobs
                       [--fsync POLICY]          survive kill -9 and re-run on
                       [--wal-segment-bytes B]   restart (policy: always,
                                                 every-n=N, every-ms=MS)
                       [--recorder PATH]         flight-recorder dump target
                                                 (Chrome trace + .txt tail,
                                                 written on panic/drain/dump)
                       [--no-instrument]         disable stage-event recording
                       [--node-id ID]            stable identity in status/stats
                                                 (default: the bound address)
                       [--replicate-to A]        ship the WAL to a warm standby
                                                 dialing A; completion acks wait
                                                 for its durable mark (requires
                                                 --wal-dir)
  bulkrun standby      --follow ADDR             warm standby: append the
                       --wal-dir DIR             primary's shipped WAL records
                       [--addr A] [--node-id ID] durably, answer not_primary
                       [--reconnect-ms MS]       with a leader hint, and on
                       [--wal-segment-bytes B]   promote recover + serve on the
                       [--workers N]             same address (serve tunables
                       [--max-batch P]           apply to the promoted server)
                       [--max-queue Q]
                       [--flush-after-ms MS]
                       [--shards N]
  bulkrun promote      [--addr A]                promote a warm standby to the
                       [--connect-timeout-ms MS] serving primary (refused if it
                       [--read-timeout-ms MS]    would lose acked jobs)
  bulkrun route        --backends id=addr,...    consistent-hash routing tier:
                       [--addr A] [--vnodes V]   each coalescing key (algo, n,
                       [--probe-interval-ms MS]  layout) maps to one backend, so
                       [--probe-timeout-ms MS]   compiles and batches stay
                       [--down-after K]          whole; health-checks backends,
                       [--up-after J]            reroutes around down/overloaded
                       [--connect-timeout-ms MS] nodes, merges cluster stats/
                       [--read-timeout-ms MS]    metrics/drain
                       [--standbys id=addr,...]  warm standbys by backend id;
                                                 a debounced-Down backend's
                                                 standby is auto-promoted and
                                                 its id repointed (keys stay)
  bulkrun drain        [--addr A]                drain a server; print its final
                       [--connect-timeout-ms MS] stats snapshot as JSON
                       [--read-timeout-ms MS]
  bulkrun metrics      [--addr A]                scrape live counters/gauges/
                       [--connect-timeout-ms MS] histograms as Prometheus text
                       [--read-timeout-ms MS]
  bulkrun dump         [--addr A]                dump the flight recorder now;
                       [--connect-timeout-ms MS] print the event tail
                       [--read-timeout-ms MS]
  bulkrun submit <algo> [--size N]               submit instances to a server
                       [--layout row|col]        and wait for the batch
                       [--addr A] [--count C]
                       [--seed S]
                       [--timing]                echo the per-stage breakdown
                       [--connect-timeout-ms MS]
                       [--read-timeout-ms MS]
  bulkrun loadgen <algo> [--size N]              closed-loop load generator:
                       [--layout row|col]        throughput + latency quantiles
                       [--addr A] [--clients C]  (report embeds the server's
                       [--duration-ms MS]        stats snapshot and splits
                       [--instances N]           latency into queue-wait vs
                       [--seed S]                service time)
                       [--report PATH]
                       [--drain-after]           drain the server when done
                       [--no-timing]             skip per-stage timing echoes
                       [--hot-key]               skewed per-key scenario
                       [--connect-timeout-ms MS]
                       [--read-timeout-ms MS]
  bulkrun sim          [--seeds N] [--seed0 S]   deterministic simulation: run
                       [--clients C]             the daemon single-threaded on
                       [--workers W] [--jobs J]  a virtual clock, exploring N
                       [--replay SEED]           seeded schedules + a crash at
                       [--crash-at K]            every WAL cut point; --replay
                       [--conn-faults]           re-runs one seed and prints
                       [--fsync-errors]          its decision trace;
                       [--fsync-fail-at S]       --conn-faults chunks/dribbles/
                       [--report PATH]           drops connections, --fsync-
                                                 errors sweeps injected fsync
                                                 failures over every sync
  bulkrun help

Defaults: p = 4096, width = 32, latency = 100, layout = col.
Timeline defaults: p = 128, latency = 8, cols = 72 (small enough to read).
Serve defaults: addr = 127.0.0.1:7070, workers = 4, max-batch = 256,
  max-queue = 4096, flush-after-ms = 5, shards = 1, no WAL;
  with --wal-dir: fsync = always, wal-segment-bytes = 4194304.
Standby defaults: addr = 127.0.0.1:7070, reconnect-ms = 100,
  wal-segment-bytes = 4194304, plus the serve worker/batch defaults.
Route defaults: addr = 127.0.0.1:7171, vnodes = 64, probe-interval-ms = 500,
  probe-timeout-ms = 250, down-after = 3, up-after = 2,
  connect-timeout-ms = 1000, read-timeout-ms = 30000, no standbys.
Loadgen defaults: clients = 32, duration-ms = 5000, instances = 1.
Sim defaults: seeds = 100, seed0 = 1, clients = 3, workers = 2, jobs = 4.
";

fn parse_flag(args: &[String], flag: &str) -> Result<Option<usize>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            return v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("{flag}: '{v}' is not a number"));
        }
    }
    Ok(None)
}

fn parse_f64_flag(args: &[String], flag: &str) -> Result<Option<f64>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            let x = v.parse::<f64>().map_err(|_| format!("{flag}: '{v}' is not a number"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("{flag} must be a non-negative number, got '{v}'"));
            }
            return Ok(Some(x));
        }
    }
    Ok(None)
}

fn parse_string_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            if v.starts_with("--") {
                return Err(format!("{flag} needs a value, got flag '{v}'"));
            }
            return Ok(Some(v.clone()));
        }
    }
    Ok(None)
}

/// Reject any `--flag` token the subcommand does not know — a typo'd
/// `--profil` must error, not silently run without its effect.
fn reject_unknown(args: &[String], allowed: &[&str]) -> Result<(), String> {
    for a in args {
        if a.starts_with("--") && !allowed.contains(&a.as_str()) {
            return Err(format!("unknown flag '{a}'; try `bulkrun help`"));
        }
    }
    Ok(())
}

/// Parse the optional `--connect-timeout-ms` / `--read-timeout-ms` pair
/// shared by every client-side subcommand.
fn parse_timeouts(args: &[String]) -> Result<(Option<u64>, Option<u64>), String> {
    let ct = parse_flag(args, "--connect-timeout-ms")?;
    let rt = parse_flag(args, "--read-timeout-ms")?;
    for (flag, v) in [("--connect-timeout-ms", ct), ("--read-timeout-ms", rt)] {
        if v == Some(0) {
            return Err(format!("{flag} must be positive"));
        }
    }
    Ok((ct.map(|v| v as u64), rt.map(|v| v as u64)))
}

fn parse_layout(args: &[String]) -> Result<Layout, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--layout" {
            let v = args.get(i + 1).ok_or("--layout needs a value")?;
            return match v.as_str() {
                "row" | "row-wise" => Ok(Layout::RowWise),
                "col" | "column" | "column-wise" => Ok(Layout::ColumnWise),
                other => Err(format!("--layout: '{other}' is neither row nor col")),
            };
        }
    }
    Ok(Layout::ColumnWise)
}

/// Parse a full argument vector (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "compare" => {
            let a = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("compare needs two report paths")?
                .clone();
            let b = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or("compare needs two report paths")?
                .clone();
            let rest = &args[3..];
            reject_unknown(rest, &["--threshold"])?;
            let threshold = parse_f64_flag(rest, "--threshold")?.unwrap_or(0.0);
            Ok(Command::Compare { a, b, threshold })
        }
        "timeline" => {
            let algo = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("timeline needs an algorithm name")?
                .clone();
            let rest = &args[2..];
            reject_unknown(rest, &["--size", "--p", "--layout", "--width", "--latency", "--cols"])?;
            Ok(Command::Timeline {
                algo,
                size: parse_flag(rest, "--size")?,
                p: parse_flag(rest, "--p")?.unwrap_or(128),
                layout: parse_layout(rest)?,
                cfg: MachineConfig::new(
                    parse_flag(rest, "--width")?.unwrap_or(32),
                    parse_flag(rest, "--latency")?.unwrap_or(8),
                ),
                cols: parse_flag(rest, "--cols")?.unwrap_or(72),
            })
        }
        "serve" => {
            let rest = &args[1..];
            reject_unknown(
                rest,
                &[
                    "--addr",
                    "--workers",
                    "--max-batch",
                    "--max-queue",
                    "--flush-after-ms",
                    "--shards",
                    "--trace",
                    "--wal-dir",
                    "--fsync",
                    "--wal-segment-bytes",
                    "--recorder",
                    "--no-instrument",
                    "--node-id",
                    "--replicate-to",
                ],
            )?;
            let workers = parse_flag(rest, "--workers")?.unwrap_or(4);
            let max_batch = parse_flag(rest, "--max-batch")?.unwrap_or(256);
            let max_queue = parse_flag(rest, "--max-queue")?.unwrap_or(4096);
            let shards = parse_flag(rest, "--shards")?.unwrap_or(1);
            for (flag, v) in
                [("--workers", workers), ("--max-batch", max_batch), ("--shards", shards)]
            {
                if v == 0 {
                    return Err(format!("{flag} must be positive"));
                }
            }
            let wal_dir = parse_string_flag(rest, "--wal-dir")?;
            let fsync_raw = parse_string_flag(rest, "--fsync")?;
            let wal_segment_bytes = parse_flag(rest, "--wal-segment-bytes")?;
            if wal_dir.is_none() && (fsync_raw.is_some() || wal_segment_bytes.is_some()) {
                return Err("--fsync / --wal-segment-bytes require --wal-dir".into());
            }
            let fsync = match fsync_raw {
                Some(s) => FsyncPolicy::parse(&s).map_err(|e| format!("--fsync: {e}"))?,
                None => FsyncPolicy::Always,
            };
            let wal_segment_bytes = wal_segment_bytes.unwrap_or(4 << 20) as u64;
            if wal_segment_bytes == 0 {
                return Err("--wal-segment-bytes must be positive".into());
            }
            let replicate_to = parse_string_flag(rest, "--replicate-to")?;
            if replicate_to.is_some() && wal_dir.is_none() {
                return Err("--replicate-to ships the WAL, so it requires --wal-dir".into());
            }
            Ok(Command::Serve {
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                node_id: parse_string_flag(rest, "--node-id")?,
                workers,
                max_batch,
                max_queue,
                flush_after_ms: parse_flag(rest, "--flush-after-ms")?.unwrap_or(5) as u64,
                shards,
                trace: parse_string_flag(rest, "--trace")?,
                wal_dir,
                fsync,
                wal_segment_bytes,
                recorder: parse_string_flag(rest, "--recorder")?,
                instrument: !rest.iter().any(|a| a == "--no-instrument"),
                replicate_to,
            })
        }
        "standby" => {
            let rest = &args[1..];
            reject_unknown(
                rest,
                &[
                    "--addr",
                    "--node-id",
                    "--follow",
                    "--wal-dir",
                    "--wal-segment-bytes",
                    "--reconnect-ms",
                    "--workers",
                    "--max-batch",
                    "--max-queue",
                    "--flush-after-ms",
                    "--shards",
                ],
            )?;
            let follow = parse_string_flag(rest, "--follow")?
                .ok_or("standby needs --follow ADDR (the primary's --replicate-to address)")?;
            let wal_dir = parse_string_flag(rest, "--wal-dir")?
                .ok_or("standby needs --wal-dir DIR (where the shipped records land)")?;
            let wal_segment_bytes = parse_flag(rest, "--wal-segment-bytes")?.unwrap_or(4 << 20);
            let reconnect_ms = parse_flag(rest, "--reconnect-ms")?.unwrap_or(100);
            let workers = parse_flag(rest, "--workers")?.unwrap_or(4);
            let max_batch = parse_flag(rest, "--max-batch")?.unwrap_or(256);
            let shards = parse_flag(rest, "--shards")?.unwrap_or(1);
            for (flag, v) in [
                ("--wal-segment-bytes", wal_segment_bytes),
                ("--reconnect-ms", reconnect_ms),
                ("--workers", workers),
                ("--max-batch", max_batch),
                ("--shards", shards),
            ] {
                if v == 0 {
                    return Err(format!("{flag} must be positive"));
                }
            }
            Ok(Command::Standby {
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                node_id: parse_string_flag(rest, "--node-id")?,
                follow,
                wal_dir,
                wal_segment_bytes: wal_segment_bytes as u64,
                reconnect_ms: reconnect_ms as u64,
                workers,
                max_batch,
                max_queue: parse_flag(rest, "--max-queue")?.unwrap_or(4096),
                flush_after_ms: parse_flag(rest, "--flush-after-ms")?.unwrap_or(5) as u64,
                shards,
            })
        }
        "promote" => {
            let rest = &args[1..];
            reject_unknown(rest, &["--addr", "--connect-timeout-ms", "--read-timeout-ms"])?;
            let (connect_timeout_ms, read_timeout_ms) = parse_timeouts(rest)?;
            Ok(Command::Promote {
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "route" => {
            let rest = &args[1..];
            reject_unknown(
                rest,
                &[
                    "--addr",
                    "--backends",
                    "--standbys",
                    "--vnodes",
                    "--probe-interval-ms",
                    "--probe-timeout-ms",
                    "--down-after",
                    "--up-after",
                    "--connect-timeout-ms",
                    "--read-timeout-ms",
                ],
            )?;
            let spec = parse_string_flag(rest, "--backends")?
                .ok_or("route needs --backends id=addr,… (the bulkd nodes to route over)")?;
            let backends = router::parse_backends(&spec).map_err(|e| format!("--backends: {e}"))?;
            let standbys = match parse_string_flag(rest, "--standbys")? {
                Some(spec) => {
                    let standbys =
                        router::parse_backends(&spec).map_err(|e| format!("--standbys: {e}"))?;
                    for s in &standbys {
                        if !backends.iter().any(|b| b.id == s.id) {
                            return Err(format!(
                                "--standbys: \"{}\" names no backend id (standbys shadow \
                                 backends by id)",
                                s.id
                            ));
                        }
                    }
                    standbys
                }
                None => Vec::new(),
            };
            let vnodes = parse_flag(rest, "--vnodes")?.unwrap_or(64);
            let probe_interval_ms = parse_flag(rest, "--probe-interval-ms")?.unwrap_or(500) as u64;
            let probe_timeout_ms = parse_flag(rest, "--probe-timeout-ms")?.unwrap_or(250) as u64;
            let down_after = parse_flag(rest, "--down-after")?.unwrap_or(3);
            let up_after = parse_flag(rest, "--up-after")?.unwrap_or(2);
            let connect_timeout_ms =
                parse_flag(rest, "--connect-timeout-ms")?.unwrap_or(1000) as u64;
            let read_timeout_ms = parse_flag(rest, "--read-timeout-ms")?.unwrap_or(30_000) as u64;
            for (flag, v) in [
                ("--vnodes", vnodes as u64),
                ("--probe-interval-ms", probe_interval_ms),
                ("--probe-timeout-ms", probe_timeout_ms),
                ("--down-after", down_after as u64),
                ("--up-after", up_after as u64),
                ("--connect-timeout-ms", connect_timeout_ms),
                ("--read-timeout-ms", read_timeout_ms),
            ] {
                if v == 0 {
                    return Err(format!("{flag} must be positive"));
                }
            }
            Ok(Command::Route {
                addr: parse_string_flag(rest, "--addr")?
                    .unwrap_or_else(|| DEFAULT_ROUTER_ADDR.into()),
                backends,
                standbys,
                vnodes,
                probe_interval_ms,
                probe_timeout_ms,
                down_after: down_after as u32,
                up_after: up_after as u32,
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "drain" => {
            let rest = &args[1..];
            reject_unknown(rest, &["--addr", "--connect-timeout-ms", "--read-timeout-ms"])?;
            let (connect_timeout_ms, read_timeout_ms) = parse_timeouts(rest)?;
            Ok(Command::Drain {
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "metrics" => {
            let rest = &args[1..];
            reject_unknown(rest, &["--addr", "--connect-timeout-ms", "--read-timeout-ms"])?;
            let (connect_timeout_ms, read_timeout_ms) = parse_timeouts(rest)?;
            Ok(Command::Metrics {
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "dump" => {
            let rest = &args[1..];
            reject_unknown(rest, &["--addr", "--connect-timeout-ms", "--read-timeout-ms"])?;
            let (connect_timeout_ms, read_timeout_ms) = parse_timeouts(rest)?;
            Ok(Command::Dump {
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "submit" => {
            let algo = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("submit needs an algorithm name")?
                .clone();
            let rest = &args[2..];
            reject_unknown(
                rest,
                &[
                    "--size",
                    "--layout",
                    "--addr",
                    "--count",
                    "--seed",
                    "--timing",
                    "--connect-timeout-ms",
                    "--read-timeout-ms",
                ],
            )?;
            let count = parse_flag(rest, "--count")?.unwrap_or(1);
            if count == 0 {
                return Err("--count must be positive".into());
            }
            let (connect_timeout_ms, read_timeout_ms) = parse_timeouts(rest)?;
            Ok(Command::Submit {
                algo,
                size: parse_flag(rest, "--size")?,
                layout: parse_layout(rest)?,
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                count,
                seed: parse_flag(rest, "--seed")?.unwrap_or(crate::RUN_SEED as usize) as u64,
                timing: rest.iter().any(|a| a == "--timing"),
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "loadgen" => {
            let algo = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("loadgen needs an algorithm name")?
                .clone();
            let rest = &args[2..];
            reject_unknown(
                rest,
                &[
                    "--size",
                    "--layout",
                    "--addr",
                    "--clients",
                    "--duration-ms",
                    "--instances",
                    "--seed",
                    "--report",
                    "--drain-after",
                    "--no-timing",
                    "--hot-key",
                    "--connect-timeout-ms",
                    "--read-timeout-ms",
                ],
            )?;
            let clients = parse_flag(rest, "--clients")?.unwrap_or(32);
            let instances = parse_flag(rest, "--instances")?.unwrap_or(1);
            if clients == 0 || instances == 0 {
                return Err("--clients and --instances must be positive".into());
            }
            let (connect_timeout_ms, read_timeout_ms) = parse_timeouts(rest)?;
            Ok(Command::Loadgen {
                algo,
                size: parse_flag(rest, "--size")?,
                layout: parse_layout(rest)?,
                addr: parse_string_flag(rest, "--addr")?.unwrap_or_else(|| DEFAULT_ADDR.into()),
                clients,
                duration_ms: parse_flag(rest, "--duration-ms")?.unwrap_or(5000) as u64,
                instances_per_submit: instances,
                seed: parse_flag(rest, "--seed")?.unwrap_or(crate::RUN_SEED as usize) as u64,
                report: parse_string_flag(rest, "--report")?,
                drain_after: rest.iter().any(|a| a == "--drain-after"),
                timing: !rest.iter().any(|a| a == "--no-timing"),
                hot_key: rest.iter().any(|a| a == "--hot-key"),
                connect_timeout_ms,
                read_timeout_ms,
            })
        }
        "sim" => {
            let rest = &args[1..];
            reject_unknown(
                rest,
                &[
                    "--seeds",
                    "--seed0",
                    "--clients",
                    "--workers",
                    "--jobs",
                    "--replay",
                    "--crash-at",
                    "--conn-faults",
                    "--fsync-errors",
                    "--fsync-fail-at",
                    "--report",
                ],
            )?;
            let seeds = parse_flag(rest, "--seeds")?.unwrap_or(100) as u64;
            let clients = parse_flag(rest, "--clients")?.unwrap_or(3);
            let workers = parse_flag(rest, "--workers")?.unwrap_or(2);
            let jobs = parse_flag(rest, "--jobs")?.unwrap_or(4);
            if seeds == 0 || clients == 0 || workers == 0 || jobs == 0 {
                return Err("--seeds, --clients, --workers and --jobs must be positive".into());
            }
            let replay = parse_flag(rest, "--replay")?.map(|s| s as u64);
            let crash_at = parse_flag(rest, "--crash-at")?.map(|k| k as u64);
            if crash_at.is_some() && replay.is_none() {
                return Err("--crash-at requires --replay".into());
            }
            let fsync_fail_at = parse_flag(rest, "--fsync-fail-at")?.map(|s| s as u64);
            if fsync_fail_at.is_some() && replay.is_none() {
                return Err("--fsync-fail-at requires --replay".into());
            }
            if fsync_fail_at == Some(0) {
                return Err("--fsync-fail-at must be positive (sync attempts are 1-based)".into());
            }
            Ok(Command::Sim {
                seeds,
                seed0: parse_flag(rest, "--seed0")?.unwrap_or(1) as u64,
                clients,
                workers,
                jobs,
                replay,
                crash_at,
                conn_faults: rest.iter().any(|a| a == "--conn-faults"),
                fsync_errors: rest.iter().any(|a| a == "--fsync-errors"),
                fsync_fail_at,
                report: parse_string_flag(rest, "--report")?,
            })
        }
        "trace" | "model" | "run" | "hmm" => {
            let algo = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| format!("{cmd} needs an algorithm name"))?
                .clone();
            let rest = &args[2..];
            match cmd.as_str() {
                "trace" => reject_unknown(rest, &["--size", "--head"])?,
                "model" => reject_unknown(rest, &["--size", "--p", "--width", "--latency"])?,
                "run" => reject_unknown(
                    rest,
                    &[
                        "--size",
                        "--p",
                        "--layout",
                        "--profile",
                        "--trace",
                        "--compiled",
                        "--shards",
                    ],
                )?,
                "hmm" => reject_unknown(rest, &["--size", "--p", "--dmms"])?,
                _ => unreachable!(),
            }
            let size = parse_flag(rest, "--size")?;
            match cmd.as_str() {
                "trace" => Ok(Command::Trace {
                    algo,
                    size,
                    head: parse_flag(rest, "--head")?.unwrap_or(16),
                }),
                "model" => Ok(Command::Model {
                    algo,
                    size,
                    p: parse_flag(rest, "--p")?.unwrap_or(4096),
                    cfg: MachineConfig::new(
                        parse_flag(rest, "--width")?.unwrap_or(32),
                        parse_flag(rest, "--latency")?.unwrap_or(100),
                    ),
                }),
                "run" => {
                    let compiled = rest.iter().any(|a| a == "--compiled");
                    let shards = parse_flag(rest, "--shards")?;
                    if shards.is_some() && !compiled {
                        return Err("--shards requires --compiled".into());
                    }
                    let shards = shards.unwrap_or(1);
                    if shards == 0 {
                        return Err("--shards must be positive".into());
                    }
                    Ok(Command::Run {
                        algo,
                        size,
                        p: parse_flag(rest, "--p")?.unwrap_or(4096),
                        layout: parse_layout(rest)?,
                        profile: parse_string_flag(rest, "--profile")?,
                        trace: parse_string_flag(rest, "--trace")?,
                        compiled,
                        shards,
                    })
                }
                "hmm" => {
                    let dmms = parse_flag(rest, "--dmms")?.unwrap_or(14);
                    if dmms == 0 {
                        return Err("--dmms must be positive".into());
                    }
                    let p = parse_flag(rest, "--p")?.unwrap_or(14 * 64);
                    Ok(Command::Hmm { algo, size, p, dmms })
                }
                _ => unreachable!(),
            }
        }
        other => Err(format!("unknown command '{other}'; try `bulkrun help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn list_and_help() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn trace_with_flags() {
        let c = parse(&argv("trace fft --size 4 --head 8")).unwrap();
        assert_eq!(c, Command::Trace { algo: "fft".into(), size: Some(4), head: 8 });
    }

    #[test]
    fn model_defaults() {
        let c = parse(&argv("model opt")).unwrap();
        assert_eq!(
            c,
            Command::Model {
                algo: "opt".into(),
                size: None,
                p: 4096,
                cfg: MachineConfig::new(32, 100)
            }
        );
    }

    #[test]
    fn run_with_layout() {
        let c = parse(&argv("run prefix-sums --p 128 --layout row")).unwrap();
        match c {
            Command::Run { p, layout, .. } => {
                assert_eq!(p, 128);
                assert_eq!(layout, Layout::RowWise);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_profile_flag() {
        let c = parse(&argv("run opt --p 64 --profile out.json")).unwrap();
        match c {
            Command::Run { profile, .. } => assert_eq!(profile.as_deref(), Some("out.json")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run opt --profile")).is_err());
        assert!(parse(&argv("run opt --profile --p")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn hmm_parses_with_defaults() {
        let c = parse(&argv("hmm opt --size 16")).unwrap();
        assert_eq!(c, Command::Hmm { algo: "opt".into(), size: Some(16), p: 14 * 64, dmms: 14 });
        assert!(parse(&argv("hmm opt --dmms 0")).is_err());
    }

    #[test]
    fn error_messages() {
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("frobnicate")).unwrap_err().contains("unknown command"));
        assert!(parse(&argv("run x --p nope")).unwrap_err().contains("not a number"));
        assert!(parse(&argv("run x --layout diagonal")).unwrap_err().contains("neither"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&argv("run opt --profil x.json")).unwrap_err().contains("--profil"));
        assert!(parse(&argv("model opt --layout row")).unwrap_err().contains("--layout"));
        assert!(parse(&argv("trace fft --p 4")).unwrap_err().contains("--p"));
        assert!(parse(&argv("hmm opt --width 4")).unwrap_err().contains("--width"));
        assert!(parse(&argv("compare a.json b.json --tolerance 5")).is_err());
        assert!(parse(&argv("timeline opt --dmms 2")).is_err());
    }

    #[test]
    fn run_trace_flag() {
        let c = parse(&argv("run opt --p 64 --trace t.json")).unwrap();
        match c {
            Command::Run { trace, .. } => assert_eq!(trace.as_deref(), Some("t.json")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run opt --trace")).is_err());
    }

    #[test]
    fn run_compiled_and_shards() {
        let c = parse(&argv("run prefix-sums --compiled --shards 4")).unwrap();
        match c {
            Command::Run { compiled, shards, .. } => {
                assert!(compiled);
                assert_eq!(shards, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --compiled alone defaults to one shard; plain runs stay on the
        // interpreter.
        match parse(&argv("run opt --compiled")).unwrap() {
            Command::Run { compiled, shards, .. } => {
                assert!(compiled);
                assert_eq!(shards, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("run opt")).unwrap() {
            Command::Run { compiled, shards, .. } => {
                assert!(!compiled);
                assert_eq!(shards, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run opt --shards 2")).unwrap_err().contains("requires --compiled"));
        assert!(parse(&argv("run opt --compiled --shards 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("run opt --compiled --shards x")).is_err());
    }

    #[test]
    fn compare_parses_paths_and_threshold() {
        let c = parse(&argv("compare a.json b.json --threshold 2.5")).unwrap();
        assert_eq!(c, Command::Compare { a: "a.json".into(), b: "b.json".into(), threshold: 2.5 });
        let c = parse(&argv("compare a.json b.json")).unwrap();
        assert_eq!(c, Command::Compare { a: "a.json".into(), b: "b.json".into(), threshold: 0.0 });
        assert!(parse(&argv("compare a.json")).is_err());
        assert!(parse(&argv("compare a.json b.json --threshold -1")).is_err());
        assert!(parse(&argv("compare a.json b.json --threshold nope")).is_err());
    }

    #[test]
    fn serve_parses_with_defaults() {
        let c = parse(&argv("serve")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: DEFAULT_ADDR.into(),
                node_id: None,
                workers: 4,
                max_batch: 256,
                max_queue: 4096,
                flush_after_ms: 5,
                shards: 1,
                trace: None,
                wal_dir: None,
                fsync: FsyncPolicy::Always,
                wal_segment_bytes: 4 << 20,
                recorder: None,
                instrument: true,
                replicate_to: None,
            }
        );
        let c = parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 2 --max-batch 64 --max-queue 128 \
             --flush-after-ms 20 --shards 3 --trace t.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                node_id: None,
                workers: 2,
                max_batch: 64,
                max_queue: 128,
                flush_after_ms: 20,
                shards: 3,
                trace: Some("t.json".into()),
                wal_dir: None,
                fsync: FsyncPolicy::Always,
                wal_segment_bytes: 4 << 20,
                recorder: None,
                instrument: true,
                replicate_to: None,
            }
        );
        assert!(parse(&argv("serve --workers 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("serve --max-batch 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("serve --p 4")).unwrap_err().contains("--p"));
    }

    #[test]
    fn serve_wal_flags() {
        let c =
            parse(&argv("serve --wal-dir /tmp/wal --fsync every-n=64 --wal-segment-bytes 1024"))
                .unwrap();
        match c {
            Command::Serve { wal_dir, fsync, wal_segment_bytes, .. } => {
                assert_eq!(wal_dir.as_deref(), Some("/tmp/wal"));
                assert_eq!(fsync, FsyncPolicy::EveryN(64));
                assert_eq!(wal_segment_bytes, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("serve --wal-dir d")).unwrap() {
            Command::Serve { fsync, .. } => assert_eq!(fsync, FsyncPolicy::Always),
            other => panic!("unexpected {other:?}"),
        }
        // WAL tuning flags without a WAL are a mistake, not a no-op.
        assert!(parse(&argv("serve --fsync always")).unwrap_err().contains("--wal-dir"));
        assert!(parse(&argv("serve --wal-segment-bytes 64")).unwrap_err().contains("--wal-dir"));
        assert!(parse(&argv("serve --wal-dir d --fsync never")).unwrap_err().contains("--fsync"));
        assert!(parse(&argv("serve --wal-dir d --wal-segment-bytes 0"))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn drain_parses() {
        assert_eq!(
            parse(&argv("drain")).unwrap(),
            Command::Drain {
                addr: DEFAULT_ADDR.into(),
                connect_timeout_ms: None,
                read_timeout_ms: None
            }
        );
        assert_eq!(
            parse(&argv(
                "drain --addr 127.0.0.1:9 --connect-timeout-ms 500 --read-timeout-ms 9000"
            ))
            .unwrap(),
            Command::Drain {
                addr: "127.0.0.1:9".into(),
                connect_timeout_ms: Some(500),
                read_timeout_ms: Some(9000)
            }
        );
        assert!(parse(&argv("drain --p 4")).unwrap_err().contains("--p"));
        assert!(parse(&argv("drain --connect-timeout-ms 0")).unwrap_err().contains("positive"));
    }

    #[test]
    fn metrics_and_dump_parse() {
        assert_eq!(
            parse(&argv("metrics")).unwrap(),
            Command::Metrics {
                addr: DEFAULT_ADDR.into(),
                connect_timeout_ms: None,
                read_timeout_ms: None
            }
        );
        assert_eq!(
            parse(&argv("metrics --addr 127.0.0.1:9 --read-timeout-ms 2000")).unwrap(),
            Command::Metrics {
                addr: "127.0.0.1:9".into(),
                connect_timeout_ms: None,
                read_timeout_ms: Some(2000)
            }
        );
        assert_eq!(
            parse(&argv("dump")).unwrap(),
            Command::Dump {
                addr: DEFAULT_ADDR.into(),
                connect_timeout_ms: None,
                read_timeout_ms: None
            }
        );
        assert_eq!(
            parse(&argv("dump --addr 127.0.0.1:9 --connect-timeout-ms 250")).unwrap(),
            Command::Dump {
                addr: "127.0.0.1:9".into(),
                connect_timeout_ms: Some(250),
                read_timeout_ms: None
            }
        );
        assert!(parse(&argv("metrics --p 4")).unwrap_err().contains("--p"));
        assert!(parse(&argv("dump --p 4")).unwrap_err().contains("--p"));
        assert!(parse(&argv("metrics --read-timeout-ms 0")).unwrap_err().contains("positive"));
    }

    #[test]
    fn route_parses_with_defaults() {
        let c = parse(&argv("route --backends n1=127.0.0.1:7070,n2=127.0.0.1:7071")).unwrap();
        assert_eq!(
            c,
            Command::Route {
                addr: DEFAULT_ROUTER_ADDR.into(),
                backends: vec![
                    router::Backend { id: "n1".into(), addr: "127.0.0.1:7070".into() },
                    router::Backend { id: "n2".into(), addr: "127.0.0.1:7071".into() },
                ],
                standbys: vec![],
                vnodes: 64,
                probe_interval_ms: 500,
                probe_timeout_ms: 250,
                down_after: 3,
                up_after: 2,
                connect_timeout_ms: 1000,
                read_timeout_ms: 30_000,
            }
        );
        let c = parse(&argv(
            "route --backends a=h:1 --addr 127.0.0.1:0 --vnodes 16 --probe-interval-ms 100 \
             --probe-timeout-ms 50 --down-after 2 --up-after 1 --connect-timeout-ms 200 \
             --read-timeout-ms 5000",
        ))
        .unwrap();
        match c {
            Command::Route { addr, vnodes, probe_interval_ms, down_after, up_after, .. } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!((vnodes, probe_interval_ms), (16, 100));
                assert_eq!((down_after, up_after), (2, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn route_rejects_degenerate_flags() {
        assert!(parse(&argv("route")).unwrap_err().contains("--backends"));
        assert!(parse(&argv("route --backends n1=a,n1=b")).unwrap_err().contains("duplicate"));
        assert!(parse(&argv("route --backends n1=a --vnodes 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("route --backends n1=a --down-after 0"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("route --backends n1=a --p 4")).unwrap_err().contains("--p"));
    }

    #[test]
    fn route_standbys_must_shadow_backend_ids() {
        match parse(&argv("route --backends n1=h:1,n2=h:2 --standbys n2=h:9")).unwrap() {
            Command::Route { standbys, .. } => {
                assert_eq!(standbys, vec![router::Backend { id: "n2".into(), addr: "h:9".into() }]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("route --backends n1=h:1 --standbys n9=h:9")).unwrap_err();
        assert!(err.contains("n9") && err.contains("names no backend id"), "{err}");
    }

    #[test]
    fn serve_replicate_to_requires_wal_dir() {
        match parse(&argv("serve --wal-dir /tmp/w --replicate-to 127.0.0.1:0")).unwrap() {
            Command::Serve { replicate_to, wal_dir, .. } => {
                assert_eq!(replicate_to.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(wal_dir.as_deref(), Some("/tmp/w"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&argv("serve --replicate-to 127.0.0.1:0")).unwrap_err();
        assert!(err.contains("--wal-dir"), "{err}");
    }

    #[test]
    fn standby_parses_with_defaults_and_requires_follow_and_wal_dir() {
        let c = parse(&argv("standby --follow 127.0.0.1:9001 --wal-dir /tmp/s")).unwrap();
        assert_eq!(
            c,
            Command::Standby {
                addr: DEFAULT_ADDR.into(),
                node_id: None,
                follow: "127.0.0.1:9001".into(),
                wal_dir: "/tmp/s".into(),
                wal_segment_bytes: 4 << 20,
                reconnect_ms: 100,
                workers: 4,
                max_batch: 256,
                max_queue: 4096,
                flush_after_ms: 5,
                shards: 1,
            }
        );
        match parse(&argv(
            "standby --follow h:1 --wal-dir /tmp/s --addr 127.0.0.1:0 --node-id s1 \
             --reconnect-ms 20 --workers 2 --shards 2",
        ))
        .unwrap()
        {
            Command::Standby { addr, node_id, reconnect_ms, workers, shards, .. } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(node_id.as_deref(), Some("s1"));
                assert_eq!((reconnect_ms, workers, shards), (20, 2, 2));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("standby --wal-dir /tmp/s")).unwrap_err().contains("--follow"));
        assert!(parse(&argv("standby --follow h:1")).unwrap_err().contains("--wal-dir"));
        assert!(parse(&argv("standby --follow h:1 --wal-dir /tmp/s --workers 0"))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn promote_parses() {
        let c = parse(&argv("promote")).unwrap();
        assert_eq!(
            c,
            Command::Promote {
                addr: DEFAULT_ADDR.into(),
                connect_timeout_ms: None,
                read_timeout_ms: None,
            }
        );
        match parse(&argv("promote --addr h:2 --connect-timeout-ms 100")).unwrap() {
            Command::Promote { addr, connect_timeout_ms, .. } => {
                assert_eq!(addr, "h:2");
                assert_eq!(connect_timeout_ms, Some(100));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_recorder_and_instrument_flags() {
        match parse(&argv("serve --recorder /tmp/flight.json --no-instrument")).unwrap() {
            Command::Serve { recorder, instrument, .. } => {
                assert_eq!(recorder.as_deref(), Some("/tmp/flight.json"));
                assert!(!instrument);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("serve --recorder")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn submit_parses_with_defaults() {
        let c = parse(&argv("submit prefix-sums")).unwrap();
        assert_eq!(
            c,
            Command::Submit {
                algo: "prefix-sums".into(),
                size: None,
                layout: Layout::ColumnWise,
                addr: DEFAULT_ADDR.into(),
                count: 1,
                seed: crate::RUN_SEED,
                timing: false,
                connect_timeout_ms: None,
                read_timeout_ms: None,
            }
        );
        let c =
            parse(&argv("submit fir --size 16 --layout row --count 8 --seed 7 --timing")).unwrap();
        match c {
            Command::Submit { size, layout, count, seed, timing, .. } => {
                assert_eq!((size, layout, count, seed), (Some(16), Layout::RowWise, 8, 7));
                assert!(timing);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("submit")).is_err());
        assert!(parse(&argv("submit opt --count 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("submit opt --p 4")).unwrap_err().contains("--p"));
    }

    #[test]
    fn loadgen_parses_with_defaults() {
        let c = parse(&argv("loadgen xtea")).unwrap();
        assert_eq!(
            c,
            Command::Loadgen {
                algo: "xtea".into(),
                size: None,
                layout: Layout::ColumnWise,
                addr: DEFAULT_ADDR.into(),
                clients: 32,
                duration_ms: 5000,
                instances_per_submit: 1,
                seed: crate::RUN_SEED,
                report: None,
                drain_after: false,
                timing: true,
                hot_key: false,
                connect_timeout_ms: None,
                read_timeout_ms: None,
            }
        );
        let c = parse(&argv(
            "loadgen opt --size 8 --clients 4 --duration-ms 250 --instances 2 --seed 99 \
             --report r.json --drain-after --no-timing --hot-key",
        ))
        .unwrap();
        match c {
            Command::Loadgen {
                clients,
                duration_ms,
                instances_per_submit,
                seed,
                report,
                drain_after,
                timing,
                hot_key,
                ..
            } => {
                assert_eq!((clients, duration_ms, instances_per_submit, seed), (4, 250, 2, 99));
                assert_eq!(report.as_deref(), Some("r.json"));
                assert!(drain_after);
                assert!(!timing, "--no-timing must turn the per-stage echo off");
                assert!(hot_key);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("loadgen")).is_err());
        assert!(parse(&argv("loadgen opt --clients 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("loadgen opt --drain 1")).unwrap_err().contains("--drain"));
    }

    #[test]
    fn sim_parses_with_defaults() {
        let c = parse(&argv("sim")).unwrap();
        assert_eq!(
            c,
            Command::Sim {
                seeds: 100,
                seed0: 1,
                clients: 3,
                workers: 2,
                jobs: 4,
                replay: None,
                crash_at: None,
                conn_faults: false,
                fsync_errors: false,
                fsync_fail_at: None,
                report: None,
            }
        );
        let c = parse(&argv(
            "sim --seeds 1000 --seed0 50 --clients 5 --workers 3 --jobs 6 --report s.json",
        ))
        .unwrap();
        match c {
            Command::Sim { seeds, seed0, clients, workers, jobs, report, .. } => {
                assert_eq!((seeds, seed0, clients, workers, jobs), (1000, 50, 5, 3, 6));
                assert_eq!(report.as_deref(), Some("s.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let c = parse(&argv("sim --replay 77 --crash-at 3")).unwrap();
        match c {
            Command::Sim { replay, crash_at, .. } => {
                assert_eq!((replay, crash_at), (Some(77), Some(3)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let c = parse(&argv("sim --conn-faults --fsync-errors")).unwrap();
        match c {
            Command::Sim { conn_faults, fsync_errors, fsync_fail_at, .. } => {
                assert!(conn_faults && fsync_errors);
                assert_eq!(fsync_fail_at, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let c = parse(&argv("sim --replay 5 --fsync-fail-at 2 --conn-faults")).unwrap();
        match c {
            Command::Sim { replay, fsync_fail_at, conn_faults, .. } => {
                assert_eq!((replay, fsync_fail_at), (Some(5), Some(2)));
                assert!(conn_faults);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("sim --seeds 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("sim --crash-at 2")).unwrap_err().contains("--replay"));
        assert!(parse(&argv("sim --fsync-fail-at 2")).unwrap_err().contains("--replay"));
        assert!(parse(&argv("sim --replay 1 --fsync-fail-at 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("sim --seedz 9")).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn timeline_parses_with_defaults() {
        let c = parse(&argv("timeline prefix-sums")).unwrap();
        assert_eq!(
            c,
            Command::Timeline {
                algo: "prefix-sums".into(),
                size: None,
                p: 128,
                layout: Layout::ColumnWise,
                cfg: MachineConfig::new(32, 8),
                cols: 72,
            }
        );
        let c = parse(&argv("timeline fft --size 4 --p 64 --latency 5 --cols 40")).unwrap();
        match c {
            Command::Timeline { p, cfg, cols, .. } => {
                assert_eq!((p, cfg.latency, cols), (64, 5, 40));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("timeline")).is_err());
    }
}
