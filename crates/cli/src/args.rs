//! Minimal dependency-free argument parsing for `bulkrun`.

use oblivious::Layout;
use umm_core::MachineConfig;

/// A parsed `bulkrun` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bulkrun list`
    List,
    /// `bulkrun trace <algo> [--size N] [--head K]`
    Trace {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// How many steps to print.
        head: usize,
    },
    /// `bulkrun model <algo> [--size N] [--p P] [--width W] [--latency L]`
    Model {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Machine parameters.
        cfg: MachineConfig,
    },
    /// `bulkrun run <algo> [--size N] [--p P] [--layout row|col]
    /// [--profile PATH]`
    Run {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Arrangement.
        layout: Layout,
        /// Write a JSON `RunReport` (model profile + device scheduler
        /// profile) to this path.
        profile: Option<String>,
        /// Write a Chrome Trace Event Format JSON timeline (engine, UMM,
        /// DMM and device processes) to this path.
        trace: Option<String>,
        /// Execute through a compiled schedule (one dry run, replayed)
        /// instead of re-interpreting the program.
        compiled: bool,
        /// Number of instance shards replayed on separate threads
        /// (`--compiled` only).
        shards: usize,
    },
    /// `bulkrun timeline <algo> [--size N] [--p P] [--layout row|col]
    /// [--width W] [--latency L] [--cols C]`
    Timeline {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Arrangement.
        layout: Layout,
        /// Machine parameters.
        cfg: MachineConfig,
        /// Terminal columns for the time axis.
        cols: usize,
    },
    /// `bulkrun compare <a.json> <b.json> [--threshold PCT]`
    Compare {
        /// Baseline report path.
        a: String,
        /// Candidate report path.
        b: String,
        /// Relative tolerance for gated metrics, in percent.
        threshold: f64,
    },
    /// `bulkrun hmm <algo> [--size N] [--p P] [--dmms D]`
    Hmm {
        /// Algorithm name.
        algo: String,
        /// Size parameter.
        size: Option<usize>,
        /// Bulk size.
        p: usize,
        /// Number of DMMs (streaming multiprocessors).
        dmms: usize,
    },
    /// `bulkrun help`
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
bulkrun — bulk execution of oblivious algorithms (UMM reproduction)

USAGE:
  bulkrun list                                   catalog of algorithms
  bulkrun trace <algo> [--size N] [--head K]     show the address function a(t)
  bulkrun model <algo> [--size N] [--p P]        UMM/DMM model times
                       [--width W] [--latency L]
  bulkrun run   <algo> [--size N] [--p P]        bulk-execute random instances
                       [--layout row|col]
                       [--profile PATH]          write a JSON RunReport
                                                 (model rounds + histogram,
                                                 device worker/block timings)
                       [--trace PATH]            write a Chrome-trace timeline
                                                 (open in Perfetto / about:tracing)
                       [--compiled]              replay a compiled schedule
                                                 instead of re-interpreting
                       [--shards N]              split instances over N threads
                                                 (requires --compiled)
  bulkrun timeline <algo> [--size N] [--p P]     plain-terminal warp timeline
                       [--layout row|col]        of the UMM model simulation
                       [--width W] [--latency L]
                       [--cols C]
  bulkrun compare <a.json> <b.json>              diff two RunReports; exits
                       [--threshold PCT]         non-zero on regression beyond
                                                 the tolerance (default 0%)
  bulkrun hmm   <algo> [--size N] [--p P]        shared-memory staging analysis
                       [--dmms D]
  bulkrun help

Defaults: p = 4096, width = 32, latency = 100, layout = col.
Timeline defaults: p = 128, latency = 8, cols = 72 (small enough to read).
";

fn parse_flag(args: &[String], flag: &str) -> Result<Option<usize>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            return v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("{flag}: '{v}' is not a number"));
        }
    }
    Ok(None)
}

fn parse_f64_flag(args: &[String], flag: &str) -> Result<Option<f64>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            let x = v.parse::<f64>().map_err(|_| format!("{flag}: '{v}' is not a number"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("{flag} must be a non-negative number, got '{v}'"));
            }
            return Ok(Some(x));
        }
    }
    Ok(None)
}

fn parse_string_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            if v.starts_with("--") {
                return Err(format!("{flag} needs a value, got flag '{v}'"));
            }
            return Ok(Some(v.clone()));
        }
    }
    Ok(None)
}

/// Reject any `--flag` token the subcommand does not know — a typo'd
/// `--profil` must error, not silently run without its effect.
fn reject_unknown(args: &[String], allowed: &[&str]) -> Result<(), String> {
    for a in args {
        if a.starts_with("--") && !allowed.contains(&a.as_str()) {
            return Err(format!("unknown flag '{a}'; try `bulkrun help`"));
        }
    }
    Ok(())
}

fn parse_layout(args: &[String]) -> Result<Layout, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--layout" {
            let v = args.get(i + 1).ok_or("--layout needs a value")?;
            return match v.as_str() {
                "row" | "row-wise" => Ok(Layout::RowWise),
                "col" | "column" | "column-wise" => Ok(Layout::ColumnWise),
                other => Err(format!("--layout: '{other}' is neither row nor col")),
            };
        }
    }
    Ok(Layout::ColumnWise)
}

/// Parse a full argument vector (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "compare" => {
            let a = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("compare needs two report paths")?
                .clone();
            let b = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or("compare needs two report paths")?
                .clone();
            let rest = &args[3..];
            reject_unknown(rest, &["--threshold"])?;
            let threshold = parse_f64_flag(rest, "--threshold")?.unwrap_or(0.0);
            Ok(Command::Compare { a, b, threshold })
        }
        "timeline" => {
            let algo = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("timeline needs an algorithm name")?
                .clone();
            let rest = &args[2..];
            reject_unknown(rest, &["--size", "--p", "--layout", "--width", "--latency", "--cols"])?;
            Ok(Command::Timeline {
                algo,
                size: parse_flag(rest, "--size")?,
                p: parse_flag(rest, "--p")?.unwrap_or(128),
                layout: parse_layout(rest)?,
                cfg: MachineConfig::new(
                    parse_flag(rest, "--width")?.unwrap_or(32),
                    parse_flag(rest, "--latency")?.unwrap_or(8),
                ),
                cols: parse_flag(rest, "--cols")?.unwrap_or(72),
            })
        }
        "trace" | "model" | "run" | "hmm" => {
            let algo = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| format!("{cmd} needs an algorithm name"))?
                .clone();
            let rest = &args[2..];
            match cmd.as_str() {
                "trace" => reject_unknown(rest, &["--size", "--head"])?,
                "model" => reject_unknown(rest, &["--size", "--p", "--width", "--latency"])?,
                "run" => reject_unknown(
                    rest,
                    &[
                        "--size",
                        "--p",
                        "--layout",
                        "--profile",
                        "--trace",
                        "--compiled",
                        "--shards",
                    ],
                )?,
                "hmm" => reject_unknown(rest, &["--size", "--p", "--dmms"])?,
                _ => unreachable!(),
            }
            let size = parse_flag(rest, "--size")?;
            match cmd.as_str() {
                "trace" => Ok(Command::Trace {
                    algo,
                    size,
                    head: parse_flag(rest, "--head")?.unwrap_or(16),
                }),
                "model" => Ok(Command::Model {
                    algo,
                    size,
                    p: parse_flag(rest, "--p")?.unwrap_or(4096),
                    cfg: MachineConfig::new(
                        parse_flag(rest, "--width")?.unwrap_or(32),
                        parse_flag(rest, "--latency")?.unwrap_or(100),
                    ),
                }),
                "run" => {
                    let compiled = rest.iter().any(|a| a == "--compiled");
                    let shards = parse_flag(rest, "--shards")?;
                    if shards.is_some() && !compiled {
                        return Err("--shards requires --compiled".into());
                    }
                    let shards = shards.unwrap_or(1);
                    if shards == 0 {
                        return Err("--shards must be positive".into());
                    }
                    Ok(Command::Run {
                        algo,
                        size,
                        p: parse_flag(rest, "--p")?.unwrap_or(4096),
                        layout: parse_layout(rest)?,
                        profile: parse_string_flag(rest, "--profile")?,
                        trace: parse_string_flag(rest, "--trace")?,
                        compiled,
                        shards,
                    })
                }
                "hmm" => {
                    let dmms = parse_flag(rest, "--dmms")?.unwrap_or(14);
                    if dmms == 0 {
                        return Err("--dmms must be positive".into());
                    }
                    let p = parse_flag(rest, "--p")?.unwrap_or(14 * 64);
                    Ok(Command::Hmm { algo, size, p, dmms })
                }
                _ => unreachable!(),
            }
        }
        other => Err(format!("unknown command '{other}'; try `bulkrun help`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn list_and_help() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn trace_with_flags() {
        let c = parse(&argv("trace fft --size 4 --head 8")).unwrap();
        assert_eq!(c, Command::Trace { algo: "fft".into(), size: Some(4), head: 8 });
    }

    #[test]
    fn model_defaults() {
        let c = parse(&argv("model opt")).unwrap();
        assert_eq!(
            c,
            Command::Model {
                algo: "opt".into(),
                size: None,
                p: 4096,
                cfg: MachineConfig::new(32, 100)
            }
        );
    }

    #[test]
    fn run_with_layout() {
        let c = parse(&argv("run prefix-sums --p 128 --layout row")).unwrap();
        match c {
            Command::Run { p, layout, .. } => {
                assert_eq!(p, 128);
                assert_eq!(layout, Layout::RowWise);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_profile_flag() {
        let c = parse(&argv("run opt --p 64 --profile out.json")).unwrap();
        match c {
            Command::Run { profile, .. } => assert_eq!(profile.as_deref(), Some("out.json")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run opt --profile")).is_err());
        assert!(parse(&argv("run opt --profile --p")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn hmm_parses_with_defaults() {
        let c = parse(&argv("hmm opt --size 16")).unwrap();
        assert_eq!(c, Command::Hmm { algo: "opt".into(), size: Some(16), p: 14 * 64, dmms: 14 });
        assert!(parse(&argv("hmm opt --dmms 0")).is_err());
    }

    #[test]
    fn error_messages() {
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("frobnicate")).unwrap_err().contains("unknown command"));
        assert!(parse(&argv("run x --p nope")).unwrap_err().contains("not a number"));
        assert!(parse(&argv("run x --layout diagonal")).unwrap_err().contains("neither"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&argv("run opt --profil x.json")).unwrap_err().contains("--profil"));
        assert!(parse(&argv("model opt --layout row")).unwrap_err().contains("--layout"));
        assert!(parse(&argv("trace fft --p 4")).unwrap_err().contains("--p"));
        assert!(parse(&argv("hmm opt --width 4")).unwrap_err().contains("--width"));
        assert!(parse(&argv("compare a.json b.json --tolerance 5")).is_err());
        assert!(parse(&argv("timeline opt --dmms 2")).is_err());
    }

    #[test]
    fn run_trace_flag() {
        let c = parse(&argv("run opt --p 64 --trace t.json")).unwrap();
        match c {
            Command::Run { trace, .. } => assert_eq!(trace.as_deref(), Some("t.json")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run opt --trace")).is_err());
    }

    #[test]
    fn run_compiled_and_shards() {
        let c = parse(&argv("run prefix-sums --compiled --shards 4")).unwrap();
        match c {
            Command::Run { compiled, shards, .. } => {
                assert!(compiled);
                assert_eq!(shards, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --compiled alone defaults to one shard; plain runs stay on the
        // interpreter.
        match parse(&argv("run opt --compiled")).unwrap() {
            Command::Run { compiled, shards, .. } => {
                assert!(compiled);
                assert_eq!(shards, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("run opt")).unwrap() {
            Command::Run { compiled, shards, .. } => {
                assert!(!compiled);
                assert_eq!(shards, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run opt --shards 2")).unwrap_err().contains("requires --compiled"));
        assert!(parse(&argv("run opt --compiled --shards 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("run opt --compiled --shards x")).is_err());
    }

    #[test]
    fn compare_parses_paths_and_threshold() {
        let c = parse(&argv("compare a.json b.json --threshold 2.5")).unwrap();
        assert_eq!(c, Command::Compare { a: "a.json".into(), b: "b.json".into(), threshold: 2.5 });
        let c = parse(&argv("compare a.json b.json")).unwrap();
        assert_eq!(c, Command::Compare { a: "a.json".into(), b: "b.json".into(), threshold: 0.0 });
        assert!(parse(&argv("compare a.json")).is_err());
        assert!(parse(&argv("compare a.json b.json --threshold -1")).is_err());
        assert!(parse(&argv("compare a.json b.json --threshold nope")).is_err());
    }

    #[test]
    fn timeline_parses_with_defaults() {
        let c = parse(&argv("timeline prefix-sums")).unwrap();
        assert_eq!(
            c,
            Command::Timeline {
                algo: "prefix-sums".into(),
                size: None,
                p: 128,
                layout: Layout::ColumnWise,
                cfg: MachineConfig::new(32, 8),
                cols: 72,
            }
        );
        let c = parse(&argv("timeline fft --size 4 --p 64 --latency 5 --cols 40")).unwrap();
        match c {
            Command::Timeline { p, cfg, cols, .. } => {
                assert_eq!((p, cfg.latency, cols), (64, 5, 40));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("timeline")).is_err());
    }
}
