//! # cli — the `bulkrun` command-line driver
//!
//! Name-addressable access to the algorithm library: list programs, dump
//! their address functions, price bulk executions on the UMM/DMM, and run
//! them on the generic engine.  Logic lives in the library so it is unit-
//! testable; `main.rs` is a thin shell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod registry;
pub mod serve;

use args::Command;
use gpu_sim::Device;
use oblivious::{theorems, Layout, Model};
use obs::RunReport;
use registry::{Algo, CATALOG};
use umm_core::MachineConfig;

/// The seed every `bulkrun run` invocation uses for input generation —
/// fixed so reports and differential runs are reproducible.
pub const RUN_SEED: u64 = 0xB01D_FACE;

/// Write `text` to `path`, creating missing parent directories first, with
/// error messages that name both the path and the failing operation.
fn write_text(kind: &str, path: &str, text: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| {
            format!("cannot create directory {} for {kind} {path}: {e}", dir.display())
        })?;
    }
    std::fs::write(p, text).map_err(|e| format!("cannot write {kind} to {path}: {e}"))
}

/// Build a [`bulkd::ClientConfig`] from the optional per-command timeout
/// flags (`None` keeps the blocking defaults).
fn client_cfg(
    connect_timeout_ms: Option<u64>,
    read_timeout_ms: Option<u64>,
) -> bulkd::ClientConfig {
    bulkd::ClientConfig {
        connect_timeout: connect_timeout_ms.map(std::time::Duration::from_millis),
        read_timeout: read_timeout_ms.map(std::time::Duration::from_millis),
    }
}

/// Read and parse a JSON report for `bulkrun compare`.
fn read_report(path: &str) -> Result<obs::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    obs::Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Assemble the full profiling [`RunReport`] for one bulk run: engine
/// port-traffic metrics, the profiled UMM/DMM model simulation (round
/// counts, address-group histogram, stall accounting), and the SIMT
/// device's scheduler profile (per-worker block counts and timings).
///
/// With `compiled`, the engine metrics come from a compiled-schedule
/// replay and the model section is priced through the schedule's cost
/// table.  Every deterministic leaf — key structure included — is
/// bit-identical to the interpreter-mode report, so compiled and
/// interpreter reports can be gated against each other with
/// `bulkrun compare`.
#[must_use]
pub fn run_report(
    algo: &Algo,
    p: usize,
    layout: Layout,
    seed: u64,
    wall_seconds: f64,
    compiled: bool,
) -> RunReport {
    let cfg = MachineConfig::new(32, 100);
    let mut report = RunReport::new("bulkrun run");
    let mut algo_json = obs::Json::obj();
    algo_json.set("name", algo.display_name());
    algo_json.set("memory_words", algo.memory_words());
    algo_json.set("time_steps", algo.time_steps());
    report.set("algo", algo_json);
    let mut params = obs::Json::obj();
    params.set("p", p);
    params.set("layout", format!("{layout}"));
    params.set("seed", seed as i64);
    report.set("params", params);
    report.set("wall_seconds", wall_seconds);
    let engine_metrics = if compiled {
        algo.bulk_metrics_compiled(p, layout, seed)
    } else {
        algo.bulk_metrics(p, layout, seed)
    };
    report.set("engine", engine_metrics.to_json());
    report.set("model", algo.model_profile_json(cfg, layout, p, compiled));
    report.set("device", algo.device_profile_json(&Device::titan_like(), p, layout, seed));
    report
}

/// Execute a parsed command, writing human output to the returned string.
pub fn execute(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(args::USAGE),
        Command::List => {
            out.push_str(&format!("{:<16} {:>8}  description\n", "name", "default"));
            for (name, default, desc) in CATALOG {
                out.push_str(&format!("{name:<16} {default:>8}  {desc}\n"));
            }
        }
        Command::Trace { algo, size, head } => {
            let a = Algo::parse(algo, *size)?;
            let trace = a.trace();
            out.push_str(&format!(
                "{}: t = {} memory steps over {} words\n",
                a.display_name(),
                trace.len(),
                a.memory_words()
            ));
            for (i, step) in trace.steps().iter().take(*head).enumerate() {
                out.push_str(&format!("  a({i}) = {step:?}\n"));
            }
            if trace.len() > *head {
                out.push_str(&format!("  … {} more steps\n", trace.len() - head));
            }
        }
        Command::Model { algo, size, p, cfg } => {
            let a = Algo::parse(algo, *size)?;
            let t = a.time_steps() as u64;
            out.push_str(&format!(
                "{} on UMM(w={}, l={}), p = {p}:\n",
                a.display_name(),
                cfg.width,
                cfg.latency
            ));
            let row = a.model_time(*cfg, Model::Umm, Layout::RowWise, *p);
            let col = a.model_time(*cfg, Model::Umm, Layout::ColumnWise, *p);
            let lb = theorems::lower_bound(t, *p as u64, cfg.width as u64, cfg.latency as u64);
            out.push_str(&format!("  row-wise     : {row} time units\n"));
            out.push_str(&format!(
                "  column-wise  : {col} time units ({:.2}x faster)\n",
                row as f64 / col as f64
            ));
            out.push_str(&format!(
                "  lower bound  : {lb} (Theorem 3; column-wise is within {:.2}x)\n",
                col as f64 / lb as f64
            ));
            let drow = a.model_time(*cfg, Model::Dmm, Layout::RowWise, *p);
            let dcol = a.model_time(*cfg, Model::Dmm, Layout::ColumnWise, *p);
            out.push_str(&format!("  DMM row/col  : {drow} / {dcol} (bank-conflict cost)\n"));
        }
        Command::Hmm { algo, size, p, dmms } => {
            let a = Algo::parse(algo, *size)?;
            let mut p = *p;
            if p % dmms != 0 {
                p = (p / dmms + 1) * dmms; // round up to a DMM multiple
            }
            let hmm = umm_core::HmmConfig::new(
                *dmms,
                umm_core::MachineConfig::sm_shared(),
                umm_core::MachineConfig::titan_global(),
            );
            let c = a.hmm_cost(&hmm, p);
            out.push_str(&format!(
                "{} on HMM({} DMMs, shared w={} l={}, global w={} l={}), p = {p}:\n",
                a.display_name(),
                dmms,
                hmm.shared.width,
                hmm.shared.latency,
                hmm.global.width,
                hmm.global.latency
            ));
            out.push_str(&format!("  all-global : {} time units\n", c.all_global));
            out.push_str(&format!(
                "  staged     : {} time units (load {} + compute {} + store {})\n",
                c.staged, c.load, c.compute, c.store
            ));
            out.push_str(&format!(
                "  verdict    : {} by {:.2}x; staging needs {} shared words per DMM\n",
                if c.staging_wins() { "stage into shared memory" } else { "stay in global memory" },
                c.advantage(),
                a.memory_words() * (p / dmms),
            ));
        }
        Command::Run { algo, size, p, layout, profile, trace, compiled, shards } => {
            let a = Algo::parse(algo, *size)?;
            let engine_desc = if *compiled {
                format!("compiled schedule, {shards} shard(s)")
            } else {
                "interpreter".to_string()
            };
            out.push_str(&format!(
                "bulk-executing {} for p = {p} instances, {layout} ({engine_desc}) …\n",
                a.display_name()
            ));
            let secs = if *compiled {
                a.run_bulk_compiled(*p, *layout, RUN_SEED, *shards)
            } else {
                a.run_bulk(*p, *layout, RUN_SEED)
            };
            out.push_str(&format!(
                "  wall clock: {}  ({} per instance)\n",
                analytic::format_value(secs),
                analytic::format_value(secs / *p as f64)
            ));
            if let Some(path) = profile {
                let report = run_report(&a, *p, *layout, RUN_SEED, secs, *compiled);
                report
                    .write_to(std::path::Path::new(path))
                    .map_err(|e| format!("cannot write profile to {path}: {e}"))?;
                out.push_str(&format!("  profile   : wrote {path}\n"));
            }
            if let Some(path) = trace {
                let cfg = MachineConfig::new(32, 100);
                let b = a.trace_bundle(cfg, &Device::titan_like(), *p, *layout, RUN_SEED);
                let chrome = obs::trace::chrome_trace(&[
                    ("engine", &b.engine),
                    ("model.umm", &b.umm),
                    ("model.dmm", &b.dmm),
                    ("device", &b.device),
                ]);
                write_text("trace", path, &chrome.to_compact())?;
                let dropped: u64 =
                    [&b.engine, &b.umm, &b.dmm, &b.device].iter().map(|t| t.dropped()).sum();
                out.push_str(&format!("  trace     : wrote {path}"));
                if dropped > 0 {
                    out.push_str(&format!(" ({dropped} events dropped; ring buffer full)"));
                }
                out.push('\n');
            }
        }
        Command::Timeline { algo, size, p, layout, cfg, cols } => {
            let a = Algo::parse(algo, *size)?;
            let t = a.umm_timeline(*cfg, *layout, *p);
            out.push_str(&format!(
                "{} on UMM(w={}, l={}), p = {p}, {layout} — warp occupancy:\n",
                a.display_name(),
                cfg.width,
                cfg.latency
            ));
            out.push_str(&obs::trace::ascii_timeline(&t, &t.tracks(), *cols));
            if t.dropped() > 0 {
                out.push_str(&format!(
                    "({} events dropped; view truncated — lower --p or --size)\n",
                    t.dropped()
                ));
            }
        }
        Command::Serve {
            addr,
            node_id,
            workers,
            max_batch,
            max_queue,
            flush_after_ms,
            shards,
            trace,
            wal_dir,
            fsync,
            wal_segment_bytes,
            recorder,
            instrument,
            replicate_to,
        } => {
            let executor = serve::CatalogExecutor::new(*shards);
            let mut cfg = bulkd::ServerConfig {
                addr: addr.clone(),
                node_id: node_id.clone(),
                workers: *workers,
                max_batch: *max_batch,
                max_queue: *max_queue,
                flush_after_ms: *flush_after_ms,
                trace_path: trace.as_ref().map(std::path::PathBuf::from),
                wal: wal_dir.as_ref().map(|dir| bulkd::JournalConfig {
                    dir: std::path::PathBuf::from(dir),
                    fsync: *fsync,
                    segment_bytes: *wal_segment_bytes,
                }),
                instrument: *instrument,
                recorder_path: recorder.as_ref().map(std::path::PathBuf::from),
                repl: None,
                promoted: false,
            };
            let snapshot = if let Some(repl_listen) = replicate_to {
                // Replication needs the serving address *before* the
                // server starts (WELCOME advertises it as the standby's
                // `leader_hint`), so bind the listener here and hand it
                // to the server rather than letting `serve` bind.
                let listener =
                    std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
                let bound = listener.local_addr().map_err(|e| format!("serve local_addr: {e}"))?;
                let wal_dir = wal_dir.as_ref().ok_or("--replicate-to requires --wal-dir")?;
                let (prim, repl_addr) = repl::ReplPrimary::start(repl::PrimaryConfig {
                    listen_addr: repl_listen.clone(),
                    wal_dir: std::path::PathBuf::from(wal_dir),
                    node_id: node_id.clone().unwrap_or_else(|| bound.to_string()),
                    serving_addr: bound.to_string(),
                    ..repl::PrimaryConfig::default()
                })?;
                cfg.repl = Some(prim);
                bulkd::serve_with_listener(listener, &cfg, Box::new(executor), |bound| {
                    // Two scrape lines: the replication endpoint for the
                    // standby's `--follow`, then the usual serving port.
                    println!("repl listening on {repl_addr}");
                    println!("bulkd listening on {bound}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                })?
            } else {
                bulkd::serve(&cfg, Box::new(executor), |bound| {
                    // The one line the harness (tests, CI scripts) scrapes
                    // for the ephemeral port — flush so it lands before
                    // any wait.
                    println!("bulkd listening on {bound}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                })?
            };
            out.push_str("bulkd drained; final stats:\n");
            out.push_str(&snapshot.to_pretty());
            out.push('\n');
            if let Some(path) = trace {
                out.push_str(&format!("trace: wrote {path}\n"));
            }
            if let Some(path) = recorder {
                out.push_str(&format!("flight recorder: wrote {path}\n"));
            }
        }
        Command::Standby {
            addr,
            node_id,
            follow,
            wal_dir,
            wal_segment_bytes,
            reconnect_ms,
            workers,
            max_batch,
            max_queue,
            flush_after_ms,
            shards,
        } => {
            let nid = node_id.clone().unwrap_or_else(|| addr.clone());
            let outcome = repl::run_standby(
                repl::StandbyConfig {
                    addr: addr.clone(),
                    follow_addr: follow.clone(),
                    wal_dir: std::path::PathBuf::from(wal_dir),
                    node_id: nid.clone(),
                    segment_bytes: *wal_segment_bytes,
                    reconnect_ms: *reconnect_ms,
                },
                |bound| {
                    // Scrape line for scripts wiring up a pair on
                    // ephemeral ports.
                    println!("standby listening on {bound}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                },
            )?;
            println!(
                "promoted at seq {} ({} job(s) to re-queue); recovering and serving",
                outcome.replicated_seq, outcome.incomplete_jobs
            );
            let _ = std::io::Write::flush(&mut std::io::stdout());
            // Serve on the standby's own listener: recovery replays the
            // replicated WAL (re-queueing the incomplete jobs) before any
            // client is admitted, and durability stays fsync-always so a
            // promoted node offers the guarantees the primary advertised.
            let executor = serve::CatalogExecutor::new(*shards);
            let cfg = bulkd::ServerConfig {
                addr: addr.clone(),
                node_id: Some(nid),
                workers: *workers,
                max_batch: *max_batch,
                max_queue: *max_queue,
                flush_after_ms: *flush_after_ms,
                trace_path: None,
                wal: Some(bulkd::JournalConfig {
                    dir: std::path::PathBuf::from(wal_dir),
                    fsync: wal::FsyncPolicy::Always,
                    segment_bytes: *wal_segment_bytes,
                }),
                instrument: true,
                recorder_path: None,
                repl: None,
                promoted: true,
            };
            let snapshot =
                bulkd::serve_with_listener(outcome.listener, &cfg, Box::new(executor), |bound| {
                    println!("bulkd listening on {bound}");
                    let _ = std::io::Write::flush(&mut std::io::stdout());
                })?;
            out.push_str("bulkd drained; final stats:\n");
            out.push_str(&snapshot.to_pretty());
            out.push('\n');
        }
        Command::Promote { addr, connect_timeout_ms, read_timeout_ms } => {
            let cfg = client_cfg(*connect_timeout_ms, *read_timeout_ms);
            let mut client = bulkd::Client::connect_with(addr, &cfg)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let reply = client.promote().map_err(|e| format!("promote: {e}"))?;
            // Pure JSON on stdout, like `drain`: failover scripts parse
            // `replicated_seq` / `incomplete_jobs` straight out of it.
            out.push_str(&reply.to_pretty());
            out.push('\n');
        }
        Command::Route {
            addr,
            backends,
            standbys,
            vnodes,
            probe_interval_ms,
            probe_timeout_ms,
            down_after,
            up_after,
            connect_timeout_ms,
            read_timeout_ms,
        } => {
            let cfg = router::RouterConfig {
                addr: addr.clone(),
                backends: backends.clone(),
                standbys: standbys.clone(),
                vnodes: *vnodes,
                probe_interval_ms: *probe_interval_ms,
                probe_timeout_ms: *probe_timeout_ms,
                health: router::HealthPolicy { down_after: *down_after, up_after: *up_after },
                connect_timeout_ms: *connect_timeout_ms,
                read_timeout_ms: *read_timeout_ms,
                ..Default::default()
            };
            let snapshot = router::run_router(&cfg, |bound| {
                // Same scrape contract as `serve`: one line, flushed, so
                // scripts can pick up the ephemeral port immediately.
                println!("router listening on {bound}");
                let _ = std::io::Write::flush(&mut std::io::stdout());
            })?;
            out.push_str("router drained; final cluster snapshot:\n");
            out.push_str(&snapshot.to_pretty());
            out.push('\n');
        }
        Command::Drain { addr, connect_timeout_ms, read_timeout_ms } => {
            let cfg = client_cfg(*connect_timeout_ms, *read_timeout_ms);
            let mut client = bulkd::Client::connect_with(addr, &cfg)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let snap = client.drain().map_err(|e| format!("drain: {e}"))?;
            // Pure JSON on stdout so scripts can pipe it straight into a
            // parser (the CI crash-recovery gate does exactly that).
            out.push_str(&snap.to_pretty());
            out.push('\n');
        }
        Command::Metrics { addr, connect_timeout_ms, read_timeout_ms } => {
            let cfg = client_cfg(*connect_timeout_ms, *read_timeout_ms);
            let mut client = bulkd::Client::connect_with(addr, &cfg)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let text = client.metrics().map_err(|e| format!("metrics: {e}"))?;
            // Raw Prometheus text exposition on stdout: pipe it into
            // promtool, a scraper, or the CI assertion script unchanged.
            out.push_str(&text);
        }
        Command::Dump { addr, connect_timeout_ms, read_timeout_ms } => {
            let cfg = client_cfg(*connect_timeout_ms, *read_timeout_ms);
            let mut client = bulkd::Client::connect_with(addr, &cfg)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let j = client.dump().map_err(|e| format!("dump: {e}"))?;
            let recorded = j.path("recorded").and_then(obs::Json::as_i64).unwrap_or(0);
            let overwritten = j.path("overwritten").and_then(obs::Json::as_i64).unwrap_or(0);
            out.push_str(&format!(
                "flight recorder: {recorded} events recorded, {overwritten} overwritten\n"
            ));
            if let Some(path) = j.path("path").and_then(obs::Json::as_str) {
                out.push_str(&format!("  dumped to {path} (+ .txt tail)\n"));
            }
            if let Some(tail) = j.path("tail").and_then(obs::Json::as_str) {
                out.push_str(tail);
            }
        }
        Command::Submit {
            algo,
            size,
            layout,
            addr,
            count,
            seed,
            timing,
            connect_timeout_ms,
            read_timeout_ms,
        } => {
            let a = Algo::parse(algo, *size)?;
            let key = bulkd::JobKey { algo: algo.clone(), size: a.size_param(), layout: *layout };
            let inputs = a.random_inputs_bits(*seed, *count);
            let ccfg = client_cfg(*connect_timeout_ms, *read_timeout_ms);
            let mut client = bulkd::Client::connect_with(addr, &ccfg)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let ok = client.submit(&key, &inputs, *timing).map_err(|e| format!("submit: {e}"))?;
            out.push_str(&format!(
                "{key}: {} instance(s) rode a batch of p = {} \
                 (queued {} us, executed in {} us)\n",
                ok.outputs.len(),
                ok.batch_p,
                ok.queue_us,
                ok.exec_us
            ));
            if let Some(t) = &ok.timing {
                out.push_str(&format!("  stage breakdown: {}\n", t.to_compact()));
            }
        }
        Command::Loadgen {
            algo,
            size,
            layout,
            addr,
            clients,
            duration_ms,
            instances_per_submit,
            seed,
            report,
            drain_after,
            timing,
            hot_key,
            connect_timeout_ms,
            read_timeout_ms,
        } => {
            let a = Algo::parse(algo, *size)?;
            let cfg = bulkd::LoadgenConfig {
                addr: addr.clone(),
                clients: *clients,
                duration: std::time::Duration::from_millis(*duration_ms),
                key: bulkd::JobKey { algo: algo.clone(), size: a.size_param(), layout: *layout },
                instances_per_submit: *instances_per_submit,
                seed: *seed,
                timing: *timing,
                hot_key: *hot_key,
                client: client_cfg(*connect_timeout_ms, *read_timeout_ms),
            };
            let pool = a.random_inputs_bits(RUN_SEED, 64.max(*instances_per_submit));
            let rep = bulkd::run_loadgen(&cfg, &pool)?;
            // Fetching the server's stats is best-effort: in crash drills
            // the server is killed mid-run, and the client-side report
            // (what was acknowledged) is exactly the evidence needed.
            let server_stats = bulkd::Client::connect_with(addr, &cfg.client)
                .map_err(|e| format!("connect {addr}: {e}"))
                .and_then(|mut client| {
                    if *drain_after { client.drain() } else { client.stats() }
                        .map_err(|e| format!("server stats: {e}"))
                })
                .unwrap_or_else(|e| {
                    let mut j = obs::Json::obj();
                    j.set("unreachable", true);
                    j.set("error", e.as_str());
                    j
                });
            let server_unreachable = server_stats.get("unreachable").is_some();
            let secs = rep.elapsed.as_secs_f64().max(1e-9);
            out.push_str(&format!(
                "loadgen {}: {} submitted, {} completed ({:.0} jobs/s, \
                 {:.0} instances/s), {} overload retries, {} errors\n",
                cfg.key,
                rep.submitted,
                rep.completed,
                rep.completed as f64 / secs,
                (rep.completed * *instances_per_submit as u64) as f64 / secs,
                rep.overload_retries,
                rep.errors
            ));
            out.push_str(&format!(
                "  latency p50/p99: {} / {} us; mean observed batch p: {:.1}\n",
                rep.latency_us.quantile(0.5).unwrap_or(0),
                rep.latency_us.quantile(0.99).unwrap_or(0),
                rep.batch_p.mean()
            ));
            if *timing {
                out.push_str(&format!(
                    "  queue-wait p50/p99: {} / {} us; service p50/p99: {} / {} us\n",
                    rep.queue_wait_us.quantile(0.5).unwrap_or(0),
                    rep.queue_wait_us.quantile(0.99).unwrap_or(0),
                    rep.service_us.quantile(0.5).unwrap_or(0),
                    rep.service_us.quantile(0.99).unwrap_or(0)
                ));
            }
            if let Some(path) = report {
                let mut j = rep.to_json(&cfg);
                // Surface which node served the run next to the client-side
                // numbers (the full server snapshot keeps its own copy).
                if let Some(nid) = server_stats.path("node_id").and_then(obs::Json::as_str) {
                    j.set("node_id", nid);
                }
                j.set("server", server_stats);
                write_text("loadgen report", path, &j.to_pretty())?;
                out.push_str(&format!("  report: wrote {path}\n"));
            }
            match (server_unreachable, *drain_after) {
                (true, _) => out.push_str("  server unreachable after the run\n"),
                (false, true) => out.push_str("  server drained\n"),
                (false, false) => {}
            }
        }
        Command::Sim {
            seeds,
            seed0,
            clients,
            workers,
            jobs,
            replay,
            crash_at,
            conn_faults,
            fsync_errors,
            fsync_fail_at,
            report,
        } => {
            let mk_cfg = |seed: u64| {
                let mut cfg = sim::SimConfig::new(seed);
                cfg.clients = *clients;
                cfg.workers = *workers;
                cfg.jobs_per_client = *jobs;
                cfg.conn_faults = *conn_faults;
                cfg
            };
            if let Some(seed) = replay {
                // Reproduce one seed: the failure path prints this exact
                // invocation, so it must re-run the same checks explore
                // ran for that seed.
                let cfg = mk_cfg(*seed);
                let base = sim::run(&cfg, None, None).map_err(|f| f.to_string())?;
                let again = sim::run(&cfg, None, None).map_err(|f| f.to_string())?;
                if base.trace != again.trace || base.stats != again.stats {
                    return Err(format!(
                        "sim seed {seed}: two runs of the same seed diverged (nondeterminism)"
                    ));
                }
                sim::replay_trace(&cfg, None, None, &base.trace).map_err(|f| f.to_string())?;
                out.push_str(&format!(
                    "sim seed {seed}: {} decisions, {} WAL appends, {} fsyncs, \
                     {} deliveries ({} partial), {} disconnects, {} jobs acked; \
                     trace and stats bit-identical across two runs and one trace replay\n",
                    base.trace.decisions.len(),
                    base.appends,
                    base.syncs,
                    base.deliveries,
                    base.partial_deliveries,
                    base.disconnects,
                    base.acked.len()
                ));
                if let Some(k) = crash_at {
                    if *k == 0 || *k > base.appends {
                        return Err(format!(
                            "--crash-at {k}: seed {seed} performs {} WAL appends \
                             (valid range 1..={})",
                            base.appends, base.appends
                        ));
                    }
                    let floor = base.append_sync_floor[(*k - 1) as usize];
                    for cut in floor..=*k {
                        sim::run(&cfg, Some(sim::CrashPlan { after_append: *k, cut }), None)
                            .map_err(|f| f.to_string())?;
                    }
                    out.push_str(&format!(
                        "  crash after append {k}: cuts {floor}..={k} all recovered \
                         with exactly-once intact\n"
                    ));
                }
                if let Some(s) = fsync_fail_at {
                    if *s == 0 || *s > base.syncs {
                        return Err(format!(
                            "--fsync-fail-at {s}: seed {seed} performs {} fsyncs \
                             (valid range 1..={})",
                            base.syncs, base.syncs
                        ));
                    }
                    let faulted = sim::run(&cfg, None, Some(*s)).map_err(|f| f.to_string())?;
                    sim::replay_trace(&cfg, None, Some(*s), &faulted.trace)
                        .map_err(|f| f.to_string())?;
                    out.push_str(&format!(
                        "  fsync error at sync {s}: journal fail-stopped cleanly \
                         ({} of {} jobs acked before the failure)\n",
                        faulted.acked.len(),
                        cfg.clients * cfg.jobs_per_client
                    ));
                }
                out.push_str(&format!("  trace: {}\n", base.trace));
                if let Some(path) = report {
                    write_text("sim trace", path, &format!("{}\n", base.trace))?;
                    out.push_str(&format!("  trace written to {path}\n"));
                }
            } else {
                let t0 = std::time::Instant::now();
                let rep = sim::explore(&mk_cfg(0), *seed0, *seeds, *fsync_errors)
                    .map_err(|f| f.to_string())?;
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                out.push_str(&format!(
                    "sim: {} schedules across {} seeds ({} crash scenarios, \
                     {} fsync-error scenarios, {} deliveries / {} partial, \
                     {} disconnects, {} scheduler decisions) in {:.2}s — \
                     {:.0} schedules/s, all invariants held\n",
                    rep.schedules,
                    rep.seeds,
                    rep.crash_scenarios,
                    rep.fsync_error_scenarios,
                    rep.deliveries,
                    rep.partial_deliveries,
                    rep.disconnects,
                    rep.total_steps,
                    secs,
                    rep.schedules as f64 / secs
                ));
                if let Some(path) = report {
                    let mut j = rep.to_json();
                    j.set("seed0", *seed0);
                    j.set("conn_faults", *conn_faults);
                    j.set("elapsed_ms", (secs * 1_000.0) as u64);
                    write_text("sim report", path, &j.to_pretty())?;
                    out.push_str(&format!("  report: wrote {path}\n"));
                }
            }
        }
        Command::Compare { a, b, threshold } => {
            let base = read_report(a)?;
            let cand = read_report(b)?;
            let cfg = obs::diff::DiffConfig { tolerance: threshold / 100.0, ..Default::default() };
            let report = obs::diff::diff_reports(&base, &cand, &cfg);
            out.push_str(&format!("comparing {a} (baseline) vs {b}:\n"));
            out.push_str(&report.summary());
            if report.regression_count() > 0 {
                return Err(format!(
                    "{out}\n{} metric(s) regressed beyond {threshold}% tolerance",
                    report.regression_count()
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umm_core::MachineConfig;

    #[test]
    fn list_mentions_every_algorithm() {
        let out = execute(&Command::List).unwrap();
        for (name, _, _) in CATALOG {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn trace_prints_address_function() {
        let cmd = Command::Trace { algo: "prefix-sums".into(), size: Some(4), head: 3 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("t = 8 memory steps"));
        assert!(out.contains("a(0) = Access(Read, 0)"));
        assert!(out.contains("more steps"));
    }

    #[test]
    fn model_reports_speedup_and_bound() {
        let cmd = Command::Model {
            algo: "opt".into(),
            size: Some(8),
            p: 1024,
            cfg: MachineConfig::new(32, 100),
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("row-wise"));
        assert!(out.contains("lower bound"));
        assert!(out.contains("faster"));
    }

    #[test]
    fn run_executes() {
        let cmd = Command::Run {
            algo: "bitonic".into(),
            size: Some(3),
            p: 16,
            layout: oblivious::Layout::ColumnWise,
            profile: None,
            trace: None,
            compiled: false,
            shards: 1,
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("wall clock"));
    }

    #[test]
    fn timeline_renders_warp_tracks() {
        let cmd = Command::Timeline {
            algo: "prefix-sums".into(),
            size: Some(16),
            p: 64,
            layout: Layout::ColumnWise,
            cfg: MachineConfig::new(32, 8),
            cols: 40,
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("warp occupancy"), "{out}");
        assert!(out.contains("warp 0"), "{out}");
        assert!(out.contains("pipeline"), "{out}");
        assert!(out.contains('█') || out.contains('▒'), "occupancy cells rendered: {out}");
    }

    #[test]
    fn compare_is_clean_on_identical_reports_and_gates_on_drift() {
        let dir = std::env::temp_dir().join(format!("bulkrun-cmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = Algo::parse("prefix-sums", Some(8)).unwrap();
        let report = run_report(&a, 64, Layout::ColumnWise, 7, 0.001, false);
        let pa = dir.join("a.json");
        let pb = dir.join("b.json");
        report.write_to(&pa).unwrap();
        report.write_to(&pb).unwrap();
        let cmd = Command::Compare {
            a: pa.to_string_lossy().into_owned(),
            b: pb.to_string_lossy().into_owned(),
            threshold: 0.0,
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");

        // Perturb a deterministic metric beyond any tolerance: gates.
        let text = report.to_pretty().replace("\"rounds\": ", "\"rounds\": 9");
        std::fs::write(&pb, text).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("regressed beyond"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_missing_file_names_the_path() {
        let cmd = Command::Compare {
            a: "/nonexistent/base.json".into(),
            b: "/nonexistent/cand.json".into(),
            threshold: 0.0,
        };
        let err = execute(&cmd).unwrap_err();
        assert!(err.contains("/nonexistent/base.json"), "{err}");
    }

    /// The measured model section of a report must agree with the analytic
    /// closed forms: for warp-aligned `p`, the simulated column-wise time
    /// equals `(p/w + l - 1)·t` *exactly*, and sits between Theorem 3's
    /// lower bound and the row-wise prediction.
    #[test]
    fn report_model_section_matches_analytic_prediction() {
        let a = Algo::parse("prefix-sums", Some(32)).unwrap();
        let p = 64usize; // multiple of the report's w = 32
        let report = run_report(&a, p, Layout::ColumnWise, 7, 0.001, false);
        let j = report.json();
        let t = j.path("algo.time_steps").unwrap().as_i64().unwrap() as u64;
        let measured = j.path("model.umm.stats.time_units").unwrap().as_i64().unwrap() as u64;
        let cfg = umm_core::MachineConfig::new(32, 100);
        let predicted = analytic::predict(&cfg, t, p as u64);
        assert_eq!(measured, predicted.column_wise, "simulator vs closed form");
        assert!(measured >= predicted.lower_bound);
        assert!(measured <= predicted.row_wise);
        assert_eq!(
            j.path("model.lower_bound").unwrap().as_i64().unwrap() as u64,
            predicted.lower_bound,
        );
    }

    #[test]
    fn run_report_carries_model_and_device_profiles() {
        let a = Algo::parse("prefix-sums", Some(8)).unwrap();
        let report = run_report(&a, 64, Layout::ColumnWise, 42, 0.001, false);
        let j = report.json();
        // Round counts and the address-group histogram from the model sim.
        assert!(j.path("model.umm.stats.rounds").unwrap().as_i64().unwrap() > 0);
        let hist = j.path("model.umm.profile.address_group_histogram").unwrap();
        assert!(hist.path("total").unwrap().as_i64().unwrap() > 0);
        // Per-worker block accounting from the device scheduler.
        let workers = j.path("device.workers").unwrap().as_arr().unwrap();
        assert!(!workers.is_empty());
        let blocks: i64 = workers.iter().map(|w| w.path("blocks").unwrap().as_i64().unwrap()).sum();
        assert_eq!(blocks, j.path("device.blocks").unwrap().as_i64().unwrap());
        // Engine port traffic is non-trivial.
        assert!(j.path("engine.loads").unwrap().as_i64().unwrap() > 0);
        // The whole thing round-trips through text.
        let reparsed = obs::RunReport::parse(&report.to_pretty()).unwrap();
        assert_eq!(reparsed.tool(), "bulkrun run");
    }

    #[test]
    fn hmm_reports_staging_verdict() {
        let cmd = Command::Hmm { algo: "opt".into(), size: Some(32), p: 896, dmms: 14 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("stage into shared memory"), "{out}");
        let cmd = Command::Hmm { algo: "prefix-sums".into(), size: None, p: 896, dmms: 14 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("stay in global memory"), "{out}");
    }

    #[test]
    fn hmm_rounds_p_to_dmm_multiple() {
        let cmd = Command::Hmm { algo: "horner".into(), size: Some(8), p: 100, dmms: 14 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("p = 112"), "rounded up to the next multiple: {out}");
    }

    #[test]
    fn unknown_algorithm_propagates_error() {
        let cmd = Command::Trace { algo: "bogosort".into(), size: None, head: 4 };
        assert!(execute(&cmd).is_err());
    }
}
