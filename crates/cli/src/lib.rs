//! # cli — the `bulkrun` command-line driver
//!
//! Name-addressable access to the algorithm library: list programs, dump
//! their address functions, price bulk executions on the UMM/DMM, and run
//! them on the generic engine.  Logic lives in the library so it is unit-
//! testable; `main.rs` is a thin shell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod registry;

use args::Command;
use oblivious::{theorems, Layout, Model};
use registry::{Algo, CATALOG};

/// Execute a parsed command, writing human output to the returned string.
pub fn execute(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(args::USAGE),
        Command::List => {
            out.push_str(&format!("{:<16} {:>8}  description\n", "name", "default"));
            for (name, default, desc) in CATALOG {
                out.push_str(&format!("{name:<16} {default:>8}  {desc}\n"));
            }
        }
        Command::Trace { algo, size, head } => {
            let a = Algo::parse(algo, *size)?;
            let trace = a.trace();
            out.push_str(&format!(
                "{}: t = {} memory steps over {} words\n",
                a.display_name(),
                trace.len(),
                a.memory_words()
            ));
            for (i, step) in trace.steps().iter().take(*head).enumerate() {
                out.push_str(&format!("  a({i}) = {step:?}\n"));
            }
            if trace.len() > *head {
                out.push_str(&format!("  … {} more steps\n", trace.len() - head));
            }
        }
        Command::Model { algo, size, p, cfg } => {
            let a = Algo::parse(algo, *size)?;
            let t = a.time_steps() as u64;
            out.push_str(&format!(
                "{} on UMM(w={}, l={}), p = {p}:\n",
                a.display_name(),
                cfg.width,
                cfg.latency
            ));
            let row = a.model_time(*cfg, Model::Umm, Layout::RowWise, *p);
            let col = a.model_time(*cfg, Model::Umm, Layout::ColumnWise, *p);
            let lb = theorems::lower_bound(t, *p as u64, cfg.width as u64, cfg.latency as u64);
            out.push_str(&format!("  row-wise     : {row} time units\n"));
            out.push_str(&format!(
                "  column-wise  : {col} time units ({:.2}x faster)\n",
                row as f64 / col as f64
            ));
            out.push_str(&format!(
                "  lower bound  : {lb} (Theorem 3; column-wise is within {:.2}x)\n",
                col as f64 / lb as f64
            ));
            let drow = a.model_time(*cfg, Model::Dmm, Layout::RowWise, *p);
            let dcol = a.model_time(*cfg, Model::Dmm, Layout::ColumnWise, *p);
            out.push_str(&format!("  DMM row/col  : {drow} / {dcol} (bank-conflict cost)\n"));
        }
        Command::Hmm { algo, size, p, dmms } => {
            let a = Algo::parse(algo, *size)?;
            let mut p = *p;
            if p % dmms != 0 {
                p = (p / dmms + 1) * dmms; // round up to a DMM multiple
            }
            let hmm = umm_core::HmmConfig::new(
                *dmms,
                umm_core::MachineConfig::sm_shared(),
                umm_core::MachineConfig::titan_global(),
            );
            let c = a.hmm_cost(&hmm, p);
            out.push_str(&format!(
                "{} on HMM({} DMMs, shared w={} l={}, global w={} l={}), p = {p}:\n",
                a.display_name(),
                dmms,
                hmm.shared.width,
                hmm.shared.latency,
                hmm.global.width,
                hmm.global.latency
            ));
            out.push_str(&format!("  all-global : {} time units\n", c.all_global));
            out.push_str(&format!(
                "  staged     : {} time units (load {} + compute {} + store {})\n",
                c.staged, c.load, c.compute, c.store
            ));
            out.push_str(&format!(
                "  verdict    : {} by {:.2}x; staging needs {} shared words per DMM\n",
                if c.staging_wins() { "stage into shared memory" } else { "stay in global memory" },
                c.advantage(),
                a.memory_words() * (p / dmms),
            ));
        }
        Command::Run { algo, size, p, layout } => {
            let a = Algo::parse(algo, *size)?;
            out.push_str(&format!(
                "bulk-executing {} for p = {p} instances, {layout} …\n",
                a.display_name()
            ));
            let secs = a.run_bulk(*p, *layout, 0xB01D_FACE);
            out.push_str(&format!(
                "  wall clock: {}  ({} per instance)\n",
                analytic::format_value(secs),
                analytic::format_value(secs / *p as f64)
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umm_core::MachineConfig;

    #[test]
    fn list_mentions_every_algorithm() {
        let out = execute(&Command::List).unwrap();
        for (name, _, _) in CATALOG {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn trace_prints_address_function() {
        let cmd = Command::Trace { algo: "prefix-sums".into(), size: Some(4), head: 3 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("t = 8 memory steps"));
        assert!(out.contains("a(0) = Access(Read, 0)"));
        assert!(out.contains("more steps"));
    }

    #[test]
    fn model_reports_speedup_and_bound() {
        let cmd = Command::Model {
            algo: "opt".into(),
            size: Some(8),
            p: 1024,
            cfg: MachineConfig::new(32, 100),
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("row-wise"));
        assert!(out.contains("lower bound"));
        assert!(out.contains("faster"));
    }

    #[test]
    fn run_executes() {
        let cmd = Command::Run {
            algo: "bitonic".into(),
            size: Some(3),
            p: 16,
            layout: oblivious::Layout::ColumnWise,
        };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("wall clock"));
    }

    #[test]
    fn hmm_reports_staging_verdict() {
        let cmd = Command::Hmm { algo: "opt".into(), size: Some(32), p: 896, dmms: 14 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("stage into shared memory"), "{out}");
        let cmd = Command::Hmm { algo: "prefix-sums".into(), size: None, p: 896, dmms: 14 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("stay in global memory"), "{out}");
    }

    #[test]
    fn hmm_rounds_p_to_dmm_multiple() {
        let cmd = Command::Hmm { algo: "horner".into(), size: Some(8), p: 100, dmms: 14 };
        let out = execute(&cmd).unwrap();
        assert!(out.contains("p = 112"), "rounded up to the next multiple: {out}");
    }

    #[test]
    fn unknown_algorithm_propagates_error() {
        let cmd = Command::Trace { algo: "bogosort".into(), size: None, head: 4 };
        assert!(execute(&cmd).is_err());
    }
}
