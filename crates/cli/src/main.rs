//! `bulkrun` entry point — parse, execute, print.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = cli::args::parse(&argv).and_then(|cmd| cli::execute(&cmd));
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
