//! The algorithm registry: name-addressable access to the heterogeneous
//! program library.
//!
//! `ObliviousProgram::run` is generic over the machine, so programs cannot
//! be trait objects; the registry is an enum that dispatches each CLI
//! operation to the concrete program type (and the right word type — XTEA
//! runs on `u32`, everything else on `f32`).

use algorithms::{
    BitonicSort, EditDistance, Fft, FirFilter, FloydWarshall, Horner, LcsLength, LuDecomposition,
    MatMul, MatVec, MatrixChain, OddEvenMergeSort, OfflinePermute, OptTriangulation,
    PascalTriangle, PolyMul, PrefixSums, SummedArea, Transpose, Xtea,
};
use gpu_sim::{launch, launch_profiled, Device, GenericKernel};
use oblivious::layout::extract;
use oblivious::program::{
    arrange_inputs, bulk_execute, bulk_execute_compiled, bulk_execute_cpu_reference,
    bulk_model_time, bulk_profiled_dmm, bulk_profiled_umm, bulk_traced_dmm, bulk_traced_umm,
    compiled_profiled_dmm, compiled_profiled_umm, run_compiled_in_place, time_steps, trace_of,
};
use oblivious::{
    theorems, BulkMachine, BulkMetrics, CacheStats, CompiledSchedule, Layout, Model,
    ObliviousProgram, ScheduleCache, Word,
};
use obs::{Json, Rng, Tracer};
use umm_core::{MachineConfig, ThreadTrace};

/// Deterministic random inputs for `p` instances of `len` words each.
///
/// The f32 path draws from `[0, 4)` (small positive values keep DP and
/// sorting programs numerically tame); integer paths draw 32-bit values so
/// u64 programs cannot overflow in additive DP tables.
fn random_f32_inputs(seed: u64, p: usize, len: usize) -> Vec<Vec<f32>> {
    let mut rng = Rng::new(seed);
    (0..p).map(|_| (0..len).map(|_| rng.f32_range(0.0, 4.0)).collect()).collect()
}

fn random_u32_inputs(seed: u64, p: usize, len: usize) -> Vec<Vec<u32>> {
    let mut rng = Rng::new(seed);
    (0..p).map(|_| (0..len).map(|_| rng.next_u32()).collect()).collect()
}

fn random_u64_inputs(seed: u64, p: usize, len: usize) -> Vec<Vec<u64>> {
    let mut rng = Rng::new(seed);
    (0..p).map(|_| (0..len).map(|_| u64::from(rng.next_u32())).collect()).collect()
}

/// Shared compiled-schedule caches, one per word type — the serving
/// daemon's execution substrate.  Every coalesced batch of a given
/// `(algo, n, layout)` key replays one cached schedule; the aggregated
/// [`ScheduleCaches::totals`] feed the daemon's cache-hit-rate stat.
#[derive(Debug, Default)]
pub struct ScheduleCaches {
    /// Cache for `f32` programs (most of the catalog).
    pub f32_cache: ScheduleCache<f32>,
    /// Cache for `u32` programs (XTEA).
    pub u32_cache: ScheduleCache<u32>,
    /// Cache for `u64` programs (Pascal's triangle).
    pub u64_cache: ScheduleCache<u64>,
}

impl ScheduleCaches {
    /// Empty caches.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate hit/compile counts across the three word types.
    #[must_use]
    pub fn totals(&self) -> CacheStats {
        [self.f32_cache.stats(), self.u32_cache.stats(), self.u64_cache.stats()].iter().fold(
            CacheStats::default(),
            |acc, s| CacheStats { hits: acc.hits + s.hits, compiles: acc.compiles + s.compiles },
        )
    }
}

/// Which execution engine [`Algo::outputs_bits`] drives.
#[derive(Debug, Clone, Copy)]
pub enum Engine<'d> {
    /// The scalar reference, one instance at a time (layout-independent).
    Scalar,
    /// The block-parallel SIMT device via [`GenericKernel`].
    Device(&'d Device),
    /// The single [`BulkMachine`] engine (`bulk_execute`).
    BulkMachine,
    /// Compiled-schedule replay, sharded over `shards` threads
    /// (`bulk_execute_compiled`).
    Compiled {
        /// Number of instance shards replayed on separate threads.
        shards: usize,
    },
}

/// A selected algorithm with its size parameter bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Prefix-sums over `n` words.
    PrefixSums(usize),
    /// OPT triangulation of an `n`-gon.
    Opt(usize),
    /// `n × n` matrix product.
    MatMul(usize),
    /// `n × n` matrix transpose.
    Transpose(usize),
    /// `n × n` matrix–vector product.
    MatVec(usize),
    /// FFT of `2^k` points (parameter is `k`).
    Fft(u32),
    /// FIR moving average of width 4 over `n` samples.
    Fir(usize),
    /// Bitonic sort of `2^k` words.
    Bitonic(u32),
    /// Batcher odd-even merge sort of `2^k` words.
    OeMergeSort(u32),
    /// LCS of two `n`-word sequences.
    Lcs(usize),
    /// Edit distance of two `n`-word sequences.
    EditDistance(usize),
    /// Floyd–Warshall over `n` vertices.
    FloydWarshall(usize),
    /// Summed-area table of an `n × n` image.
    SummedArea(usize),
    /// XTEA encryption of `n` 64-bit blocks.
    Xtea(usize),
    /// Horner evaluation of a degree-`n` polynomial.
    Horner(usize),
    /// Offline perfect-shuffle permutation of `n` words (n even).
    Permute(usize),
    /// Matrix-chain ordering DP over `n` matrices.
    MatrixChain(usize),
    /// LU decomposition of an `n × n` matrix (no pivoting).
    Lu(usize),
    /// Polynomial product of two `n`-coefficient operands.
    PolyMul(usize),
    /// Pascal's triangle with `n` rows (u64 words).
    Pascal(usize),
}

/// `(name, default size, description)` rows for `bulkrun list`.
pub const CATALOG: &[(&str, usize, &str)] = &[
    ("prefix-sums", 1024, "in-place prefix sums (paper §III)"),
    ("opt", 16, "optimal polygon triangulation DP (paper §IV)"),
    ("matmul", 16, "dense n x n matrix product"),
    ("transpose", 32, "in-place n x n transpose"),
    ("matvec", 32, "n x n matrix-vector product"),
    ("fft", 8, "radix-2 FFT of 2^k points (k = size)"),
    ("fir", 1024, "4-tap moving-average filter"),
    ("bitonic", 8, "bitonic sorting network of 2^k words (k = size)"),
    ("oe-mergesort", 8, "Batcher odd-even merge sort of 2^k words (k = size)"),
    ("lcs", 32, "longest common subsequence length"),
    ("edit-distance", 32, "Levenshtein distance"),
    ("floyd-warshall", 16, "all-pairs shortest paths"),
    ("summed-area", 32, "2-D prefix sums over an n x n image"),
    ("xtea", 16, "XTEA encryption of n 64-bit blocks (u32 words)"),
    ("horner", 64, "degree-n polynomial evaluation"),
    ("permute", 1024, "offline perfect-shuffle permutation of n words"),
    ("matrix-chain", 16, "matrix-chain multiplication order DP"),
    ("lu", 16, "LU decomposition without pivoting"),
    ("poly-mul", 64, "polynomial multiplication (direct convolution)"),
    ("pascal", 24, "Pascal's triangle / binomial table (u64 words)"),
];

impl Algo {
    /// Parse a name and optional size into a bound algorithm.
    pub fn parse(name: &str, size: Option<usize>) -> Result<Self, String> {
        let default = CATALOG
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, d, _)| *d)
            .ok_or_else(|| format!("unknown algorithm '{name}'; try `bulkrun list`"))?;
        let s = size.unwrap_or(default);
        if s == 0 {
            return Err("size must be positive".into());
        }
        Ok(match name {
            "prefix-sums" => Algo::PrefixSums(s),
            "opt" => {
                if s < 3 {
                    return Err("opt needs a polygon with at least 3 vertices".into());
                }
                Algo::Opt(s)
            }
            "matmul" => Algo::MatMul(s),
            "transpose" => Algo::Transpose(s),
            "matvec" => Algo::MatVec(s),
            "fft" => Algo::Fft(u32::try_from(s).map_err(|_| "k too large")?),
            "fir" => Algo::Fir(s),
            "bitonic" => Algo::Bitonic(u32::try_from(s).map_err(|_| "k too large")?),
            "oe-mergesort" => Algo::OeMergeSort(u32::try_from(s).map_err(|_| "k too large")?),
            "lcs" => Algo::Lcs(s),
            "edit-distance" => Algo::EditDistance(s),
            "floyd-warshall" => Algo::FloydWarshall(s),
            "summed-area" => Algo::SummedArea(s),
            "xtea" => Algo::Xtea(s),
            "horner" => Algo::Horner(s),
            "permute" => {
                if s < 2 || !s.is_multiple_of(2) {
                    return Err("permute needs an even size >= 2".into());
                }
                Algo::Permute(s)
            }
            "matrix-chain" => Algo::MatrixChain(s),
            "lu" => Algo::Lu(s),
            "poly-mul" => Algo::PolyMul(s),
            "pascal" => Algo::Pascal(s),
            _ => unreachable!("catalog covered above"),
        })
    }

    /// Dispatch a generic operation over the concrete program type.
    fn with_program<R>(&self, op: impl ProgramOp<R>) -> R {
        match *self {
            Algo::PrefixSums(n) => op.call_f32(PrefixSums::new(n)),
            Algo::Opt(n) => op.call_f32(OptTriangulation::new(n)),
            Algo::MatMul(n) => op.call_f32(MatMul::new(n)),
            Algo::Transpose(n) => op.call_f32(Transpose::new(n)),
            Algo::MatVec(n) => op.call_f32(MatVec::new(n)),
            Algo::Fft(k) => op.call_f32(Fft::new(k)),
            Algo::Fir(n) => op.call_f32(FirFilter::moving_average(n, 4)),
            Algo::Bitonic(k) => op.call_f32(BitonicSort::new(k)),
            Algo::OeMergeSort(k) => op.call_f32(OddEvenMergeSort::new(k)),
            Algo::Lcs(n) => op.call_f32(LcsLength::new(n, n)),
            Algo::EditDistance(n) => op.call_f32(EditDistance::new(n, n)),
            Algo::FloydWarshall(n) => op.call_f32(FloydWarshall::new(n)),
            Algo::SummedArea(n) => op.call_f32(SummedArea::new(n, n)),
            Algo::Xtea(n) => op.call_u32(Xtea::encrypt(n)),
            Algo::Horner(n) => op.call_f32(Horner::new(n)),
            Algo::Permute(n) => op.call_f32(OfflinePermute::perfect_shuffle(n)),
            Algo::MatrixChain(n) => op.call_f32(MatrixChain::new(n)),
            Algo::Lu(n) => op.call_f32(LuDecomposition::new(n)),
            Algo::PolyMul(n) => op.call_f32(PolyMul::new(n)),
            Algo::Pascal(n) => op.call_u64(PascalTriangle::new(n)),
        }
    }

    /// The program's display name.
    #[must_use]
    pub fn display_name(&self) -> String {
        struct NameOp;
        impl ProgramOp<String> for NameOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, p: P) -> String {
                p.name()
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, p: P) -> String {
                p.name()
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, p: P) -> String {
                p.name()
            }
        }
        self.with_program(NameOp)
    }

    /// Per-instance memory words.
    #[must_use]
    pub fn memory_words(&self) -> usize {
        struct MemOp;
        impl ProgramOp<usize> for MemOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, p: P) -> usize {
                p.memory_words()
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, p: P) -> usize {
                p.memory_words()
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, p: P) -> usize {
                p.memory_words()
            }
        }
        self.with_program(MemOp)
    }

    /// Sequential memory steps `t`.
    #[must_use]
    pub fn time_steps(&self) -> usize {
        struct StepsOp;
        impl ProgramOp<usize> for StepsOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, p: P) -> usize {
                time_steps(&p)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, p: P) -> usize {
                time_steps(&p)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, p: P) -> usize {
                time_steps(&p)
            }
        }
        self.with_program(StepsOp)
    }

    /// The address trace.
    #[must_use]
    pub fn trace(&self) -> ThreadTrace {
        struct TraceOp;
        impl ProgramOp<ThreadTrace> for TraceOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, p: P) -> ThreadTrace {
                trace_of(&p)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, p: P) -> ThreadTrace {
                trace_of(&p)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, p: P) -> ThreadTrace {
                trace_of(&p)
            }
        }
        self.with_program(TraceOp)
    }

    /// UMM/DMM model time for a bulk execution.
    #[must_use]
    pub fn model_time(&self, cfg: MachineConfig, model: Model, layout: Layout, p: usize) -> u64 {
        struct CostOp {
            cfg: MachineConfig,
            model: Model,
            layout: Layout,
            p: usize,
        }
        impl ProgramOp<u64> for CostOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> u64 {
                bulk_model_time(&pr, self.cfg, self.model, self.layout, self.p)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> u64 {
                bulk_model_time(&pr, self.cfg, self.model, self.layout, self.p)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> u64 {
                bulk_model_time(&pr, self.cfg, self.model, self.layout, self.p)
            }
        }
        self.with_program(CostOp { cfg, model, layout, p })
    }

    /// Bulk-execute `p` random instances through the generic engine,
    /// returning wall-clock seconds (excludes input generation and
    /// arrangement, to mirror kernel-only timing).
    #[must_use]
    pub fn run_bulk(&self, p: usize, layout: Layout, seed: u64) -> f64 {
        struct RunOp {
            p: usize,
            layout: Layout,
            seed: u64,
        }
        fn timed<W: Word, P: ObliviousProgram<W>>(
            pr: &P,
            inputs: &[Vec<W>],
            layout: Layout,
        ) -> f64 {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let t0 = std::time::Instant::now();
            let out = bulk_execute(pr, &refs, layout);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        }
        impl ProgramOp<f64> for RunOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> f64 {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                timed(&pr, &inputs, self.layout)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> f64 {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                timed(&pr, &inputs, self.layout)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> f64 {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                timed(&pr, &inputs, self.layout)
            }
        }
        self.with_program(RunOp { p, layout, seed })
    }

    /// Bulk-execute `p` random instances through the compiled-schedule
    /// replay path (`shards` threads), returning wall-clock seconds.
    /// Compilation happens before the clock starts, mirroring
    /// [`Algo::run_bulk`]'s kernel-only timing.
    #[must_use]
    pub fn run_bulk_compiled(&self, p: usize, layout: Layout, seed: u64, shards: usize) -> f64 {
        struct RunOp {
            p: usize,
            layout: Layout,
            seed: u64,
            shards: usize,
        }
        fn timed<W: Word + Send + Sync, P: ObliviousProgram<W>>(
            pr: &P,
            inputs: &[Vec<W>],
            layout: Layout,
            shards: usize,
        ) -> f64 {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let schedule = CompiledSchedule::compile(pr);
            let t0 = std::time::Instant::now();
            let out = oblivious::run_sharded(&schedule, &refs, layout, shards);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        }
        impl ProgramOp<f64> for RunOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> f64 {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                timed(&pr, &inputs, self.layout, self.shards)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> f64 {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                timed(&pr, &inputs, self.layout, self.shards)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> f64 {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                timed(&pr, &inputs, self.layout, self.shards)
            }
        }
        self.with_program(RunOp { p, layout, seed, shards })
    }

    /// Port-traffic metrics of one *compiled* bulk replay — identical to
    /// [`Algo::bulk_metrics`] for every program (the compiler mirrors the
    /// interpreter's step table and counters), and independent of the shard
    /// count: each shard replays the same schedule, so the merged counters
    /// are the schedule's own.
    #[must_use]
    pub fn bulk_metrics_compiled(&self, p: usize, layout: Layout, seed: u64) -> BulkMetrics {
        struct MetricsOp {
            p: usize,
            layout: Layout,
            seed: u64,
        }
        fn run_metrics<W: Word, P: ObliviousProgram<W>>(
            pr: &P,
            inputs: &[Vec<W>],
            p: usize,
            layout: Layout,
        ) -> BulkMetrics {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let schedule = CompiledSchedule::compile(pr);
            let mut buf = arrange_inputs(pr, &refs, layout);
            run_compiled_in_place(&schedule, &mut buf, p, layout)
        }
        impl ProgramOp<BulkMetrics> for MetricsOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> BulkMetrics {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                run_metrics(&pr, &inputs, self.p, self.layout)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> BulkMetrics {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                run_metrics(&pr, &inputs, self.p, self.layout)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> BulkMetrics {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                run_metrics(&pr, &inputs, self.p, self.layout)
            }
        }
        self.with_program(MetricsOp { p, layout, seed })
    }

    /// Port-traffic metrics of one bulk execution on the single
    /// [`BulkMachine`] engine (loads/stores/broadcasts/register ops).
    #[must_use]
    pub fn bulk_metrics(&self, p: usize, layout: Layout, seed: u64) -> BulkMetrics {
        struct MetricsOp {
            p: usize,
            layout: Layout,
            seed: u64,
        }
        fn run_metrics<W: Word, P: ObliviousProgram<W>>(
            pr: &P,
            inputs: &[Vec<W>],
            p: usize,
            layout: Layout,
        ) -> BulkMetrics {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let mut buf = arrange_inputs(pr, &refs, layout);
            let mut m = BulkMachine::new(&mut buf, p, pr.memory_words(), layout);
            pr.run(&mut m);
            m.metrics()
        }
        impl ProgramOp<BulkMetrics> for MetricsOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> BulkMetrics {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                run_metrics(&pr, &inputs, self.p, self.layout)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> BulkMetrics {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                run_metrics(&pr, &inputs, self.p, self.layout)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> BulkMetrics {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                run_metrics(&pr, &inputs, self.p, self.layout)
            }
        }
        self.with_program(MetricsOp { p, layout, seed })
    }

    /// Profiled round-synchronous model simulation of a bulk execution:
    /// UMM and DMM stats + profiles under `layout`, plus the Theorem 3
    /// lower bound, as one JSON object.
    ///
    /// With `compiled`, the simulators are driven through the schedule's
    /// precomputed per-warp cost table (`compiled_profiled_umm`/`_dmm`)
    /// instead of streamed thread actions; the resulting stats, profiles
    /// and round counts are bit-identical, so the JSON is too.
    #[must_use]
    pub fn model_profile_json(
        &self,
        cfg: MachineConfig,
        layout: Layout,
        p: usize,
        compiled: bool,
    ) -> Json {
        struct ModelOp {
            cfg: MachineConfig,
            layout: Layout,
            p: usize,
            compiled: bool,
        }
        fn model_json<W: Word, P: ObliviousProgram<W>>(
            pr: &P,
            cfg: MachineConfig,
            layout: Layout,
            p: usize,
            compiled: bool,
        ) -> Json {
            let (umm, dmm) = if compiled {
                let schedule = CompiledSchedule::compile(pr);
                (
                    compiled_profiled_umm(&schedule, cfg, layout, p),
                    compiled_profiled_dmm(&schedule, cfg, layout, p),
                )
            } else {
                (bulk_profiled_umm(pr, cfg, layout, p), bulk_profiled_dmm(pr, cfg, layout, p))
            };
            fn sim_json(
                stats: &umm_core::AccessStats,
                profile: Option<&umm_core::SimProfile>,
            ) -> Json {
                let mut o = Json::obj();
                o.set("stats", stats.to_json());
                o.set("profile", profile.map_or(Json::Null, umm_core::SimProfile::to_json));
                o
            }
            let mut o = Json::obj();
            o.set("machine", cfg.to_json());
            o.set(
                "lower_bound",
                theorems::lower_bound(
                    time_steps(pr) as u64,
                    p as u64,
                    cfg.width as u64,
                    cfg.latency as u64,
                ),
            );
            o.set("umm", sim_json(umm.stats(), umm.profile()));
            o.set("dmm", sim_json(dmm.stats(), dmm.profile()));
            o
        }
        impl ProgramOp<Json> for ModelOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> Json {
                model_json(&pr, self.cfg, self.layout, self.p, self.compiled)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> Json {
                model_json(&pr, self.cfg, self.layout, self.p, self.compiled)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> Json {
                model_json(&pr, self.cfg, self.layout, self.p, self.compiled)
            }
        }
        self.with_program(ModelOp { cfg, layout, p, compiled })
    }

    /// Run the program through [`GenericKernel`] on `device` with scheduler
    /// profiling, returning the [`gpu_sim::LaunchReport`] as JSON
    /// (per-worker block counts and busy/wait times, per-block timings).
    #[must_use]
    pub fn device_profile_json(
        &self,
        device: &Device,
        p: usize,
        layout: Layout,
        seed: u64,
    ) -> Json {
        struct LaunchOp<'d> {
            device: &'d Device,
            p: usize,
            layout: Layout,
            seed: u64,
        }
        fn launch_json<W: Word + Send + Sync, P: ObliviousProgram<W> + Sync>(
            pr: P,
            inputs: &[Vec<W>],
            device: &Device,
            p: usize,
            layout: Layout,
        ) -> Json {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let mut buf = arrange_inputs(&pr, &refs, layout);
            let report = launch_profiled(device, &GenericKernel::new(pr, layout), &mut buf, p);
            std::hint::black_box(buf);
            report.to_json()
        }
        impl<'d> ProgramOp<Json> for LaunchOp<'d> {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> Json {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                launch_json(pr, &inputs, self.device, self.p, self.layout)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> Json {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                launch_json(pr, &inputs, self.device, self.p, self.layout)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> Json {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                launch_json(pr, &inputs, self.device, self.p, self.layout)
            }
        }
        self.with_program(LaunchOp { device, p, layout, seed })
    }

    /// Execute `p` deterministic random instances on `engine` and return
    /// each instance's output words as raw bit patterns (`f32::to_bits`,
    /// zero-extended integers).  Bit-level equality across engines is the
    /// differential-testing contract: the SIMT device, the single bulk
    /// machine and the scalar reference must agree exactly.
    #[must_use]
    pub fn outputs_bits(
        &self,
        engine: Engine<'_>,
        p: usize,
        layout: Layout,
        seed: u64,
    ) -> Vec<Vec<u64>> {
        struct BitsOp<'d> {
            engine: Engine<'d>,
            p: usize,
            layout: Layout,
            seed: u64,
        }
        fn run_engine<W: Word + Send + Sync, P: ObliviousProgram<W> + Sync>(
            pr: P,
            inputs: &[Vec<W>],
            engine: Engine<'_>,
            p: usize,
            layout: Layout,
        ) -> Vec<Vec<W>> {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            match engine {
                Engine::Scalar => bulk_execute_cpu_reference(&pr, &refs),
                Engine::BulkMachine => bulk_execute(&pr, &refs, layout),
                Engine::Compiled { shards } => bulk_execute_compiled(&pr, &refs, layout, shards),
                Engine::Device(device) => {
                    let msize = pr.memory_words();
                    let or = pr.output_range();
                    let mut buf = arrange_inputs(&pr, &refs, layout);
                    launch(device, &GenericKernel::new(pr, layout), &mut buf, p);
                    extract(&buf, p, msize, layout, or)
                }
            }
        }
        impl<'d> ProgramOp<Vec<Vec<u64>>> for BitsOp<'d> {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                run_engine(pr, &inputs, self.engine, self.p, self.layout)
                    .into_iter()
                    .map(|lane| lane.into_iter().map(|w| u64::from(w.to_bits())).collect())
                    .collect()
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                run_engine(pr, &inputs, self.engine, self.p, self.layout)
                    .into_iter()
                    .map(|lane| lane.into_iter().map(u64::from).collect())
                    .collect()
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                run_engine(pr, &inputs, self.engine, self.p, self.layout)
            }
        }
        self.with_program(BitsOp { engine, p, layout, seed })
    }

    /// The bound size parameter (defaults already applied by
    /// [`Algo::parse`]) — what a serving client puts in its `JobKey`.
    #[must_use]
    pub fn size_param(&self) -> usize {
        match *self {
            Algo::PrefixSums(n)
            | Algo::Opt(n)
            | Algo::MatMul(n)
            | Algo::Transpose(n)
            | Algo::MatVec(n)
            | Algo::Fir(n)
            | Algo::Lcs(n)
            | Algo::EditDistance(n)
            | Algo::FloydWarshall(n)
            | Algo::SummedArea(n)
            | Algo::Xtea(n)
            | Algo::Horner(n)
            | Algo::Permute(n)
            | Algo::MatrixChain(n)
            | Algo::Lu(n)
            | Algo::PolyMul(n)
            | Algo::Pascal(n) => n,
            Algo::Fft(k) | Algo::Bitonic(k) | Algo::OeMergeSort(k) => k as usize,
        }
    }

    /// Input words per instance — what a serving submit must carry.
    #[must_use]
    pub fn input_words(&self) -> usize {
        struct InputOp;
        impl ProgramOp<usize> for InputOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, p: P) -> usize {
                p.input_range().len()
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, p: P) -> usize {
                p.input_range().len()
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, p: P) -> usize {
                p.input_range().len()
            }
        }
        self.with_program(InputOp)
    }

    /// The same deterministic input stream every engine run draws, as raw
    /// bit patterns: `random_inputs_bits(seed, p)[i]` is instance `i` of
    /// `outputs_bits(engine, p, layout, seed)`'s inputs, so wire-submitted
    /// results can be compared bit-for-bit against direct engine runs.
    #[must_use]
    pub fn random_inputs_bits(&self, seed: u64, p: usize) -> Vec<Vec<u64>> {
        struct GenOp {
            seed: u64,
            p: usize,
        }
        fn to_bits<W: Word>(inputs: Vec<Vec<W>>) -> Vec<Vec<u64>> {
            inputs.into_iter().map(|i| i.into_iter().map(Word::to_bits_u64).collect()).collect()
        }
        impl ProgramOp<Vec<Vec<u64>>> for GenOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                to_bits(random_f32_inputs(self.seed, self.p, pr.input_range().len()))
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                to_bits(random_u32_inputs(self.seed, self.p, pr.input_range().len()))
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                to_bits(random_u64_inputs(self.seed, self.p, pr.input_range().len()))
            }
        }
        self.with_program(GenOp { seed, p })
    }

    /// Execute instances given as raw bit patterns through the shared
    /// schedule caches + sharded replay — the serving daemon's execution
    /// path.  Outputs come back as bit patterns in instance order,
    /// bit-identical to `bulk_execute_compiled` on the same inputs.
    #[must_use]
    pub fn run_cached_bits(
        &self,
        caches: &ScheduleCaches,
        layout: Layout,
        inputs_bits: &[Vec<u64>],
        shards: usize,
    ) -> Vec<Vec<u64>> {
        struct CachedOp<'a> {
            caches: &'a ScheduleCaches,
            layout: Layout,
            inputs: &'a [Vec<u64>],
            shards: usize,
        }
        fn replay<W: Word, P: ObliviousProgram<W>>(
            cache: &ScheduleCache<W>,
            pr: &P,
            layout: Layout,
            inputs_bits: &[Vec<u64>],
            shards: usize,
        ) -> Vec<Vec<u64>> {
            let inputs: Vec<Vec<W>> = inputs_bits
                .iter()
                .map(|i| i.iter().map(|&b| W::from_bits_u64(b)).collect())
                .collect();
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let schedule = cache.get_or_compile(pr, layout);
            oblivious::run_sharded(&schedule, &refs, layout, shards)
                .into_iter()
                .map(|lane| lane.into_iter().map(Word::to_bits_u64).collect())
                .collect()
        }
        impl<'a> ProgramOp<Vec<Vec<u64>>> for CachedOp<'a> {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                replay(&self.caches.f32_cache, &pr, self.layout, self.inputs, self.shards)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                replay(&self.caches.u32_cache, &pr, self.layout, self.inputs, self.shards)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> Vec<Vec<u64>> {
                replay(&self.caches.u64_cache, &pr, self.layout, self.inputs, self.shards)
            }
        }
        self.with_program(CachedOp { caches, layout, inputs: inputs_bits, shards })
    }
}

/// Event timelines of one bulk run, one tracer per layer.  Exported
/// together by `bulkrun run --trace` as one Chrome-trace document with four
/// processes on a shared axis.
#[derive(Debug)]
pub struct TraceBundle {
    /// Per-step port/ALU traffic of the single `BulkMachine` engine.
    pub engine: Tracer,
    /// Per-round warp-dispatch spans of the UMM model simulation.
    pub umm: Tracer,
    /// Per-round warp-dispatch spans of the DMM model simulation.
    pub dmm: Tracer,
    /// Per-worker block/wait spans of the SIMT device launch (nanoseconds).
    pub device: Tracer,
}

impl Algo {
    /// Run the program once through every instrumented layer — the
    /// `BulkMachine` engine, the profiled UMM and DMM model simulations,
    /// and a profiled device launch — collecting each layer's timeline.
    #[must_use]
    pub fn trace_bundle(
        &self,
        cfg: MachineConfig,
        device: &Device,
        p: usize,
        layout: Layout,
        seed: u64,
    ) -> TraceBundle {
        struct BundleOp<'d> {
            cfg: MachineConfig,
            device: &'d Device,
            p: usize,
            layout: Layout,
            seed: u64,
        }
        fn bundle<W: Word + Send + Sync, P: ObliviousProgram<W> + Sync>(
            pr: P,
            inputs: &[Vec<W>],
            cfg: MachineConfig,
            device: &Device,
            p: usize,
            layout: Layout,
        ) -> TraceBundle {
            let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
            let engine = {
                let mut buf = arrange_inputs(&pr, &refs, layout);
                let mut m = BulkMachine::new(&mut buf, p, pr.memory_words(), layout);
                m.enable_tracing();
                pr.run(&mut m);
                m.take_tracer().unwrap_or_default()
            };
            let umm = bulk_traced_umm(&pr, cfg, layout, p).take_tracer().unwrap_or_default();
            let dmm = bulk_traced_dmm(&pr, cfg, layout, p).take_tracer().unwrap_or_default();
            let device = {
                let mut buf = arrange_inputs(&pr, &refs, layout);
                launch_profiled(device, &GenericKernel::new(pr, layout), &mut buf, p).to_trace()
            };
            TraceBundle { engine, umm, dmm, device }
        }
        impl<'d> ProgramOp<TraceBundle> for BundleOp<'d> {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> TraceBundle {
                let inputs = random_f32_inputs(self.seed, self.p, pr.input_range().len());
                bundle(pr, &inputs, self.cfg, self.device, self.p, self.layout)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> TraceBundle {
                let inputs = random_u32_inputs(self.seed, self.p, pr.input_range().len());
                bundle(pr, &inputs, self.cfg, self.device, self.p, self.layout)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> TraceBundle {
                let inputs = random_u64_inputs(self.seed, self.p, pr.input_range().len());
                bundle(pr, &inputs, self.cfg, self.device, self.p, self.layout)
            }
        }
        self.with_program(BundleOp { cfg, device, p, layout, seed })
    }

    /// The UMM model timeline alone — what `bulkrun timeline` renders.
    #[must_use]
    pub fn umm_timeline(&self, cfg: MachineConfig, layout: Layout, p: usize) -> Tracer {
        struct TimelineOp {
            cfg: MachineConfig,
            layout: Layout,
            p: usize,
        }
        impl ProgramOp<Tracer> for TimelineOp {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> Tracer {
                bulk_traced_umm(&pr, self.cfg, self.layout, self.p)
                    .take_tracer()
                    .unwrap_or_default()
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> Tracer {
                bulk_traced_umm(&pr, self.cfg, self.layout, self.p)
                    .take_tracer()
                    .unwrap_or_default()
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> Tracer {
                bulk_traced_umm(&pr, self.cfg, self.layout, self.p)
                    .take_tracer()
                    .unwrap_or_default()
            }
        }
        self.with_program(TimelineOp { cfg, layout, p })
    }

    /// HMM staging analysis (all-global vs staged) for a bulk execution.
    #[must_use]
    pub fn hmm_cost(&self, hmm: &umm_core::HmmConfig, p: usize) -> oblivious::HmmBulkCost {
        struct HmmOp<'a> {
            hmm: &'a umm_core::HmmConfig,
            p: usize,
        }
        impl<'a> ProgramOp<oblivious::HmmBulkCost> for HmmOp<'a> {
            fn call_f32<P: ObliviousProgram<f32> + Sync>(self, pr: P) -> oblivious::HmmBulkCost {
                oblivious::hmm_bulk_cost(&pr, self.hmm, self.p)
            }
            fn call_u32<P: ObliviousProgram<u32> + Sync>(self, pr: P) -> oblivious::HmmBulkCost {
                oblivious::hmm_bulk_cost(&pr, self.hmm, self.p)
            }
            fn call_u64<P: ObliviousProgram<u64> + Sync>(self, pr: P) -> oblivious::HmmBulkCost {
                oblivious::hmm_bulk_cost(&pr, self.hmm, self.p)
            }
        }
        self.with_program(HmmOp { hmm, p })
    }
}

/// A rank-2-style operation applied to whichever program type the registry
/// selects.
trait ProgramOp<R> {
    fn call_f32<P: ObliviousProgram<f32> + Sync>(self, p: P) -> R;
    fn call_u32<P: ObliviousProgram<u32> + Sync>(self, p: P) -> R;
    fn call_u64<P: ObliviousProgram<u64> + Sync>(self, p: P) -> R;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_names() {
        assert_eq!(Algo::parse("prefix-sums", Some(64)).unwrap(), Algo::PrefixSums(64));
        assert_eq!(Algo::parse("opt", None).unwrap(), Algo::Opt(16));
        assert_eq!(Algo::parse("xtea", Some(4)).unwrap(), Algo::Xtea(4));
    }

    #[test]
    fn parse_unknown_name_errors() {
        let e = Algo::parse("quicksort", None).unwrap_err();
        assert!(e.contains("unknown algorithm"));
    }

    #[test]
    fn parse_rejects_bad_sizes() {
        assert!(Algo::parse("opt", Some(2)).is_err());
        assert!(Algo::parse("prefix-sums", Some(0)).is_err());
    }

    #[test]
    fn every_catalog_entry_parses_and_reports() {
        for &(name, _, _) in CATALOG {
            let algo = Algo::parse(name, None).unwrap();
            assert!(algo.memory_words() > 0, "{name}");
            assert!(algo.time_steps() > 0, "{name}");
            assert!(!algo.display_name().is_empty(), "{name}");
            let trace = algo.trace();
            assert_eq!(trace.len(), algo.time_steps(), "{name}");
            assert!(trace.within_bounds(algo.memory_words()), "{name}");
        }
    }

    #[test]
    fn model_time_orders_layouts() {
        let algo = Algo::parse("prefix-sums", Some(256)).unwrap();
        let cfg = MachineConfig::new(32, 100);
        let row = algo.model_time(cfg, Model::Umm, Layout::RowWise, 1024);
        let col = algo.model_time(cfg, Model::Umm, Layout::ColumnWise, 1024);
        assert!(col < row);
    }

    #[test]
    fn size_param_reflects_defaults_and_overrides() {
        assert_eq!(Algo::parse("prefix-sums", None).unwrap().size_param(), 1024);
        assert_eq!(Algo::parse("fft", Some(3)).unwrap().size_param(), 3);
        assert_eq!(Algo::parse("xtea", Some(5)).unwrap().size_param(), 5);
    }

    /// The serving path (`run_cached_bits`) must agree bit-for-bit with a
    /// direct `bulk_execute_compiled` run on the same input stream, across
    /// all three word types, and compile each schedule exactly once.
    #[test]
    fn cached_bits_match_direct_compiled_runs() {
        for name in ["prefix-sums", "xtea", "pascal"] {
            let algo = Algo::parse(name, Some(8)).unwrap();
            let caches = ScheduleCaches::new();
            let inputs = algo.random_inputs_bits(7, 12);
            assert_eq!(inputs.len(), 12);
            assert!(inputs.iter().all(|i| i.len() == algo.input_words()), "{name}");
            let served = algo.run_cached_bits(&caches, Layout::ColumnWise, &inputs, 3);
            let direct =
                algo.outputs_bits(Engine::Compiled { shards: 1 }, 12, Layout::ColumnWise, 7);
            assert_eq!(served, direct, "{name}");
            assert_eq!(caches.totals(), CacheStats { hits: 0, compiles: 1 }, "{name}");
            let again = algo.run_cached_bits(&caches, Layout::ColumnWise, &inputs, 1);
            assert_eq!(again, direct, "{name}: shard count must not matter");
            assert_eq!(caches.totals(), CacheStats { hits: 1, compiles: 1 }, "{name}");
        }
    }

    #[test]
    fn run_bulk_smoke() {
        let algo = Algo::parse("bitonic", Some(4)).unwrap();
        let secs = algo.run_bulk(32, Layout::ColumnWise, 1);
        assert!(secs >= 0.0);
        let algo = Algo::parse("xtea", Some(2)).unwrap();
        assert!(algo.run_bulk(16, Layout::RowWise, 2) >= 0.0);
    }
}
