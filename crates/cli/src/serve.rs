//! Serving glue: the catalog-backed [`BatchExecutor`] behind
//! `bulkrun serve`.
//!
//! `bulkd` is catalog-agnostic — it moves word bit patterns.  This module
//! closes the loop: keys resolve through [`Algo::parse`], batches execute
//! via the shared [`ScheduleCaches`] + sharded compiled replay, and the
//! caches' hit/compile totals feed the daemon's `stats` snapshot.

use crate::registry::{Algo, ScheduleCaches};
use bulkd::{BatchExecutor, JobKey};
use std::sync::Arc;

/// Executes coalesced batches through the algorithm registry.
#[derive(Debug, Default)]
pub struct CatalogExecutor {
    caches: Arc<ScheduleCaches>,
    shards: usize,
}

impl CatalogExecutor {
    /// An executor replaying each batch over `shards` threads (clamped to
    /// at least one; batch-level parallelism comes from the worker pool).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { caches: Arc::new(ScheduleCaches::new()), shards: shards.max(1) }
    }

    /// The shared schedule caches (for tests asserting compile counts).
    #[must_use]
    pub fn caches(&self) -> &Arc<ScheduleCaches> {
        &self.caches
    }

    fn algo(key: &JobKey) -> Result<Algo, String> {
        Algo::parse(&key.algo, Some(key.size))
    }
}

/// Serving cap on the size parameter of exponent-style algorithms
/// (`fft`, `bitonic`, `oe-mergesort` take `k`, working on `2^k` words).
pub const MAX_SERVE_EXPONENT: usize = 16;

/// Serving cap on the size parameter of direct-`n` algorithms.
pub const MAX_SERVE_SIZE: usize = 4096;

/// Admission-time bound check, *before* [`Algo::parse`] runs: a size far
/// outside the catalog's supported range must bounce as a structured
/// `bad-request`, not allocate `2^k` words (or overflow) constructing
/// the program.
fn check_serve_size(key: &JobKey) -> Result<(), String> {
    let (cap, what) = match key.algo.as_str() {
        "fft" | "bitonic" | "oe-mergesort" => (MAX_SERVE_EXPONENT, "exponent k ="),
        _ => (MAX_SERVE_SIZE, "size"),
    };
    if key.size > cap {
        return Err(format!(
            "{} {what} {} exceeds the serving cap of {cap}; run it offline via `bulkrun run`",
            key.algo, key.size
        ));
    }
    Ok(())
}

impl BatchExecutor for CatalogExecutor {
    fn validate(&self, key: &JobKey) -> Result<usize, String> {
        check_serve_size(key)?;
        Ok(Self::algo(key)?.input_words())
    }

    fn execute(&self, key: &JobKey, inputs: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, String> {
        let algo = Self::algo(key)?;
        Ok(algo.run_cached_bits(&self.caches, key.layout, inputs, self.shards))
    }

    fn cache_stats(&self) -> (u64, u64) {
        let t = self.caches.totals();
        (t.hits, t.compiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Engine;
    use oblivious::Layout;

    #[test]
    fn validate_accepts_catalog_keys_and_rejects_unknown() {
        let ex = CatalogExecutor::new(1);
        let key = JobKey { algo: "prefix-sums".into(), size: 64, layout: Layout::ColumnWise };
        assert_eq!(ex.validate(&key).unwrap(), 64);
        let bad = JobKey { algo: "bogosort".into(), size: 64, layout: Layout::ColumnWise };
        assert!(ex.validate(&bad).unwrap_err().contains("unknown algorithm"));
        let bad = JobKey { algo: "opt".into(), size: 2, layout: Layout::ColumnWise };
        assert!(ex.validate(&bad).is_err());
    }

    #[test]
    fn validate_caps_sizes_outside_the_serving_range() {
        let ex = CatalogExecutor::new(1);
        // A huge exponent must bounce *before* 2^k construction.
        let huge = JobKey { algo: "fft".into(), size: 60, layout: Layout::ColumnWise };
        let e = ex.validate(&huge).unwrap_err();
        assert!(e.contains("serving cap"), "{e}");
        let huge = JobKey { algo: "prefix-sums".into(), size: 1 << 20, layout: Layout::RowWise };
        assert!(ex.validate(&huge).unwrap_err().contains("serving cap"));
        // The caps themselves are servable.
        let edge =
            JobKey { algo: "prefix-sums".into(), size: MAX_SERVE_SIZE, layout: Layout::ColumnWise };
        assert_eq!(ex.validate(&edge).unwrap(), MAX_SERVE_SIZE);
    }

    #[test]
    fn execute_matches_direct_engine_and_counts_cache_traffic() {
        let ex = CatalogExecutor::new(2);
        let key = JobKey { algo: "fir".into(), size: 16, layout: Layout::RowWise };
        let algo = Algo::parse("fir", Some(16)).unwrap();
        let inputs = algo.random_inputs_bits(3, 6);
        let out = ex.execute(&key, &inputs).unwrap();
        let direct = algo.outputs_bits(Engine::Compiled { shards: 1 }, 6, Layout::RowWise, 3);
        assert_eq!(out, direct);
        assert_eq!(ex.cache_stats(), (0, 1));
        let _ = ex.execute(&key, &inputs).unwrap();
        assert_eq!(ex.cache_stats(), (1, 1));
    }
}
