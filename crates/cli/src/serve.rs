//! Serving glue: the catalog-backed [`BatchExecutor`] behind
//! `bulkrun serve`.
//!
//! `bulkd` is catalog-agnostic — it moves word bit patterns.  This module
//! closes the loop: keys resolve through [`Algo::parse`], batches execute
//! via the shared [`ScheduleCaches`] + sharded compiled replay, and the
//! caches' hit/compile totals feed the daemon's `stats` snapshot.

use crate::registry::{Algo, ScheduleCaches};
use bulkd::{BatchExecutor, JobKey};
use std::sync::Arc;

/// Executes coalesced batches through the algorithm registry.
#[derive(Debug, Default)]
pub struct CatalogExecutor {
    caches: Arc<ScheduleCaches>,
    shards: usize,
}

impl CatalogExecutor {
    /// An executor replaying each batch over `shards` threads (clamped to
    /// at least one; batch-level parallelism comes from the worker pool).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { caches: Arc::new(ScheduleCaches::new()), shards: shards.max(1) }
    }

    /// The shared schedule caches (for tests asserting compile counts).
    #[must_use]
    pub fn caches(&self) -> &Arc<ScheduleCaches> {
        &self.caches
    }

    fn algo(key: &JobKey) -> Result<Algo, String> {
        Algo::parse(&key.algo, Some(key.size))
    }
}

impl BatchExecutor for CatalogExecutor {
    fn validate(&self, key: &JobKey) -> Result<usize, String> {
        Ok(Self::algo(key)?.input_words())
    }

    fn execute(&self, key: &JobKey, inputs: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, String> {
        let algo = Self::algo(key)?;
        Ok(algo.run_cached_bits(&self.caches, key.layout, inputs, self.shards))
    }

    fn cache_stats(&self) -> (u64, u64) {
        let t = self.caches.totals();
        (t.hits, t.compiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Engine;
    use oblivious::Layout;

    #[test]
    fn validate_accepts_catalog_keys_and_rejects_unknown() {
        let ex = CatalogExecutor::new(1);
        let key = JobKey { algo: "prefix-sums".into(), size: 64, layout: Layout::ColumnWise };
        assert_eq!(ex.validate(&key).unwrap(), 64);
        let bad = JobKey { algo: "bogosort".into(), size: 64, layout: Layout::ColumnWise };
        assert!(ex.validate(&bad).unwrap_err().contains("unknown algorithm"));
        let bad = JobKey { algo: "opt".into(), size: 2, layout: Layout::ColumnWise };
        assert!(ex.validate(&bad).is_err());
    }

    #[test]
    fn execute_matches_direct_engine_and_counts_cache_traffic() {
        let ex = CatalogExecutor::new(2);
        let key = JobKey { algo: "fir".into(), size: 16, layout: Layout::RowWise };
        let algo = Algo::parse("fir", Some(16)).unwrap();
        let inputs = algo.random_inputs_bits(3, 6);
        let out = ex.execute(&key, &inputs).unwrap();
        let direct = algo.outputs_bits(Engine::Compiled { shards: 1 }, 6, Layout::RowWise, 3);
        assert_eq!(out, direct);
        assert_eq!(ex.cache_stats(), (0, 1));
        let _ = ex.execute(&key, &inputs).unwrap();
        assert_eq!(ex.cache_stats(), (1, 1));
    }
}
