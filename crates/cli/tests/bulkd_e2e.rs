//! End-to-end battery for the batch-serving daemon: real TCP, real worker
//! pool, real schedule cache.
//!
//! The headline acceptance test is the paper's economics made observable:
//! 512 independent single-instance submits of the same `(algo, n, layout)`
//! key must coalesce into large batches (mean executed `p ≥ 32`), compile
//! the schedule exactly once, and return outputs bit-identical to a direct
//! `bulk_execute_compiled` run over the same inputs.

use cli::registry::{Algo, Engine, ScheduleCaches};
use cli::serve::CatalogExecutor;
use cli::RUN_SEED;
use obs::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

fn start_server(
    workers: usize,
    max_batch: usize,
    max_queue: usize,
    flush_after_ms: u64,
) -> (String, std::thread::JoinHandle<Result<Json, String>>, Arc<ScheduleCaches>) {
    let executor = CatalogExecutor::new(1);
    let caches = Arc::clone(executor.caches());
    let cfg = bulkd::ServerConfig {
        addr: "127.0.0.1:0".into(),
        node_id: None,
        workers,
        max_batch,
        max_queue,
        flush_after_ms,
        trace_path: None,
        wal: None,
        instrument: true,
        recorder_path: None,
        repl: None,
        promoted: false,
    };
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        bulkd::serve(&cfg, Box::new(executor), move |addr| {
            tx.send(addr).expect("addr channel");
        })
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("server never became ready");
    (addr.to_string(), handle, caches)
}

/// ISSUE acceptance: 512 clients' worth of single-instance submits of one
/// key coalesce (mean batch p ≥ 32), compile once, and match the direct
/// compiled engine bit-for-bit.
#[test]
fn coalesces_single_instance_submits_compiles_once_and_matches_direct() {
    const JOBS: usize = 512;
    const CLIENTS: usize = 64;
    const PER_CLIENT: usize = JOBS / CLIENTS;

    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let layout = oblivious::Layout::ColumnWise;
    let key = bulkd::JobKey { algo: "prefix-sums".into(), size: 64, layout };
    // The same deterministic stream `bulkrun submit --count 512` would draw.
    let inputs = algo.random_inputs_bits(RUN_SEED, JOBS);
    let direct = algo.outputs_bits(Engine::Compiled { shards: 1 }, JOBS, layout, RUN_SEED);

    // A flush window comfortably wider than a batch's execution keeps the
    // closed-loop clients in lock-step: every round all 64 in-flight
    // submits land in one batch.
    let (addr, server, caches) = start_server(2, JOBS, 4 * JOBS, 30);

    let batch_p_sum = AtomicU64::new(0);
    let outputs: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let (addr, key, inputs) = (&addr, &key, &inputs);
                let batch_p_sum = &batch_p_sum;
                scope.spawn(move || {
                    let mut client = bulkd::Client::connect(addr).expect("connect");
                    let mut outs = Vec::with_capacity(PER_CLIENT);
                    for j in 0..PER_CLIENT {
                        let i = c * PER_CLIENT + j;
                        let one = std::slice::from_ref(&inputs[i]);
                        let ok = client.submit(key, one, false).expect("submit");
                        assert_eq!(ok.outputs.len(), 1);
                        batch_p_sum.fetch_add(ok.batch_p, Ordering::Relaxed);
                        outs.push(ok.outputs.into_iter().next().unwrap());
                    }
                    outs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });

    // Bit-identity: reassemble per-submit outputs in instance order.
    let served: Vec<Vec<u64>> = outputs.into_iter().flatten().collect();
    assert_eq!(served, direct, "served outputs diverge from bulk_execute_compiled");

    // Coalescing: the mean executed batch p each job observed.
    let mean_p = batch_p_sum.load(Ordering::Relaxed) as f64 / JOBS as f64;
    assert!(mean_p >= 32.0, "mean executed batch p {mean_p:.1} < 32 — coalescing failed");

    // One compile total, everything after a hit — from the cache itself…
    let totals = caches.totals();
    assert_eq!(totals.compiles, 1, "schedule compiled more than once: {totals:?}");

    // …and as reported over the wire.  The cache is touched once per
    // executed batch, so hits + compiles == batches.
    let mut c = bulkd::Client::connect(&addr).expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(stats.path("schedule_cache.compiles").unwrap().as_i64(), Some(1));
    assert_eq!(stats.path("admission.accepted_jobs").unwrap().as_i64(), Some(JOBS as i64));
    let batches = stats.path("execution.batches").unwrap().as_i64().unwrap();
    assert!(batches >= 1 && batches <= (JOBS / 32) as i64, "batches = {batches}");
    assert_eq!((totals.hits + totals.compiles) as i64, batches);
    if batches > 1 {
        assert!(stats.path("schedule_cache.hit_rate").unwrap().as_f64().unwrap() > 0.0);
    }

    let final_stats = drain_and_join(&addr, server);
    assert_eq!(final_stats.path("execution.completed_jobs").unwrap().as_i64(), Some(JOBS as i64));
    assert_eq!(final_stats.path("admission.rejected_jobs").unwrap().as_i64(), Some(0));
}

fn drain_and_join(addr: &str, server: std::thread::JoinHandle<Result<Json, String>>) -> Json {
    let mut c = bulkd::Client::connect(addr).expect("connect for drain");
    c.drain().expect("drain");
    server.join().expect("server panicked").expect("serve returned an error")
}

/// Admission control: a submit that exceeds `max_queue` must bounce
/// promptly with an `overloaded` response, never hang.
#[test]
fn over_limit_submit_is_rejected_promptly_with_overloaded() {
    // A one-hour flush window: if admission control let the job in, the
    // submit would block far past the test's patience.
    let (addr, server, _caches) = start_server(1, 1024, 4, 3_600_000);
    let algo = Algo::parse("xtea", None).unwrap();
    let key = bulkd::JobKey {
        algo: "xtea".into(),
        size: algo.size_param(),
        layout: oblivious::Layout::ColumnWise,
    };
    let inputs = algo.random_inputs_bits(1, 8); // 8 instances > max_queue 4

    let mut client = bulkd::Client::connect(&addr).expect("connect");
    let t0 = Instant::now();
    match client.submit(&key, &inputs, false) {
        Err(bulkd::ClientError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(t0.elapsed() < Duration::from_secs(5), "overload rejection was not prompt");

    // Within the limit the job is admitted (it rides the drain flush).
    let small = algo.random_inputs_bits(2, 2);
    let submit = {
        let addr = addr.clone();
        let key = key.clone();
        std::thread::spawn(move || {
            let mut c = bulkd::Client::connect(&addr).expect("connect");
            c.submit(&key, &small, false).expect("in-limit submit")
        })
    };
    // Give the submit time to enqueue, then drain: the pending group must
    // flush and complete, not be abandoned.
    std::thread::sleep(Duration::from_millis(200));
    let final_stats = drain_and_join(&addr, server);
    let ok = submit.join().expect("submitter panicked");
    assert_eq!(ok.outputs.len(), 2);
    assert_eq!(ok.batch_p, 2);
    assert_eq!(final_stats.path("admission.rejected_jobs").unwrap().as_i64(), Some(1));
    assert_eq!(final_stats.path("admission.rejected_instances").unwrap().as_i64(), Some(8));
    assert_eq!(final_stats.path("execution.completed_jobs").unwrap().as_i64(), Some(1));
}

/// Graceful shutdown: drain completes accepted work, rejects new submits,
/// and the final stats balance.
#[test]
fn drain_completes_accepted_work_and_rejects_new_submits() {
    let (addr, server, _caches) = start_server(2, 64, 1024, 10);
    let algo = Algo::parse("fir", Some(16)).unwrap();
    let key = bulkd::JobKey { algo: "fir".into(), size: 16, layout: oblivious::Layout::RowWise };
    let direct =
        algo.outputs_bits(Engine::Compiled { shards: 1 }, 6, oblivious::Layout::RowWise, 9);

    let mut client = bulkd::Client::connect(&addr).expect("connect");
    let inputs = algo.random_inputs_bits(9, 6);
    let ok = client.submit(&key, &inputs, true).expect("pre-drain submit");
    assert_eq!(ok.outputs, direct);
    // `"timing": true` echoes the per-stage breakdown with the reply.
    let timing = ok.timing.expect("timing echo was requested");
    for stage in ["journal_us", "queue_us", "dispatch_us", "exec_us", "finalize_us", "total_us"] {
        assert!(timing.path(stage).is_some(), "timing echo lacks {stage}: {timing:?}");
    }
    let total = timing.path("total_us").unwrap().as_i64().unwrap();
    let exec = timing.path("exec_us").unwrap().as_i64().unwrap();
    assert!(total >= exec, "total {total} < exec {exec}");

    let final_stats = drain_and_join(&addr, server);

    // The old connection outlives the accept loop; its submits now bounce.
    match client.submit(&key, &inputs, false) {
        Err(bulkd::ClientError::Rejected { kind, .. }) => assert_eq!(kind, "draining"),
        other => panic!("expected a draining rejection, got {other:?}"),
    }

    // Final accounting balances: one accepted job, one completed job (the
    // post-drain reject is invisible to the *final* snapshot, which was
    // taken at serve() exit before the late submit).
    let submitted = final_stats.path("admission.submitted_jobs").unwrap().as_i64().unwrap();
    let accepted = final_stats.path("admission.accepted_jobs").unwrap().as_i64().unwrap();
    let rejected = final_stats.path("admission.rejected_jobs").unwrap().as_i64().unwrap();
    let completed = final_stats.path("execution.completed_jobs").unwrap().as_i64().unwrap();
    let failed = final_stats.path("execution.failed_jobs").unwrap().as_i64().unwrap();
    assert_eq!(submitted, accepted + rejected);
    assert_eq!(accepted, completed + failed);
    assert_eq!((accepted, completed, failed), (1, 1, 0));
    assert_eq!(final_stats.path("queue.draining"), Some(&Json::Bool(true)));
    assert_eq!(final_stats.path("queue.queued_instances").unwrap().as_i64(), Some(0));
}

/// Degenerate submits — zero instances, or a size outside the catalog's
/// serving range — bounce with a structured `bad-request` on a connection
/// that stays usable, and the rejection is counted.
#[test]
fn zero_instance_and_out_of_range_submits_bounce_structurally() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, server, _caches) = start_server(1, 64, 1024, 5);
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    let mut roundtrip = |stream: &mut std::net::TcpStream, req: &str| {
        stream.write_all(req.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        Json::parse(line.trim()).expect("response parses")
    };

    // Zero instances: well-formed at the protocol layer, refused at admission.
    let resp = roundtrip(
        &mut stream,
        r#"{"cmd":"submit","algo":"prefix-sums","size":64,"layout":"col","inputs":[]}"#,
    );
    assert_eq!(resp.path("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.path("error").unwrap().as_str(), Some("bad-request"));
    assert!(resp.path("detail").unwrap().as_str().unwrap().contains("no instances"));

    // A size beyond the serving cap must bounce before any 2^k allocation.
    let resp = roundtrip(
        &mut stream,
        r#"{"cmd":"submit","algo":"fft","size":60,"layout":"col","inputs":[["0x0000000000000001"]]}"#,
    );
    assert_eq!(resp.path("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.path("error").unwrap().as_str(), Some("bad-request"));
    assert!(resp.path("detail").unwrap().as_str().unwrap().contains("serving cap"));

    // The server survives both rejections and still serves real work.
    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let key = bulkd::JobKey {
        algo: "prefix-sums".into(),
        size: 64,
        layout: oblivious::Layout::ColumnWise,
    };
    let inputs = algo.random_inputs_bits(5, 1);
    let submit = {
        let addr = addr.clone();
        let key = key.clone();
        std::thread::spawn(move || {
            let mut c = bulkd::Client::connect(&addr).expect("connect");
            c.submit(&key, &inputs, false).expect("valid submit")
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let final_stats = drain_and_join(&addr, server);
    let ok = submit.join().expect("submitter panicked");
    assert_eq!(ok.outputs.len(), 1);
    assert_eq!(final_stats.path("admission.rejected_jobs").unwrap().as_i64(), Some(2));
    assert_eq!(final_stats.path("admission.accepted_jobs").unwrap().as_i64(), Some(1));
    assert_eq!(final_stats.path("execution.completed_jobs").unwrap().as_i64(), Some(1));
}

/// Framing under adversarial chunking on a real socket: a submit dribbled
/// one byte at a time and two submits coalesced into a single TCP segment
/// must both frame, parse, and execute correctly.
#[test]
fn dribbled_and_coalesced_submits_frame_correctly_on_a_real_socket() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, server, _caches) = start_server(1, 64, 1024, 5);
    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let layout = oblivious::Layout::ColumnWise;
    let key = bulkd::JobKey { algo: "prefix-sums".into(), size: 64, layout };

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let read_outputs = |reader: &mut BufReader<std::net::TcpStream>| {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        let resp = Json::parse(reply.trim()).expect("reply parses");
        assert_eq!(resp.path("ok"), Some(&Json::Bool(true)), "{}", resp.to_pretty());
        resp.path("outputs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|o| bulkd::protocol::words_from_json(o).expect("outputs decode"))
            .collect::<Vec<Vec<u64>>>()
    };

    // One byte at a time: the server must reassemble the line from up to
    // `len` separate reads.
    let inputs = algo.random_inputs_bits(11, 1);
    let direct = algo.outputs_bits(Engine::Compiled { shards: 1 }, 1, layout, 11);
    let mut line = bulkd::Request::Submit { key: key.clone(), inputs, timing: false }
        .to_json()
        .to_compact()
        .into_bytes();
    line.push(b'\n');
    for b in &line {
        stream.write_all(std::slice::from_ref(b)).expect("write byte");
        stream.flush().expect("flush");
    }
    assert_eq!(read_outputs(&mut reader), direct, "dribbled submit served wrong outputs");

    // Two complete submits coalesced into one segment: both must be
    // framed out of a single read and answered in order.
    let pair_inputs = algo.random_inputs_bits(12, 2);
    let pair_direct = algo.outputs_bits(Engine::Compiled { shards: 1 }, 2, layout, 12);
    let mut seg = Vec::new();
    for i in &pair_inputs {
        let mut l =
            bulkd::Request::Submit { key: key.clone(), inputs: vec![i.clone()], timing: false }
                .to_json()
                .to_compact()
                .into_bytes();
        l.push(b'\n');
        seg.extend_from_slice(&l);
    }
    stream.write_all(&seg).expect("write coalesced segment");
    stream.flush().expect("flush");
    for want in &pair_direct {
        assert_eq!(
            read_outputs(&mut reader),
            vec![want.clone()],
            "coalesced submit served wrong outputs"
        );
    }
    drop(reader);
    drop(stream);

    let final_stats = drain_and_join(&addr, server);
    assert_eq!(final_stats.path("admission.accepted_jobs").unwrap().as_i64(), Some(3));
    assert_eq!(final_stats.path("execution.completed_jobs").unwrap().as_i64(), Some(3));
    // Clean EOFs between requests are not disconnect events.
    assert_eq!(final_stats.path("connections.disconnects").unwrap().as_i64(), Some(0));
}

/// Client disconnects mid-submit (partial line, then EOF) and mid-reply
/// (reply finished after the peer is gone) leave the server balanced —
/// accepted == completed + failed, nothing queued, nothing leaked — with
/// both drops counted by phase.  The server must survive to drain.
#[test]
fn disconnects_mid_submit_and_mid_reply_stay_balanced_and_counted() {
    use std::io::Write;
    // A wide flush window holds the second pipelined job long enough that
    // its reply definitively lands after the peer has vanished.
    let (addr, server, _caches) = start_server(1, 64, 1024, 700);
    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let layout = oblivious::Layout::ColumnWise;
    let key = bulkd::JobKey { algo: "prefix-sums".into(), size: 64, layout };

    // Mid-submit: half a request line, then the peer vanishes.  The
    // server sees EOF with bytes still buffered in the framer.
    {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.write_all(br#"{"cmd":"submit","algo":"prefix-"#).expect("write partial line");
        s.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(100)); // let the bytes land first
    }

    // Mid-reply: pipeline two submits, never read a reply, and close
    // while the first reply sits unread in our receive buffer — that
    // close is an immediate RST, so the server's second reply write
    // (due ~700ms later, at the next flush deadline) must fail.
    let inputs = algo.random_inputs_bits(21, 2);
    {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.set_nodelay(true).expect("nodelay");
        let mut seg = Vec::new();
        for i in &inputs {
            let mut l =
                bulkd::Request::Submit { key: key.clone(), inputs: vec![i.clone()], timing: false }
                    .to_json()
                    .to_compact()
                    .into_bytes();
            l.push(b'\n');
            seg.extend_from_slice(&l);
        }
        s.write_all(&seg).expect("write pipelined submits");
        s.flush().expect("flush");
        // Job 1 flushes at ~700ms and its reply lands here unread; job 2
        // is enqueued after it and completes at ~1400ms.
        std::thread::sleep(Duration::from_millis(1100));
    }
    // Let job 2 complete and the server hit the broken pipe before the
    // final snapshot.
    std::thread::sleep(Duration::from_millis(1500));

    let final_stats = drain_and_join(&addr, server);
    let submitted = final_stats.path("admission.submitted_jobs").unwrap().as_i64().unwrap();
    let accepted = final_stats.path("admission.accepted_jobs").unwrap().as_i64().unwrap();
    let rejected = final_stats.path("admission.rejected_jobs").unwrap().as_i64().unwrap();
    let completed = final_stats.path("execution.completed_jobs").unwrap().as_i64().unwrap();
    let failed = final_stats.path("execution.failed_jobs").unwrap().as_i64().unwrap();
    assert_eq!(submitted, accepted + rejected, "admission ledger unbalanced");
    assert_eq!(accepted, completed + failed, "execution ledger unbalanced");
    assert_eq!((accepted, completed, failed), (2, 2, 0));
    assert_eq!(final_stats.path("queue.queued_instances").unwrap().as_i64(), Some(0));

    let disconnects = final_stats.path("connections.disconnects").unwrap().as_i64().unwrap();
    let mid_line = final_stats.path("connections.disconnects_mid_line").unwrap().as_i64().unwrap();
    let mid_reply =
        final_stats.path("connections.disconnects_mid_reply").unwrap().as_i64().unwrap();
    assert_eq!(mid_line, 1, "partial-line EOF was not counted");
    assert!(mid_reply >= 1, "undeliverable reply was not counted");
    assert_eq!(disconnects, mid_line + mid_reply);
}

/// Malformed lines are answered with structured protocol errors (carrying
/// the parser's byte offset) and counted — the connection stays usable.
#[test]
fn protocol_errors_are_structured_and_nonfatal() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, server, _caches) = start_server(1, 64, 1024, 5);
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream.write_all(b"{\"cmd\": \"submit\", \"algo\": }\n").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let resp = Json::parse(line.trim()).expect("error response parses");
    assert_eq!(resp.path("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.path("error").unwrap().as_str(), Some("protocol"));
    let detail = resp.path("detail").unwrap().as_str().unwrap();
    assert!(detail.contains("byte"), "parse error lacks a byte offset: {detail}");

    // The same connection still serves well-formed requests.
    stream.write_all(b"{\"cmd\": \"status\"}\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let resp = Json::parse(line.trim()).expect("status parses");
    assert_eq!(resp.path("ok"), Some(&Json::Bool(true)));

    let final_stats = drain_and_join(&addr, server);
    assert_eq!(final_stats.path("admission.protocol_errors").unwrap().as_i64(), Some(1));
}

/// Observability verbs end-to-end: after serving real jobs, `metrics`
/// renders Prometheus text whose stage-histogram mass equals the number of
/// completed jobs, `dump` returns a readable event tail, the `stats`
/// snapshot carries a per-key section, and the flight-recorder dump file
/// is valid Chrome-trace JSON after drain.
#[test]
fn metrics_dump_and_per_key_sections_reflect_served_work() {
    let dir = std::env::temp_dir().join(format!("bulkd-obs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let recorder = dir.join("flight.json");

    let executor = CatalogExecutor::new(1);
    let cfg = bulkd::ServerConfig {
        addr: "127.0.0.1:0".into(),
        node_id: None,
        workers: 2,
        max_batch: 64,
        max_queue: 1024,
        flush_after_ms: 5,
        trace_path: None,
        wal: None,
        instrument: true,
        recorder_path: Some(recorder.clone()),
        repl: None,
        promoted: false,
    };
    let (tx, rx) = mpsc::channel();
    let server = std::thread::spawn(move || {
        bulkd::serve(&cfg, Box::new(executor), move |addr| {
            tx.send(addr).expect("addr channel");
        })
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("server ready").to_string();

    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let hot = bulkd::JobKey {
        algo: "prefix-sums".into(),
        size: 64,
        layout: oblivious::Layout::ColumnWise,
    };
    let cold = bulkd::cold_key(&hot);
    const JOBS: usize = 8;
    let mut client = bulkd::Client::connect(&addr).expect("connect");
    for i in 0..JOBS {
        let inputs = algo.random_inputs_bits(i as u64, 1);
        let key = if i % 4 == 3 { &cold } else { &hot };
        client.submit(key, &inputs, false).expect("submit");
    }

    // Per-key stats: both keys show up with their served totals.
    let stats = client.stats().expect("stats");
    let hot_jobs = stats.path(&format!("per_key.{hot}.served_jobs"));
    let cold_jobs = stats.path(&format!("per_key.{cold}.served_jobs"));
    assert_eq!(hot_jobs.and_then(Json::as_i64), Some(6), "{}", stats.to_pretty());
    assert_eq!(cold_jobs.and_then(Json::as_i64), Some(2), "{}", stats.to_pretty());

    // Prometheus text: stage-histogram mass == completed jobs, per-key
    // families carry the key label.
    let text = client.metrics().expect("metrics");
    assert!(text.contains("# TYPE bulkd_stage_latency_us histogram"), "{text}");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("bulkd_stage_latency_us_count{stage=\"total\"}") {
            assert_eq!(rest.trim().parse::<u64>().unwrap(), JOBS as u64, "{line}");
        }
    }
    assert!(
        text.contains("bulkd_stage_latency_us_count{stage=\"total\"}"),
        "no total-stage histogram in:\n{text}"
    );
    assert!(text.contains(&format!("key=\"{hot}\"")), "{text}");
    assert!(
        text.lines().any(
            |l| l.starts_with("bulkd_jobs_completed_total") && l.ends_with(&format!(" {JOBS}"))
        ),
        "{text}"
    );

    // Dump verb: live flight-recorder tail mentions the stage events.
    let dump = client.dump().expect("dump");
    assert!(dump.path("recorded").unwrap().as_i64().unwrap() > 0, "{}", dump.to_pretty());
    let tail = dump.path("tail").unwrap().as_str().unwrap();
    for stage in ["accepted", "enqueued", "executed", "reply_written"] {
        assert!(tail.contains(stage), "dump tail lacks {stage}:\n{tail}");
    }

    drain_and_join(&addr, server);

    // Drain wrote the recorder files; the Chrome trace parses as JSON.
    let trace_text = std::fs::read_to_string(&recorder).expect("recorder file exists");
    let trace = Json::parse(&trace_text).expect("recorder dump is valid JSON");
    assert!(!trace.path("traceEvents").unwrap().as_arr().unwrap().is_empty(), "empty chrome trace");
    assert!(recorder.with_extension("txt").exists(), "text tail missing");
    std::fs::remove_dir_all(&dir).ok();
}
