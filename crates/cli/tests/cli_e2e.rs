//! End-to-end: the compiled `bulkrun` binary, driven as a subprocess.

use std::process::Command;

fn bulkrun(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_bulkrun")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (out, _, ok) = bulkrun(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn list_prints_catalog() {
    let (out, _, ok) = bulkrun(&["list"]);
    assert!(ok);
    assert!(out.contains("prefix-sums"));
    assert!(out.contains("opt"));
    assert!(out.contains("pascal"));
}

#[test]
fn model_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["model", "prefix-sums", "--size", "64", "--p", "1024"]);
    assert!(ok, "{out}");
    assert!(out.contains("column-wise"));
    assert!(out.contains("lower bound"));
}

#[test]
fn hmm_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["hmm", "matmul", "--size", "24"]);
    assert!(ok, "{out}");
    assert!(out.contains("verdict"));
}

#[test]
fn run_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["run", "horner", "--size", "8", "--p", "64"]);
    assert!(ok, "{out}");
    assert!(out.contains("wall clock"));
}

/// `run --profile PATH` must emit a parseable `RunReport` whose model,
/// device, and engine sections carry the profiling payload (round counts,
/// address-group histogram, per-worker block timings).
#[test]
fn run_profile_emits_a_valid_report() {
    let path = std::env::temp_dir().join(format!("bulkrun_e2e_{}.json", std::process::id()));
    let path_str = path.to_str().expect("temp path is utf-8");
    let (out, err, ok) =
        bulkrun(&["run", "prefix-sums", "--size", "32", "--p", "256", "--profile", path_str]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("profile"), "run output should mention the profile path: {out}");

    let text = std::fs::read_to_string(&path).expect("profile file written");
    std::fs::remove_file(&path).ok();
    let report = obs::RunReport::parse(&text).expect("profile parses as a RunReport");
    assert_eq!(report.tool(), "bulkrun run");

    let j = report.json();
    let rounds = j
        .path("model.umm.stats.rounds")
        .and_then(obs::Json::as_i64)
        .expect("model.umm.stats.rounds present");
    assert!(rounds > 0, "simulated rounds must be counted");
    let hist_total = j
        .path("model.umm.profile.address_group_histogram.total")
        .and_then(obs::Json::as_i64)
        .expect("address-group histogram present");
    assert!(hist_total > 0);
    let workers =
        j.path("device.workers").and_then(obs::Json::as_arr).expect("per-worker timings present");
    assert!(!workers.is_empty());
    let blocks: i64 = workers
        .iter()
        .map(|w| w.path("blocks").and_then(obs::Json::as_i64).expect("worker block count"))
        .sum();
    let total_blocks =
        j.path("device.blocks").and_then(obs::Json::as_i64).expect("device block total");
    assert_eq!(blocks, total_blocks, "workers must account for every block");
}

/// `run --trace PATH` into a not-yet-existing directory must create it and
/// emit Chrome Trace Event Format JSON whose UMM warp spans reconcile
/// exactly with the `--profile` report's pipeline-stage accounting.
#[test]
fn run_trace_emits_chrome_json_reconciling_with_profile() {
    let dir = std::env::temp_dir().join(format!("bulkrun_trace_{}/nested", std::process::id()));
    let trace_path = dir.join("t.json");
    let profile_path = dir.join("p.json");
    let (out, err, ok) = bulkrun(&[
        "run",
        "prefix-sums",
        "--size",
        "8",
        "--p",
        "64",
        "--trace",
        trace_path.to_str().unwrap(),
        "--profile",
        profile_path.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("trace"), "run output should mention the trace path: {out}");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written in created dir");
    let chrome = obs::Json::parse(&text).expect("trace parses as JSON");
    let events = chrome.path("traceEvents").and_then(obs::Json::as_arr).expect("traceEvents");
    assert_eq!(
        chrome.path("dropped_events").and_then(obs::Json::as_i64),
        Some(0),
        "small run must not overflow the ring buffer"
    );
    // Four processes announce themselves via metadata events.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| e.path("name").and_then(obs::Json::as_str) == Some("process_name"))
        .map(|e| e.path("args.name").and_then(obs::Json::as_str).unwrap())
        .collect();
    assert_eq!(process_names, ["engine", "model.umm", "model.dmm", "device"]);

    // The model.umm process is pid 2; its complete spans with cat "umm" are
    // the warp-dispatch spans, and their total duration must equal the
    // profiled pipeline_stages count exactly (ticks_per_us = 1 => Int µs).
    let umm_span_total: i64 = events
        .iter()
        .filter(|e| {
            e.path("pid").and_then(obs::Json::as_i64) == Some(2)
                && e.path("ph").and_then(obs::Json::as_str) == Some("X")
                && e.path("cat").and_then(obs::Json::as_str) == Some("umm")
        })
        .map(|e| e.path("dur").and_then(obs::Json::as_i64).expect("integer duration"))
        .sum();
    let profile = std::fs::read_to_string(&profile_path).expect("profile written");
    let report = obs::RunReport::parse(&profile).expect("profile parses");
    let stages = report
        .json()
        .path("model.umm.stats.pipeline_stages")
        .and_then(obs::Json::as_i64)
        .expect("pipeline_stages present");
    assert_eq!(umm_span_total, stages, "trace and profile must agree on busy time");
    std::fs::remove_dir_all(dir.parent().unwrap()).ok();
}

#[test]
fn timeline_command_end_to_end() {
    let (out, err, ok) = bulkrun(&["timeline", "prefix-sums", "--size", "16", "--p", "64"]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("warp 0"), "{out}");
    assert!(out.contains('█') || out.contains('▒'), "{out}");
}

/// `compare` exits zero on a self-diff and non-zero when a deterministic
/// metric drifts beyond the threshold.
#[test]
fn compare_gates_regressions_end_to_end() {
    let dir = std::env::temp_dir().join(format!("bulkrun_cmp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pa = dir.join("a.json");
    let pb = dir.join("b.json");
    let (out, err, ok) =
        bulkrun(&["run", "horner", "--size", "8", "--p", "64", "--profile", pa.to_str().unwrap()]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    std::fs::copy(&pa, &pb).unwrap();

    let (out, err, ok) = bulkrun(&["compare", pa.to_str().unwrap(), pb.to_str().unwrap()]);
    assert!(ok, "self-diff must be clean\nstdout: {out}\nstderr: {err}");
    assert!(out.contains("0 regression(s)"), "{out}");

    // Perturb a deterministic engine metric: gates even with a threshold.
    let text = std::fs::read_to_string(&pa).unwrap();
    assert!(text.contains("\"loads\": "), "report carries engine.loads");
    std::fs::write(&pb, text.replace("\"loads\": ", "\"loads\": 9")).unwrap();
    let (out, err, ok) =
        bulkrun(&["compare", pa.to_str().unwrap(), pb.to_str().unwrap(), "--threshold", "5"]);
    assert!(!ok, "perturbed deterministic metric must gate\nstdout: {out}");
    assert!(err.contains("regressed beyond"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_profile_without_value_is_rejected() {
    let (_, err, ok) = bulkrun(&["run", "horner", "--profile"]);
    assert!(!ok);
    assert!(err.contains("--profile"), "stderr should name the flag: {err}");
}

#[test]
fn bad_invocations_fail_with_stderr() {
    let (_, err, ok) = bulkrun(&["run", "bogosort"]);
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
    let (_, err, ok) = bulkrun(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}
