//! End-to-end: the compiled `bulkrun` binary, driven as a subprocess.

use std::process::Command;

fn bulkrun(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_bulkrun"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (out, _, ok) = bulkrun(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn list_prints_catalog() {
    let (out, _, ok) = bulkrun(&["list"]);
    assert!(ok);
    assert!(out.contains("prefix-sums"));
    assert!(out.contains("opt"));
    assert!(out.contains("pascal"));
}

#[test]
fn model_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["model", "prefix-sums", "--size", "64", "--p", "1024"]);
    assert!(ok, "{out}");
    assert!(out.contains("column-wise"));
    assert!(out.contains("lower bound"));
}

#[test]
fn hmm_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["hmm", "matmul", "--size", "24"]);
    assert!(ok, "{out}");
    assert!(out.contains("verdict"));
}

#[test]
fn run_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["run", "horner", "--size", "8", "--p", "64"]);
    assert!(ok, "{out}");
    assert!(out.contains("wall clock"));
}

#[test]
fn bad_invocations_fail_with_stderr() {
    let (_, err, ok) = bulkrun(&["run", "bogosort"]);
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
    let (_, err, ok) = bulkrun(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}
