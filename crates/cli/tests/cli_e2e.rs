//! End-to-end: the compiled `bulkrun` binary, driven as a subprocess.

use std::process::Command;

fn bulkrun(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_bulkrun")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (out, _, ok) = bulkrun(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
}

#[test]
fn list_prints_catalog() {
    let (out, _, ok) = bulkrun(&["list"]);
    assert!(ok);
    assert!(out.contains("prefix-sums"));
    assert!(out.contains("opt"));
    assert!(out.contains("pascal"));
}

#[test]
fn model_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["model", "prefix-sums", "--size", "64", "--p", "1024"]);
    assert!(ok, "{out}");
    assert!(out.contains("column-wise"));
    assert!(out.contains("lower bound"));
}

#[test]
fn hmm_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["hmm", "matmul", "--size", "24"]);
    assert!(ok, "{out}");
    assert!(out.contains("verdict"));
}

#[test]
fn run_command_end_to_end() {
    let (out, _, ok) = bulkrun(&["run", "horner", "--size", "8", "--p", "64"]);
    assert!(ok, "{out}");
    assert!(out.contains("wall clock"));
}

/// `run --profile PATH` must emit a parseable `RunReport` whose model,
/// device, and engine sections carry the profiling payload (round counts,
/// address-group histogram, per-worker block timings).
#[test]
fn run_profile_emits_a_valid_report() {
    let path = std::env::temp_dir().join(format!("bulkrun_e2e_{}.json", std::process::id()));
    let path_str = path.to_str().expect("temp path is utf-8");
    let (out, err, ok) =
        bulkrun(&["run", "prefix-sums", "--size", "32", "--p", "256", "--profile", path_str]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("profile"), "run output should mention the profile path: {out}");

    let text = std::fs::read_to_string(&path).expect("profile file written");
    std::fs::remove_file(&path).ok();
    let report = obs::RunReport::parse(&text).expect("profile parses as a RunReport");
    assert_eq!(report.tool(), "bulkrun run");

    let j = report.json();
    let rounds = j
        .path("model.umm.stats.rounds")
        .and_then(obs::Json::as_i64)
        .expect("model.umm.stats.rounds present");
    assert!(rounds > 0, "simulated rounds must be counted");
    let hist_total = j
        .path("model.umm.profile.address_group_histogram.total")
        .and_then(obs::Json::as_i64)
        .expect("address-group histogram present");
    assert!(hist_total > 0);
    let workers =
        j.path("device.workers").and_then(obs::Json::as_arr).expect("per-worker timings present");
    assert!(!workers.is_empty());
    let blocks: i64 = workers
        .iter()
        .map(|w| w.path("blocks").and_then(obs::Json::as_i64).expect("worker block count"))
        .sum();
    let total_blocks =
        j.path("device.blocks").and_then(obs::Json::as_i64).expect("device block total");
    assert_eq!(blocks, total_blocks, "workers must account for every block");
}

#[test]
fn run_profile_without_value_is_rejected() {
    let (_, err, ok) = bulkrun(&["run", "horner", "--profile"]);
    assert!(!ok);
    assert!(err.contains("--profile"), "stderr should name the flag: {err}");
}

#[test]
fn bad_invocations_fail_with_stderr() {
    let (_, err, ok) = bulkrun(&["run", "bogosort"]);
    assert!(!ok);
    assert!(err.contains("unknown algorithm"));
    let (_, err, ok) = bulkrun(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}
