//! Differential lockdown of the compiled-schedule replay path.
//!
//! For every catalog algorithm, under both memory layouts, the compiled
//! schedule replayed over {1, 2, 7} shards must reproduce the interpreter
//! (`Engine::BulkMachine`) *bitwise*: outputs, `BulkMetrics` counters, and
//! every deterministic leaf of the `RunReport` JSON.  Shard counts are
//! chosen so the even-split, ragged-split and single-shard merge paths are
//! all on the tested path (`p = 33` is divisible by none of them except 1).
//!
//! The negative half: the schedule compiler must *refuse* algorithms whose
//! address trace is input-dependent (`algorithms::nonoblivious`), with an
//! error naming the program and the failure mode — a compiled schedule
//! replays one fixed trace for all inputs, so compiling a non-oblivious
//! program would be silently wrong.

use cli::registry::{Algo, Engine, CATALOG};
use oblivious::{compile_from_traces, CompileError, Layout};

/// Per-algorithm problem size — mirrors `differential.rs` so the two
/// batteries cover the same program shapes.
const SIZES: &[(&str, usize)] = &[
    ("prefix-sums", 64),
    ("opt", 8),
    ("matmul", 8),
    ("transpose", 8),
    ("matvec", 8),
    ("fft", 5),
    ("fir", 64),
    ("bitonic", 5),
    ("oe-mergesort", 5),
    ("lcs", 8),
    ("edit-distance", 8),
    ("floyd-warshall", 6),
    ("summed-area", 8),
    ("xtea", 4),
    ("horner", 16),
    ("permute", 64),
    ("matrix-chain", 8),
    ("lu", 8),
    ("poly-mul", 16),
    ("pascal", 12),
];

const P: usize = 33;
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn sweep_size(name: &str) -> usize {
    SIZES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .unwrap_or_else(|| panic!("catalog algorithm {name:?} has no entry in SIZES — add one"))
}

#[test]
fn sweep_covers_the_whole_catalog() {
    for (name, _, _) in CATALOG {
        sweep_size(name);
    }
    assert_eq!(CATALOG.len(), SIZES.len());
}

fn check(name: &str) {
    let algo = Algo::parse(name, Some(sweep_size(name))).expect("catalog name parses");
    let seed = 0xD1FF_0000 ^ name.len() as u64;
    for layout in Layout::all() {
        let interp = algo.outputs_bits(Engine::BulkMachine, P, layout, seed);
        let interp_metrics = algo.bulk_metrics(P, layout, seed);
        for shards in SHARD_COUNTS {
            let compiled = algo.outputs_bits(Engine::Compiled { shards }, P, layout, seed);
            assert_eq!(compiled, interp, "{name} {layout} shards={shards}: outputs");
        }
        // Replay counters are shard-count independent and interpreter-exact.
        let compiled_metrics = algo.bulk_metrics_compiled(P, layout, seed);
        assert_eq!(compiled_metrics, interp_metrics, "{name} {layout}: BulkMetrics");
    }
}

macro_rules! compiled_differential {
    ($($test:ident => $name:literal;)*) => {
        $(#[test]
        fn $test() {
            check($name);
        })*
    };
}

compiled_differential! {
    prefix_sums => "prefix-sums";
    opt => "opt";
    matmul => "matmul";
    transpose => "transpose";
    matvec => "matvec";
    fft => "fft";
    fir => "fir";
    bitonic => "bitonic";
    oe_mergesort => "oe-mergesort";
    lcs => "lcs";
    edit_distance => "edit-distance";
    floyd_warshall => "floyd-warshall";
    summed_area => "summed-area";
    xtea => "xtea";
    horner => "horner";
    permute => "permute";
    matrix_chain => "matrix-chain";
    lu => "lu";
    poly_mul => "poly-mul";
    pascal => "pascal";
}

/// The compiled-mode `RunReport` must be leaf-identical to the interpreter
/// report: same key structure, same deterministic values.  Only timing
/// leaves (informational, never gated) may differ.
#[test]
fn compiled_run_report_matches_interpreter_report() {
    for name in ["prefix-sums", "xtea", "pascal"] {
        let algo = Algo::parse(name, Some(sweep_size(name))).unwrap();
        let interp = cli::run_report(&algo, P, Layout::ColumnWise, 7, 0.5, false);
        let compiled = cli::run_report(&algo, P, Layout::ColumnWise, 7, 0.25, true);
        let cfg = obs::diff::DiffConfig::default();
        let diff = obs::diff::diff_reports(interp.json(), compiled.json(), &cfg);
        assert_eq!(
            diff.regression_count(),
            0,
            "{name}: compiled report drifts from interpreter report:\n{}",
            diff.summary()
        );
    }
}

/// The compiler refuses input-dependent algorithms: binary search's probe
/// sequence and quicksort's partition writes both depend on the data, so
/// `compile_from_traces` must return `CompileError::NotOblivious` with a
/// message a user can act on.
#[test]
fn nonoblivious_programs_are_refused_by_the_compiler() {
    let sorted: Vec<f64> = (0..64).map(f64::from).collect();
    let targets = vec![3.0, 40.0, 63.0, -1.0];
    let err = compile_from_traces::<f32, _>(
        "binary-search",
        sorted.len(),
        |t| algorithms::nonoblivious::binary_search_trace(&sorted, *t),
        &targets,
    )
    .expect_err("binary search must not compile");
    match &err {
        CompileError::NotOblivious { name, .. } => assert_eq!(name, "binary-search"),
        other => panic!("expected NotOblivious, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("binary-search"), "{msg}");
    assert!(msg.contains("not oblivious"), "{msg}");
    assert!(msg.contains("input-dependent"), "{msg}");

    let arrays: Vec<Vec<f64>> =
        vec![vec![3.0, 1.0, 2.0, 0.0], vec![0.0, 1.0, 2.0, 3.0], vec![2.0, 2.0, 2.0, 2.0]];
    let err = compile_from_traces::<f32, _>(
        "partition",
        4,
        |a: &Vec<f64>| algorithms::nonoblivious::partition_trace(a),
        &arrays,
    )
    .expect_err("Lomuto partition must not compile");
    assert!(matches!(err, CompileError::NotOblivious { .. }), "{err:?}");
}
