//! Differential test across execution engines, for every algorithm in the
//! registry.
//!
//! For each catalog entry, `p` randomized instances are executed by four
//! engines — the scalar reference, the single `BulkMachine`, the SIMT
//! device with its full worker pool (`Device::titan_like()`), and the same
//! device degraded to one worker (`Device::single_worker()`) — under both
//! memory layouts.  All outputs must agree *bitwise* (`f32::to_bits`,
//! zero-extended integers): oblivious programs execute the same scalar
//! operation sequence per lane regardless of engine, so even floating-point
//! results must be identical down to the last bit.
//!
//! `p = 33` is deliberately not a multiple of the warp or block size, so
//! partial warps and ragged final blocks are on the tested path.

use cli::registry::{Algo, Engine, CATALOG};
use gpu_sim::Device;
use oblivious::Layout;

/// Per-algorithm problem size for the sweep — small enough that the whole
/// catalog runs in seconds under `cargo test` (unoptimised), large enough
/// that every program exercises its full control structure.
const SIZES: &[(&str, usize)] = &[
    ("prefix-sums", 64),
    ("opt", 8),
    ("matmul", 8),
    ("transpose", 8),
    ("matvec", 8),
    ("fft", 5),
    ("fir", 64),
    ("bitonic", 5),
    ("oe-mergesort", 5),
    ("lcs", 8),
    ("edit-distance", 8),
    ("floyd-warshall", 6),
    ("summed-area", 8),
    ("xtea", 4),
    ("horner", 16),
    ("permute", 64),
    ("matrix-chain", 8),
    ("lu", 8),
    ("poly-mul", 16),
    ("pascal", 12),
];

const P: usize = 33;

fn sweep_size(name: &str) -> usize {
    SIZES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .unwrap_or_else(|| panic!("catalog algorithm {name:?} has no entry in SIZES — add one"))
}

/// Every catalog entry must be covered by the sweep (and vice versa), so a
/// newly registered algorithm cannot silently skip differential testing.
#[test]
fn sweep_covers_the_whole_catalog() {
    for (name, _, _) in CATALOG {
        sweep_size(name);
    }
    for (name, _) in SIZES {
        assert!(
            CATALOG.iter().any(|(n, _, _)| n == name),
            "SIZES lists {name:?}, which is not in the catalog"
        );
    }
}

fn check(name: &str) {
    let algo = Algo::parse(name, Some(sweep_size(name))).expect("catalog name parses");
    let titan = Device::titan_like();
    let single = Device::single_worker();
    let seed = 0xD1FF_0000 ^ name.len() as u64;
    for layout in Layout::all() {
        let scalar = algo.outputs_bits(Engine::Scalar, P, layout, seed);
        assert_eq!(scalar.len(), P, "{name} {layout}: one output per instance");
        let bulk = algo.outputs_bits(Engine::BulkMachine, P, layout, seed);
        assert_eq!(bulk, scalar, "{name} {layout}: BulkMachine vs scalar reference");
        let dev = algo.outputs_bits(Engine::Device(&titan), P, layout, seed);
        assert_eq!(dev, scalar, "{name} {layout}: parallel device vs scalar reference");
        let dev1 = algo.outputs_bits(Engine::Device(&single), P, layout, seed);
        assert_eq!(dev1, scalar, "{name} {layout}: single-worker device vs scalar reference");
    }
}

macro_rules! differential {
    ($($test:ident => $name:literal;)*) => {
        $(#[test]
        fn $test() {
            check($name);
        })*
    };
}

differential! {
    prefix_sums => "prefix-sums";
    opt => "opt";
    matmul => "matmul";
    transpose => "transpose";
    matvec => "matvec";
    fft => "fft";
    fir => "fir";
    bitonic => "bitonic";
    oe_mergesort => "oe-mergesort";
    lcs => "lcs";
    edit_distance => "edit-distance";
    floyd_warshall => "floyd-warshall";
    summed_area => "summed-area";
    xtea => "xtea";
    horner => "horner";
    permute => "permute";
    matrix_chain => "matrix-chain";
    lu => "lu";
    poly_mul => "poly-mul";
    pascal => "pascal";
}

/// The macro list above must stay in sync with the catalog: one generated
/// test per entry.
#[test]
fn one_test_per_catalog_entry() {
    assert_eq!(CATALOG.len(), SIZES.len());
}
