//! Failover's correctness argument, tested head-on: recovery is replay,
//! and replay is deterministic.  A promoted standby re-executes the jobs
//! its replicated WAL says were incomplete; because every catalog
//! algorithm is *oblivious* (its memory-access sequence is data- and
//! schedule-independent), two independent recoveries of the same log
//! must produce bit-identical outputs — even across different shard
//! counts.  This is what makes WAL shipping sufficient for replication:
//! no output state needs to move, only the journal.

use bulkd::journal::{self, Journal, JournalConfig};
use bulkd::protocol::JobKey;
use cli::registry::Algo;
use cli::serve::CatalogExecutor;
use oblivious::Layout;
use wal::FsyncPolicy;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("replay-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Re-queued job outputs in re-queue order: `(job_id, instance outputs)`.
type JobOutputs = Vec<(u64, Vec<Vec<u64>>)>;

/// One full recovery pass over a scanned log: replay the journal, then
/// execute every re-queued job through a fresh executor.  Returns the
/// recovery bookkeeping plus per-job outputs, in re-queue order.
fn recover_and_execute(records: &[wal::Record], shards: usize) -> (journal::Recovery, JobOutputs) {
    let recovery = journal::replay(records).unwrap();
    let exec = CatalogExecutor::new(shards);
    let outputs = recovery
        .requeue
        .iter()
        .map(|job| {
            let out = bulkd::BatchExecutor::execute(&exec, &job.key, &job.inputs).unwrap();
            (job.id, out)
        })
        .collect();
    (recovery, outputs)
}

#[test]
fn two_independent_recoveries_of_one_log_are_bit_identical() {
    let dir = temp_dir("log");
    let (journal, _recovery) = Journal::open(&JournalConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        segment_bytes: 4 << 20,
    })
    .unwrap();

    // A submit sequence spanning algorithms, sizes, and layouts.  Job 2
    // completes (recovery must skip it); the rest stay incomplete, like
    // in-flight work at the moment a primary dies.
    let specs: &[(&str, Option<usize>, Layout, usize)] = &[
        ("prefix-sums", Some(8), Layout::ColumnWise, 5),
        ("bitonic", Some(3), Layout::RowWise, 4),
        ("xtea", None, Layout::ColumnWise, 3),
        ("prefix-sums", Some(32), Layout::RowWise, 2),
    ];
    for (id, (name, size, layout, count)) in specs.iter().enumerate() {
        let a = Algo::parse(name, *size).unwrap();
        let key = JobKey { algo: (*name).into(), size: a.size_param(), layout: *layout };
        let inputs = a.random_inputs_bits(0xD15EA5E + id as u64, *count);
        journal.log_submit(id as u64 + 1, &key, &inputs).unwrap();
        if id == 1 {
            let exec = CatalogExecutor::new(1);
            let out = bulkd::BatchExecutor::execute(&exec, &key, &inputs).unwrap();
            journal.log_complete(id as u64 + 1, Ok(&out)).unwrap();
        }
    }
    drop(journal);

    let scan = wal::scan(&dir).unwrap();
    assert!(!scan.records.is_empty());

    // Two passes over the *same* records, with different shard counts —
    // the partitioning of a batch across replay threads must not leak
    // into the outputs.
    let (rec_a, out_a) = recover_and_execute(&scan.records, 1);
    let (rec_b, out_b) = recover_and_execute(&scan.records, 2);

    assert_eq!(rec_a.requeue.len(), 3, "one job completed, three to re-queue");
    assert_eq!(rec_a.already_completed, 1);
    assert_eq!(rec_a.next_job_id, rec_b.next_job_id);
    assert_eq!(rec_a.recovered_records, rec_b.recovered_records);
    let ids_a: Vec<u64> = rec_a.requeue.iter().map(|j| j.id).collect();
    let ids_b: Vec<u64> = rec_b.requeue.iter().map(|j| j.id).collect();
    assert_eq!(ids_a, vec![1, 3, 4], "re-queue preserves submit order");
    assert_eq!(ids_a, ids_b);
    assert_eq!(out_a, out_b, "recovery outputs diverged across independent passes");

    let _ = std::fs::remove_dir_all(&dir);
}
