//! End-to-end battery for the consistent-hash routing tier: real TCP
//! backends, a real router, real schedule caches.
//!
//! The headline acceptance test drives 64 concurrent clients through the
//! router over a 2-node cluster and proves the tier preserves the paper's
//! economics: every submit is acked exactly once with outputs
//! bit-identical to a direct `Engine::Compiled` run, each coalescing key
//! compiles exactly once *cluster-wide* (key affinity keeps a key's whole
//! stream on one node), and each node still builds large batches (mean
//! executed `p ≥ 16`).  A second battery kills one backend mid-load and
//! proves the router reroutes to the survivor with the accounting intact
//! and no client ever hanging.

use cli::registry::{Algo, Engine, ScheduleCaches, CATALOG};
use cli::serve::CatalogExecutor;
use cli::RUN_SEED;
use obs::Json;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Satellite: hash-ring properties over the real catalog.
// ---------------------------------------------------------------------------

/// Every `(algo, n, layout)` coalescing key the catalog can actually
/// serve, across the default size and a few alternates.
fn catalog_keys() -> Vec<String> {
    let mut keys = BTreeSet::new();
    for (name, _, _) in CATALOG {
        for size in [None, Some(8), Some(16), Some(32)] {
            let Ok(a) = Algo::parse(name, size) else { continue };
            for layout in [oblivious::Layout::ColumnWise, oblivious::Layout::RowWise] {
                let key = bulkd::JobKey { algo: (*name).to_string(), size: a.size_param(), layout };
                keys.insert(key.to_string());
            }
        }
    }
    let keys: Vec<String> = keys.into_iter().collect();
    assert!(keys.len() >= 40, "catalog key population too small: {}", keys.len());
    keys
}

/// Ring placement over the real catalog is deterministic, spreads load,
/// and a node join moves at most ~2/N of the keys — never shuffling a
/// key between two surviving nodes.
#[test]
fn ring_places_the_catalog_deterministically_with_bounded_movement() {
    let keys = catalog_keys();
    for n in [2usize, 3, 4, 8] {
        let base: Vec<String> = (0..n).map(|i| format!("node-{i}")).collect();
        let ring_a = router::HashRing::new(&base, 64).unwrap();
        let ring_b = router::HashRing::new(&base, 64).unwrap();
        let mut counts = vec![0usize; n];
        for k in &keys {
            assert_eq!(ring_a.node_of(k), ring_b.node_of(k), "{k}: placement not deterministic");
            counts[ring_a.node_of(k)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c * 10 >= keys.len() / n, "node {i} of {n} owns only {c} keys: {counts:?}");
        }

        // Join: only keys falling to the newcomer move.
        let mut grown = base.clone();
        grown.push("node-new".into());
        let after = router::HashRing::new(&grown, 64).unwrap();
        let moved = keys
            .iter()
            .filter(|k| ring_a.names()[ring_a.node_of(k)] != after.names()[after.node_of(k)])
            .count();
        let bound = (2.0 / n as f64 * keys.len() as f64).ceil() as usize;
        assert!(moved <= bound, "join at {n} nodes moved {moved}/{} keys (> {bound})", keys.len());
        assert!(moved > 0, "join at {n} nodes moved nothing");
        for k in &keys {
            let now = &after.names()[after.node_of(k)];
            if now != "node-new" {
                assert_eq!(&ring_a.names()[ring_a.node_of(k)], now, "{k} moved between survivors");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// In-process cluster: 2 bulkd nodes + router, 64 clients.
// ---------------------------------------------------------------------------

type ServeHandle = std::thread::JoinHandle<Result<Json, String>>;

fn start_node(node_id: &str, flush_after_ms: u64) -> (String, ServeHandle, Arc<ScheduleCaches>) {
    let executor = CatalogExecutor::new(1);
    let caches = Arc::clone(executor.caches());
    let cfg = bulkd::ServerConfig {
        addr: "127.0.0.1:0".into(),
        node_id: Some(node_id.to_string()),
        workers: 2,
        max_batch: 512,
        max_queue: 8192,
        flush_after_ms,
        trace_path: None,
        wal: None,
        instrument: true,
        recorder_path: None,
        repl: None,
        promoted: false,
    };
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        bulkd::serve(&cfg, Box::new(executor), move |addr| {
            tx.send(addr).expect("addr channel");
        })
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("node never became ready");
    (addr.to_string(), handle, caches)
}

/// ISSUE acceptance: 64 clients over 4 keys through the router over 2
/// nodes — zero lost or duplicated acks, outputs bit-identical to
/// `Engine::Compiled`, exactly one compile per key cluster-wide, and
/// per-node mean executed batch p ≥ 16.
#[test]
fn cluster_serves_bit_identically_with_one_compile_per_key_and_large_batches() {
    const CLIENTS_PER_KEY: usize = 16;
    const SUBMITS_PER_CLIENT: usize = 2;
    const INSTANCES: usize = 4;
    const PER_KEY: usize = CLIENTS_PER_KEY * SUBMITS_PER_CLIENT * INSTANCES; // 128

    // Four catalog keys whose ring placement (over ids n1/n2, 64 vnodes)
    // splits 2/2 — verified below against the ring itself, so a hash
    // change fails loudly here instead of starving one node silently.
    let specs: Vec<(&str, usize)> =
        vec![("prefix-sums", 64), ("bitonic", 4), ("fft", 8), ("fir", 16)];
    let ids = vec!["n1".to_string(), "n2".to_string()];
    let ring = router::HashRing::new(&ids, 64).unwrap();
    let keys: Vec<bulkd::JobKey> = specs
        .iter()
        .map(|(name, size)| bulkd::JobKey {
            algo: (*name).to_string(),
            size: *size,
            layout: oblivious::Layout::ColumnWise,
        })
        .collect();
    let owners: Vec<usize> = keys.iter().map(|k| ring.node_of(&k.to_string())).collect();
    assert_eq!(owners.iter().filter(|&&o| o == 0).count(), 2, "keys must split 2/2: {owners:?}");

    let (addr1, node1, caches1) = start_node("n1", 30);
    let (addr2, node2, caches2) = start_node("n2", 30);
    let rcfg = router::RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: vec![
            router::Backend { id: "n1".into(), addr: addr1 },
            router::Backend { id: "n2".into(), addr: addr2 },
        ],
        vnodes: 64,
        probe_interval_ms: 100,
        probe_timeout_ms: 200,
        ..Default::default()
    };
    let (tx, rx) = mpsc::channel();
    let router_thread = std::thread::spawn(move || {
        router::run_router(&rcfg, move |addr| {
            tx.send(addr).expect("router addr channel");
        })
    });
    let router_addr =
        rx.recv_timeout(Duration::from_secs(10)).expect("router never became ready").to_string();

    // Per key: the deterministic input stream and the direct compiled run
    // every served output must match bit-for-bit.
    let algos: Vec<Algo> =
        specs.iter().map(|(name, size)| Algo::parse(name, Some(*size)).unwrap()).collect();
    let inputs: Vec<Vec<Vec<u64>>> =
        algos.iter().map(|a| a.random_inputs_bits(RUN_SEED, PER_KEY)).collect();
    let direct: Vec<Vec<Vec<u64>>> = algos
        .iter()
        .map(|a| {
            a.outputs_bits(
                Engine::Compiled { shards: 1 },
                PER_KEY,
                oblivious::Layout::ColumnWise,
                RUN_SEED,
            )
        })
        .collect();

    // 64 clients (16 per key), each submitting its instance slices
    // through the router.  `served[key][instance]` is set exactly once —
    // a duplicate or missing ack fails the unwrap/assert below.
    let served: Vec<Mutex<Vec<Option<Vec<u64>>>>> =
        (0..keys.len()).map(|_| Mutex::new(vec![None; PER_KEY])).collect();
    std::thread::scope(|scope| {
        for (ki, key) in keys.iter().enumerate() {
            for c in 0..CLIENTS_PER_KEY {
                let (router_addr, inputs, served) = (&router_addr, &inputs[ki], &served[ki]);
                scope.spawn(move || {
                    let mut client = bulkd::Client::connect(router_addr).expect("connect router");
                    for s in 0..SUBMITS_PER_CLIENT {
                        let lo = (c * SUBMITS_PER_CLIENT + s) * INSTANCES;
                        let ok = client
                            .submit(key, &inputs[lo..lo + INSTANCES], false)
                            .expect("submit through router");
                        assert_eq!(ok.outputs.len(), INSTANCES, "{key}: wrong ack arity");
                        let mut g = served.lock().unwrap();
                        for (off, out) in ok.outputs.into_iter().enumerate() {
                            let slot = &mut g[lo + off];
                            assert!(slot.is_none(), "{key}: instance {} acked twice", lo + off);
                            *slot = Some(out);
                        }
                    }
                });
            }
        }
    });

    // Zero lost, zero duplicated, bit-identical to the compiled engine.
    for (ki, key) in keys.iter().enumerate() {
        let got: Vec<Vec<u64>> = served[ki]
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, o)| o.clone().unwrap_or_else(|| panic!("{key}: instance {i} never acked")))
            .collect();
        assert_eq!(got, direct[ki], "{key}: served outputs diverge from Engine::Compiled");
    }

    // One compile per key *cluster-wide*, each on the key's ring owner.
    let per_node_keys = |node: usize| owners.iter().filter(|&&o| o == node).count() as u64;
    assert_eq!(caches1.totals().compiles, per_node_keys(0), "n1 compiled off-owner keys");
    assert_eq!(caches2.totals().compiles, per_node_keys(1), "n2 compiled off-owner keys");

    // The merged live views through the router.
    let mut client = bulkd::Client::connect(&router_addr).expect("connect router");
    let status = client.status().expect("status");
    assert_eq!(status.path("role").and_then(Json::as_str), Some("router"));
    assert_eq!(status.path("nodes_up").and_then(Json::as_i64), Some(2));
    assert_eq!(status.path("protocol_version").and_then(Json::as_i64), Some(1));

    let stats = client.stats().expect("stats");
    let total_jobs = (keys.len() * CLIENTS_PER_KEY * SUBMITS_PER_CLIENT) as i64;
    assert_eq!(stats.path("tool").and_then(Json::as_str), Some("bulk-router"));
    assert_eq!(stats.path("router.submits").and_then(Json::as_i64), Some(total_jobs));
    assert_eq!(stats.path("router.acked").and_then(Json::as_i64), Some(total_jobs));
    assert_eq!(stats.path("router.relayed_errors").and_then(Json::as_i64), Some(0));
    assert_eq!(stats.path("router.unavailable").and_then(Json::as_i64), Some(0));
    assert_eq!(stats.path("router.rerouted").and_then(Json::as_i64), Some(0));
    // Satellite: node identity and protocol version ride the snapshots.
    assert_eq!(stats.path("backends.n1.node_id").and_then(Json::as_str), Some("n1"));
    assert_eq!(stats.path("backends.n2.node_id").and_then(Json::as_str), Some("n2"));
    assert_eq!(stats.path("backends.n1.protocol_version").and_then(Json::as_i64), Some(1));
    assert_eq!(stats.path("cluster.distinct_keys").and_then(Json::as_i64), Some(4));
    assert_eq!(
        stats.path("cluster.schedule_cache.compiles").and_then(Json::as_i64),
        Some(keys.len() as i64),
        "{}",
        stats.to_pretty()
    );

    let text = client.metrics().expect("metrics");
    assert!(text.contains(&format!("router_submits_total {total_jobs}\n")), "{text}");
    assert!(text.contains("router_backend_up{node=\"n1\"} 1\n"), "{text}");
    assert!(text.contains("bulkd_node_schedule_compiles_total{node=\"n1\"} 2\n"), "{text}");
    assert!(text.contains("bulkd_cluster_schedule_compiles_total 4\n"), "{text}");
    assert!(text.contains("bulkd_cluster_distinct_keys 4\n"), "{text}");

    // Drain fans out to every node and merges the final snapshots.
    let drained = client.drain().expect("drain through router");
    assert_eq!(drained.path("drained"), Some(&Json::Bool(true)));
    assert_eq!(drained.path("cluster.completed_jobs").and_then(Json::as_i64), Some(total_jobs));
    assert_eq!(drained.path("cluster.rejected_jobs").and_then(Json::as_i64), Some(0));
    let factor = drained.path("cluster.coalesce_factor").and_then(Json::as_f64).unwrap();
    assert!(factor > 1.5, "cluster coalesce factor {factor} ≤ 1.5 — batching broke");
    for node in ["n1", "n2"] {
        let mean_p = drained
            .path(&format!("backends.{node}.coalescing.mean_batch_p"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{node}: no mean_batch_p in {}", drained.to_pretty()));
        assert!(mean_p >= 16.0, "{node}: mean executed batch p {mean_p:.1} < 16");
    }

    // The router's return value is the same drained document; everything
    // joins cleanly (the drain fan-out shut the backends down).
    let final_snap = router_thread.join().expect("router panicked").expect("run_router failed");
    assert_eq!(final_snap.path("drained"), Some(&Json::Bool(true)));
    assert_eq!(final_snap.path("router.acked").and_then(Json::as_i64), Some(total_jobs));
    node1.join().expect("n1 panicked").expect("n1 serve failed");
    node2.join().expect("n2 panicked").expect("n2 serve failed");
}

// ---------------------------------------------------------------------------
// Subprocess cluster: kill one backend mid-load.
// ---------------------------------------------------------------------------

/// Spawn a `bulkrun` child and scrape one stdout value per prefix in
/// `prefixes`, in order.  Stdout then drains on a reaper thread.
fn spawn_scraped_many(args: &[&str], prefixes: &[&str]) -> (Child, Vec<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bulkrun"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bulkrun");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut values = Vec::new();
    let mut line = String::new();
    while values.len() < prefixes.len()
        && reader.read_line(&mut line).expect("read child stdout") > 0
    {
        if let Some(rest) = line.trim().strip_prefix(prefixes[values.len()]) {
            values.push(rest.to_string());
        }
        line.clear();
    }
    assert_eq!(values.len(), prefixes.len(), "child never printed {prefixes:?}");
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, values)
}

/// Spawn a `bulkrun` child and scrape the bound address off its stdout
/// line starting with `prefix`.  Stdout then drains on a reaper thread.
fn spawn_scraped(args: &[&str], prefix: &str) -> (Child, String) {
    let (child, mut values) = spawn_scraped_many(args, &[prefix]);
    (child, values.pop().expect("one scraped value"))
}

fn poll_router_stats(addr: &str, deadline: Duration, mut pred: impl FnMut(&Json) -> bool) -> Json {
    let cfg = bulkd::ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_secs(10)),
    };
    let t0 = Instant::now();
    loop {
        if let Ok(mut c) = bulkd::Client::connect_with(addr, &cfg) {
            if let Ok(s) = c.stats() {
                if pred(&s) {
                    return s;
                }
                assert!(t0.elapsed() < deadline, "stats never converged: {}", s.to_pretty());
            }
        }
        assert!(t0.elapsed() < deadline, "router at {addr} unreachable");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// ISSUE acceptance (failure arm): kill one backend mid-load.  The router
/// must mark it down, reroute its keys to the survivor with outputs still
/// bit-identical, never hang a client, and keep the ledger balanced
/// through the final merged drain.
#[test]
fn killing_a_backend_mid_load_reroutes_and_stays_balanced() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 30;
    const TOTAL: usize = CLIENTS * PER_CLIENT;
    const ACKS_BEFORE_KILL: usize = 60;

    // The victim key's ring owner over ids {n1, n2} is n1 — assert it, so
    // the kill provably severs the owner mid-stream.
    let key = bulkd::JobKey {
        algo: "prefix-sums".into(),
        size: 64,
        layout: oblivious::Layout::ColumnWise,
    };
    let ids = vec!["n1".to_string(), "n2".to_string()];
    let ring = router::HashRing::new(&ids, 64).unwrap();
    assert_eq!(ring.names()[ring.node_of(&key.to_string())], "n1", "victim must own the key");

    let (mut victim, addr1) = spawn_scraped(
        &["serve", "--addr", "127.0.0.1:0", "--node-id", "n1", "--flush-after-ms", "5"],
        "bulkd listening on ",
    );
    let (mut survivor, addr2) = spawn_scraped(
        &["serve", "--addr", "127.0.0.1:0", "--node-id", "n2", "--flush-after-ms", "5"],
        "bulkd listening on ",
    );
    let backends = format!("n1={addr1},n2={addr2}");
    let (mut router_child, router_addr) = spawn_scraped(
        &[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--backends",
            &backends,
            "--probe-interval-ms",
            "50",
            "--probe-timeout-ms",
            "150",
            "--down-after",
            "2",
            "--up-after",
            "2",
            "--connect-timeout-ms",
            "500",
            "--read-timeout-ms",
            "10000",
        ],
        "router listening on ",
    );

    poll_router_stats(&router_addr, Duration::from_secs(15), |s| {
        s.path("nodes_up").and_then(Json::as_i64) == Some(2)
    });

    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let pool = algo.random_inputs_bits(RUN_SEED, TOTAL);
    let direct = algo.outputs_bits(
        Engine::Compiled { shards: 1 },
        TOTAL,
        oblivious::Layout::ColumnWise,
        RUN_SEED,
    );

    // Closed-loop clients through the router; a generous read timeout is
    // the no-hang guarantee — any stall fails the test instead of
    // wedging it.  All TOTAL submits must ack despite the kill.
    let client_cfg = bulkd::ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_secs(20)),
    };
    let acked = Mutex::new(vec![None::<Vec<u64>>; TOTAL]);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (router_addr, key, pool, acked, client_cfg) =
                (&router_addr, &key, &pool, &acked, &client_cfg);
            scope.spawn(move || {
                let mut client =
                    bulkd::Client::connect_with(router_addr, client_cfg).expect("connect router");
                for j in 0..PER_CLIENT {
                    let i = c * PER_CLIENT + j;
                    let one = std::slice::from_ref(&pool[i]);
                    let ok = client.submit(key, one, false).expect("submit must survive the kill");
                    let out = ok.outputs.into_iter().next().expect("one output");
                    let prev = acked.lock().unwrap()[i].replace(out);
                    assert!(prev.is_none(), "instance {i} acked twice");
                }
            });
        }
        // Kill the owner the moment enough acks are banked.
        let t0 = Instant::now();
        loop {
            let banked = acked.lock().unwrap().iter().filter(|o| o.is_some()).count();
            if banked >= ACKS_BEFORE_KILL {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(60), "load never reached the kill point");
            std::thread::sleep(Duration::from_millis(5));
        }
        victim.kill().expect("kill victim");
    });
    victim.wait().expect("reap victim");

    // Every instance acked exactly once, bit-identical to the compiled
    // engine — re-executions on the survivor included.
    let acked = acked.into_inner().unwrap();
    for (i, out) in acked.iter().enumerate() {
        assert_eq!(
            out.as_ref().expect("instance never acked"),
            &direct[i],
            "instance {i}: rerouted output diverges from Engine::Compiled"
        );
    }

    // The router noticed: victim down, submits rerouted, IO redispatches
    // counted.  (The probe cadence is 50 ms; this converges fast.)
    let stats = poll_router_stats(&router_addr, Duration::from_secs(15), |s| {
        s.path("health.n1.state").and_then(Json::as_str) == Some("down")
            && s.path("router.rerouted").and_then(Json::as_i64).unwrap_or(0) > 0
    });
    assert_eq!(stats.path("nodes_down").and_then(Json::as_i64), Some(1));
    assert!(stats.path("router.io_redispatch").and_then(Json::as_i64).unwrap_or(0) >= 1);
    assert_eq!(stats.path("backends.n1.unreachable"), Some(&Json::Bool(true)));

    // The merged drain balances: every submit is accounted, the acks
    // split across the two backends sum to the total, nothing vanished.
    let mut client =
        bulkd::Client::connect_with(&router_addr, &client_cfg).expect("connect for drain");
    let drained = client.drain().expect("drain through router");
    assert_eq!(drained.path("drained"), Some(&Json::Bool(true)));
    let r = |p: &str| drained.path(p).and_then(Json::as_i64).unwrap_or(-1);
    assert_eq!(r("router.submits"), TOTAL as i64, "{}", drained.to_pretty());
    assert_eq!(r("router.acked"), TOTAL as i64);
    assert_eq!(r("router.relayed_errors"), 0);
    assert_eq!(r("router.unavailable"), 0);
    assert!(r("router.rerouted") >= 1);
    assert_eq!(
        r("router.per_backend.n1.acked") + r("router.per_backend.n2.acked"),
        TOTAL as i64,
        "per-backend acks do not sum: {}",
        drained.to_pretty()
    );
    assert_eq!(drained.path("backends.n1.unreachable"), Some(&Json::Bool(true)));
    assert_eq!(drained.path("cluster.unreachable_backends").and_then(Json::as_i64), Some(1));

    // Clean exits: the drain fan-out shut the survivor down, and the
    // router exits after its own drain.
    assert!(router_child.wait().expect("reap router").success(), "router exited non-zero");
    assert!(survivor.wait().expect("reap survivor").success(), "survivor exited non-zero");
}

// ---------------------------------------------------------------------------
// Replicated pair behind the router: kill the primary, auto-failover.
// ---------------------------------------------------------------------------

/// PR 10 acceptance: a primary ships its WAL to a warm standby
/// (`serve --replicate-to` + `bulkrun standby`); the router knows the
/// standby (`--standbys n1=B`) and, when the primary is `kill -9`ed
/// mid-load, promotes it and repoints the backend id — no key moves,
/// no acked job is lost, and every output stays bit-identical to the
/// compiled engine.  Replication lag is asserted observable through the
/// router's merged metrics while the pair is alive.
#[test]
fn killing_the_primary_fails_over_to_the_promoted_standby() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 30;
    const TOTAL: usize = CLIENTS * PER_CLIENT;
    const ACKS_BEFORE_KILL: usize = 24;

    let tmp = std::env::temp_dir().join(format!("router-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let primary_wal = tmp.join("primary");
    let standby_wal = tmp.join("standby");
    std::fs::create_dir_all(&primary_wal).unwrap();
    std::fs::create_dir_all(&standby_wal).unwrap();

    let (mut primary, addrs) = spawn_scraped_many(
        &[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--node-id",
            "n1",
            "--flush-after-ms",
            "5",
            "--wal-dir",
            primary_wal.to_str().unwrap(),
            "--fsync",
            "always",
            "--replicate-to",
            "127.0.0.1:0",
        ],
        &["repl listening on ", "bulkd listening on "],
    );
    let (repl_addr, serve_addr) = (addrs[0].clone(), addrs[1].clone());

    let (mut standby, standby_addr) = spawn_scraped(
        &[
            "standby",
            "--addr",
            "127.0.0.1:0",
            "--node-id",
            "n1b",
            "--follow",
            &repl_addr,
            "--wal-dir",
            standby_wal.to_str().unwrap(),
            "--reconnect-ms",
            "20",
            "--flush-after-ms",
            "5",
        ],
        "standby listening on ",
    );

    let backends = format!("n1={serve_addr}");
    let standbys = format!("n1={standby_addr}");
    let (mut router_child, router_addr) = spawn_scraped(
        &[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--backends",
            &backends,
            "--standbys",
            &standbys,
            "--probe-interval-ms",
            "50",
            "--probe-timeout-ms",
            "250",
            "--down-after",
            "2",
            "--up-after",
            "2",
            "--connect-timeout-ms",
            "500",
            "--read-timeout-ms",
            "15000",
        ],
        "router listening on ",
    );

    poll_router_stats(&router_addr, Duration::from_secs(15), |s| {
        s.path("nodes_up").and_then(Json::as_i64) == Some(1)
    });

    let algo = Algo::parse("prefix-sums", Some(64)).unwrap();
    let key = bulkd::JobKey {
        algo: "prefix-sums".into(),
        size: 64,
        layout: oblivious::Layout::ColumnWise,
    };
    let pool = algo.random_inputs_bits(RUN_SEED, TOTAL);
    let direct = algo.outputs_bits(
        Engine::Compiled { shards: 1 },
        TOTAL,
        oblivious::Layout::ColumnWise,
        RUN_SEED,
    );

    // During the failover window (primary dead, standby not yet
    // promoted) the single-backend cluster has no ring successor, so a
    // submit may fail — clients reconnect and retry until the promoted
    // standby answers.  A deadline per instance is the no-hang bound.
    let client_cfg = bulkd::ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_secs(20)),
    };
    let acked = Mutex::new(vec![None::<Vec<u64>>; TOTAL]);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (router_addr, key, pool, acked, client_cfg) =
                (&router_addr, &key, &pool, &acked, &client_cfg);
            scope.spawn(move || {
                let mut client: Option<bulkd::Client> = None;
                for j in 0..PER_CLIENT {
                    let i = c * PER_CLIENT + j;
                    let one = std::slice::from_ref(&pool[i]);
                    let deadline = Instant::now() + Duration::from_secs(60);
                    let out = loop {
                        if client.is_none() {
                            client = bulkd::Client::connect_with(router_addr, client_cfg).ok();
                        }
                        match client.as_mut().map(|cl| cl.submit(key, one, false)) {
                            Some(Ok(ok)) => {
                                break ok.outputs.into_iter().next().expect("one output")
                            }
                            Some(Err(_)) | None => {
                                client = None; // reconnect and retry
                                assert!(
                                    Instant::now() < deadline,
                                    "instance {i} never acked across the failover"
                                );
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    };
                    let prev = acked.lock().unwrap()[i].replace(out);
                    assert!(prev.is_none(), "instance {i} acked twice");
                }
            });
        }

        // While the pair is alive: replication lag is visible end-to-end
        // through the router's merged Prometheus exposition.
        let mcfg = bulkd::ClientConfig {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_secs(10)),
        };
        let t0 = Instant::now();
        loop {
            let text = bulkd::Client::connect_with(&router_addr, &mcfg)
                .ok()
                .and_then(|mut c| c.metrics().ok())
                .unwrap_or_default();
            if text.contains("bulkd_node_repl_lag_records{node=\"n1\"}") {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(15),
                "repl lag never appeared in router metrics:\n{text}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        // Kill -9 the primary the moment enough acks are banked.
        let t0 = Instant::now();
        loop {
            let banked = acked.lock().unwrap().iter().filter(|o| o.is_some()).count();
            if banked >= ACKS_BEFORE_KILL {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(60), "load never reached the kill point");
            std::thread::sleep(Duration::from_millis(5));
        }
        primary.kill().expect("kill primary");
    });
    primary.wait().expect("reap primary");

    // Exactly once, bit-identical — the acks banked before the kill and
    // the ones served by the promoted standby are indistinguishable.
    let acked = acked.into_inner().unwrap();
    for (i, out) in acked.iter().enumerate() {
        assert_eq!(
            out.as_ref().expect("instance never acked"),
            &direct[i],
            "instance {i}: output diverges across the failover"
        );
    }

    // The router promoted the standby and repointed n1: one failover,
    // the id back up, and the answering node identifying as the standby.
    let stats = poll_router_stats(&router_addr, Duration::from_secs(15), |s| {
        s.path("router.failovers").and_then(Json::as_i64) == Some(1)
            && s.path("health.n1.state").and_then(Json::as_str) == Some("up")
            && s.path("backends.n1.node_id").and_then(Json::as_str) == Some("n1b")
    });
    assert_eq!(stats.path("nodes_up").and_then(Json::as_i64), Some(1), "{}", stats.to_pretty());

    // The drained ledger still balances; retried submits are accounted
    // as their own lines (acked + relayed_errors + unavailable).
    let mut client =
        bulkd::Client::connect_with(&router_addr, &client_cfg).expect("connect for drain");
    let drained = client.drain().expect("drain through router");
    assert_eq!(drained.path("drained"), Some(&Json::Bool(true)));
    let r = |p: &str| drained.path(p).and_then(Json::as_i64).unwrap_or(-1);
    assert!(r("router.acked") >= TOTAL as i64, "{}", drained.to_pretty());
    assert_eq!(
        r("router.submits"),
        r("router.acked") + r("router.relayed_errors") + r("router.unavailable"),
        "ledger does not balance: {}",
        drained.to_pretty()
    );
    assert_eq!(r("router.failovers"), 1);

    assert!(router_child.wait().expect("reap router").success(), "router exited non-zero");
    assert!(standby.wait().expect("reap standby").success(), "standby exited non-zero");

    // Replication is the journal: every shipped record the promoted
    // node still retains (checkpointing may have truncated old segments
    // at its drain) is byte-identical to the primary's copy, and the
    // promoted node's log continued past the primary's death.
    let primary_log = wal::scan(&primary_wal).unwrap();
    let standby_log = wal::scan(&standby_wal).unwrap();
    let by_seq: std::collections::HashMap<u64, &wal::Record> =
        primary_log.records.iter().map(|r| (r.seq, r)).collect();
    for rec in &standby_log.records {
        if let Some(orig) = by_seq.get(&rec.seq) {
            assert_eq!(&rec, orig, "replicated record {} diverged", rec.seq);
        }
    }
    let primary_max = primary_log.records.last().map_or(0, |r| r.seq);
    let standby_max = standby_log.records.last().map_or(0, |r| r.seq);
    assert!(
        standby_max > primary_max,
        "promoted node's log ({standby_max}) never advanced past the primary's ({primary_max})"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}
