//! Crash-injection battery for the write-ahead log: a real `bulkrun serve`
//! process is `kill -9`ed mid-load, restarted on the same `--wal-dir`, and
//! the durability contract is checked record by record:
//!
//! - every *acknowledged* job has its submit and completion on disk, with
//!   outputs bit-identical to a crash-free local run over the same inputs;
//! - every logged-but-incomplete job is re-queued exactly once on restart
//!   and completes with the correct outputs;
//! - a clean drain checkpoints the log down to a single segment holding
//!   only the job-id high-water mark, which survives further restarts;
//! - a bit-flipped segment is repaired by torn-tail truncation — reported
//!   in stats, never a panic.

use cli::registry::{Algo, ScheduleCaches};
use cli::serve::CatalogExecutor;
use obs::Json;
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bulkrun-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Spawn a `bulkrun serve` child on an ephemeral port and scrape the bound
/// address off its stdout.  The rest of stdout drains on a reaper thread so
/// the child can never block on a full pipe.
fn spawn_server(wal_dir: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bulkrun"))
        .args(["serve", "--addr", "127.0.0.1:0", "--wal-dir"])
        .arg(wal_dir)
        .args(["--fsync", "always"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bulkrun serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read child stdout") > 0 {
        if let Some(rest) = line.trim().strip_prefix("bulkd listening on ") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("server never announced its address");
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

fn poll_stats(addr: &str, deadline: Duration, mut pred: impl FnMut(&Json) -> bool) -> Json {
    let t0 = Instant::now();
    loop {
        if let Ok(mut c) = bulkd::Client::connect(addr) {
            if let Ok(s) = c.stats() {
                if pred(&s) {
                    return s;
                }
                assert!(t0.elapsed() < deadline, "stats never converged: {}", s.to_pretty());
            }
        }
        assert!(t0.elapsed() < deadline, "server at {addr} unreachable");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Everything the WAL says happened, decoded record by record.
struct LogView {
    /// job id → (algo, size, inputs).
    submits: HashMap<u64, (String, usize, Vec<Vec<u64>>)>,
    /// job id → outputs of the logged successful completion.
    completions: HashMap<u64, Vec<Vec<u64>>>,
    checkpoints: usize,
}

fn read_log(dir: &Path) -> (wal::Scan, LogView) {
    let scan = wal::scan(dir).expect("wal scan");
    let mut view = LogView { submits: HashMap::new(), completions: HashMap::new(), checkpoints: 0 };
    for rec in &scan.records {
        let j = Json::parse(std::str::from_utf8(&rec.payload).expect("utf8 payload"))
            .expect("payload parses");
        let job = || j.get("job").and_then(Json::as_i64).expect("job id") as u64;
        match rec.rec_type {
            bulkd::journal::REC_SUBMIT => {
                let algo = j.get("algo").and_then(Json::as_str).expect("algo").to_string();
                let size = j.get("size").and_then(Json::as_i64).expect("size") as usize;
                let inputs: Vec<Vec<u64>> = j
                    .get("inputs")
                    .and_then(Json::as_arr)
                    .expect("inputs")
                    .iter()
                    .map(|w| bulkd::protocol::words_from_json(w).expect("words"))
                    .collect();
                let dup = view.submits.insert(job(), (algo, size, inputs));
                assert!(dup.is_none(), "duplicate submit record for job {}", job());
            }
            bulkd::journal::REC_COMPLETE => {
                assert_eq!(j.get("ok"), Some(&Json::Bool(true)), "a logged job failed");
                let outputs: Vec<Vec<u64>> = j
                    .get("outputs")
                    .and_then(Json::as_arr)
                    .expect("outputs")
                    .iter()
                    .map(|w| bulkd::protocol::words_from_json(w).expect("words"))
                    .collect();
                let dup = view.completions.insert(job(), outputs);
                assert!(dup.is_none(), "duplicate completion record for job {}", job());
            }
            bulkd::journal::REC_CHECKPOINT => view.checkpoints += 1,
            other => panic!("unknown record type {other}"),
        }
    }
    (scan, view)
}

/// The headline test: kill -9 a serving process mid-load, restart it on the
/// same log, and prove every acked job completed exactly once with outputs
/// bit-identical to a crash-free run.
#[test]
fn killed_server_recovers_every_acked_job_exactly_once_bit_identically() {
    const CLIENTS: usize = 4;
    const ACKS_BEFORE_KILL: usize = 48;
    let wal_dir = temp_dir("kill");

    // Phase 1: a one-hour flush window and max-batch 4, so the only flush
    // trigger is the size one.  Four closed-loop clients on one key keep
    // batches flowing; a fifth job on a *different* key can never reach
    // max-batch and is guaranteed to be logged-but-incomplete at the kill.
    let (mut child, addr) = spawn_server(
        &wal_dir,
        &[
            "--workers",
            "2",
            "--max-batch",
            "4",
            "--max-queue",
            "4096",
            "--flush-after-ms",
            "3600000",
        ],
    );
    let algo = Algo::parse("prefix-sums", Some(16)).unwrap();
    let key16 = bulkd::JobKey {
        algo: "prefix-sums".into(),
        size: 16,
        layout: oblivious::Layout::ColumnWise,
    };
    let pool = algo.random_inputs_bits(42, 400);
    assert_eq!(
        pool.iter().collect::<HashSet<_>>().len(),
        pool.len(),
        "inputs must be unique so acks map onto WAL records"
    );

    // The straggler first: once the WAL shows one incomplete job, it is
    // provably on disk and parked in an open group.
    let straggler_input = Algo::parse("prefix-sums", Some(32)).unwrap().random_inputs_bits(7, 1);
    let straggler = {
        let addr = addr.clone();
        let inputs = straggler_input.clone();
        std::thread::spawn(move || {
            let key = bulkd::JobKey {
                algo: "prefix-sums".into(),
                size: 32,
                layout: oblivious::Layout::ColumnWise,
            };
            bulkd::Client::connect(&addr).expect("connect").submit(&key, &inputs, false)
        })
    };
    poll_stats(&addr, Duration::from_secs(30), |s| {
        s.path("wal.incomplete_jobs").and_then(Json::as_i64) == Some(1)
    });

    // Unleash the closed-loop clients; collect input → acked output.
    let acked: Mutex<HashMap<Vec<u64>, Vec<u64>>> = Mutex::new(HashMap::new());
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (addr, key16, pool, acked) = (&addr, &key16, &pool, &acked);
            scope.spawn(move || {
                let Ok(mut client) = bulkd::Client::connect(addr) else { return };
                for i in (c..pool.len()).step_by(CLIENTS) {
                    if acked.lock().unwrap().len() >= ACKS_BEFORE_KILL {
                        return;
                    }
                    let one = std::slice::from_ref(&pool[i]);
                    match client.submit(key16, one, false) {
                        Ok(ok) => {
                            let out = ok.outputs.into_iter().next().unwrap();
                            acked.lock().unwrap().insert(pool[i].clone(), out);
                        }
                        // The kill lands mid-submit for whoever is in flight.
                        Err(_) => return,
                    }
                }
            });
        }
        // Kill -9 the instant enough acks are banked.
        let t0 = Instant::now();
        while acked.lock().unwrap().len() < ACKS_BEFORE_KILL {
            assert!(t0.elapsed() < Duration::from_secs(60), "load never reached the kill point");
            std::thread::sleep(Duration::from_millis(5));
        }
        child.kill().expect("kill -9");
    });
    child.wait().expect("reap killed child");
    assert!(straggler.join().expect("straggler thread").is_err(), "straggler must die unanswered");
    let acked = acked.into_inner().unwrap();
    assert!(acked.len() >= ACKS_BEFORE_KILL);

    // The dead log, read cold: acked ⇒ logged-and-completed, bit-identically.
    let (_, view) = read_log(&wal_dir);
    let caches = ScheduleCaches::new();
    let input_to_job: HashMap<&Vec<u64>, u64> =
        view.submits.iter().map(|(id, (_, _, ins))| (&ins[0], *id)).collect();
    for (input, acked_out) in &acked {
        let id = input_to_job.get(input).expect("acked job has no submit record");
        let logged = view.completions.get(id).expect("acked job has no completion record");
        assert_eq!(&logged[0], acked_out, "job {id}: logged outputs diverge from the ack");
    }
    // Every logged completion matches a crash-free local run.
    for (id, outputs) in &view.completions {
        let (name, size, inputs) = &view.submits[id];
        let a = Algo::parse(name, Some(*size)).unwrap();
        let direct = a.run_cached_bits(&caches, oblivious::Layout::ColumnWise, inputs, 1);
        assert_eq!(&direct, outputs, "job {id}: logged outputs diverge from a crash-free run");
    }
    // The straggler is on disk, incomplete, and carries the logged inputs.
    let incomplete: Vec<_> =
        view.submits.iter().filter(|(id, _)| !view.completions.contains_key(id)).collect();
    assert!(!incomplete.is_empty(), "the kill left no incomplete job to recover");
    assert!(
        incomplete.iter().any(|(_, (_, size, ins))| *size == 32 && ins[0] == straggler_input[0]),
        "the straggler submit record is missing"
    );
    let max_id = *view.submits.keys().max().unwrap();

    // Phase 2: restart on the same log.  A short flush window lets the
    // re-queued stragglers (whose submitters are gone) execute promptly.
    let (mut child, addr) = spawn_server(
        &wal_dir,
        &["--workers", "2", "--max-batch", "4", "--max-queue", "4096", "--flush-after-ms", "2"],
    );
    let stats = poll_stats(&addr, Duration::from_secs(30), |s| {
        s.path("wal.incomplete_jobs").and_then(Json::as_i64) == Some(0)
    });
    assert_eq!(stats.path("wal.recovery.runs").unwrap().as_i64(), Some(1));
    assert_eq!(
        stats.path("wal.recovery.requeued_jobs").unwrap().as_i64(),
        Some(incomplete.len() as i64)
    );
    assert!(
        stats.path("wal.recovery.next_job_id").unwrap().as_i64().unwrap() as u64 > max_id,
        "job ids must resume above the recovered high-water mark"
    );

    // The recovered jobs completed exactly once, with the right bits.
    let (_, view2) = read_log(&wal_dir);
    for (id, (name, size, inputs)) in &view.submits {
        let outputs = view2.completions.get(id).unwrap_or_else(|| {
            panic!("job {id} still incomplete after recovery");
        });
        let a = Algo::parse(name, Some(*size)).unwrap();
        let direct = a.run_cached_bits(&caches, oblivious::Layout::ColumnWise, inputs, 1);
        assert_eq!(&direct, outputs, "recovered job {id} produced wrong outputs");
    }
    // New work lands above the old ids and completes.
    let fresh = algo.random_inputs_bits(99, 1);
    let ok = bulkd::Client::connect(&addr)
        .expect("connect")
        .submit(&key16, &fresh, false)
        .expect("fresh");
    assert_eq!(ok.outputs, algo.run_cached_bits(&caches, oblivious::Layout::ColumnWise, &fresh, 1));

    // Drain: the checkpoint must shrink the log to one segment holding
    // nothing but the job-id high-water mark.
    bulkd::Client::connect(&addr).expect("connect").drain().expect("drain");
    let status = child.wait().expect("reap drained child");
    assert!(status.success(), "drained server exited with {status}");
    let (scan, view3) = read_log(&wal_dir);
    assert_eq!(scan.segments.len(), 1, "checkpoint must leave a single segment");
    assert!(scan.truncation.is_none());
    assert_eq!((view3.submits.len(), view3.completions.len(), view3.checkpoints), (0, 0, 1));

    // Phase 3: a post-checkpoint restart requeues nothing and keeps counting.
    let (mut child, addr) = spawn_server(&wal_dir, &["--flush-after-ms", "2"]);
    let stats = poll_stats(&addr, Duration::from_secs(30), |_| true);
    assert_eq!(stats.path("wal.recovery.requeued_jobs").unwrap().as_i64(), Some(0));
    assert!(stats.path("wal.recovery.next_job_id").unwrap().as_i64().unwrap() as u64 > max_id);
    bulkd::Client::connect(&addr).expect("connect").drain().expect("drain");
    assert!(child.wait().expect("reap").success());
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A bit-flipped segment must come back as a *reported torn-tail
/// truncation* — recovery proceeds over the surviving prefix; no panic,
/// no refusal to start.
#[test]
fn bit_flipped_segment_truncates_reported_not_panics() {
    let wal_dir = temp_dir("flip");
    let algo = Algo::parse("prefix-sums", Some(16)).unwrap();
    let key = bulkd::JobKey {
        algo: "prefix-sums".into(),
        size: 16,
        layout: oblivious::Layout::ColumnWise,
    };
    let inputs = algo.random_inputs_bits(5, 3);

    // Build a log: three submits, two completions — then corrupt the tail.
    {
        let cfg = bulkd::JournalConfig {
            dir: wal_dir.clone(),
            fsync: wal::FsyncPolicy::Always,
            segment_bytes: 4 << 20,
        };
        let (journal, _) = bulkd::Journal::open(&cfg).expect("open journal");
        let caches = ScheduleCaches::new();
        for (i, input) in inputs.iter().enumerate() {
            journal.log_submit(i as u64 + 1, &key, std::slice::from_ref(input)).unwrap();
        }
        for (i, input) in inputs.iter().take(2).enumerate() {
            let out = algo.run_cached_bits(
                &caches,
                oblivious::Layout::ColumnWise,
                std::slice::from_ref(input),
                1,
            );
            journal.log_complete(i as u64 + 1, Ok(&out)).unwrap();
        }
    }
    let seg = std::fs::read_dir(&wal_dir)
        .expect("read wal dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "wal"))
        .expect("a segment exists");
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let flip_at = bytes.len() - 8; // inside the last record's payload
    bytes[flip_at] ^= 0x40;
    std::fs::write(&seg, &bytes).expect("write corrupted segment");

    // Restart in-process: the corrupt record (completion of job 2) is cut,
    // so jobs 2 and 3 re-run; the repair is visible in stats.
    let cfg = bulkd::ServerConfig {
        addr: "127.0.0.1:0".into(),
        node_id: None,
        workers: 1,
        max_batch: 64,
        max_queue: 1024,
        flush_after_ms: 2,
        trace_path: None,
        wal: Some(bulkd::JournalConfig {
            dir: wal_dir.clone(),
            fsync: wal::FsyncPolicy::Always,
            segment_bytes: 4 << 20,
        }),
        instrument: true,
        recorder_path: None,
        repl: None,
        promoted: false,
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        bulkd::serve(&cfg, Box::new(CatalogExecutor::new(1)), move |a| {
            tx.send(a).expect("addr");
        })
    });
    let addr = rx.recv_timeout(Duration::from_secs(10)).expect("server ready").to_string();
    let stats = poll_stats(&addr, Duration::from_secs(30), |s| {
        s.path("wal.incomplete_jobs").and_then(Json::as_i64) == Some(0)
    });
    assert_eq!(stats.path("wal.torn_tail_truncations").unwrap().as_i64(), Some(1));
    assert_eq!(stats.path("wal.recovery.requeued_jobs").unwrap().as_i64(), Some(2));

    // The re-run completions are back on disk and bit-correct (checked
    // before the drain checkpoint truncates history).
    let (_, view) = read_log(&wal_dir);
    let caches = ScheduleCaches::new();
    for id in [2u64, 3] {
        let outputs = view.completions.get(&id).expect("re-run job completed on disk");
        let direct = algo.run_cached_bits(
            &caches,
            oblivious::Layout::ColumnWise,
            std::slice::from_ref(&inputs[id as usize - 1]),
            1,
        );
        assert_eq!(&direct, outputs, "re-run job {id} produced wrong outputs");
    }

    bulkd::Client::connect(&addr).expect("connect").drain().expect("drain");
    server.join().expect("server panicked").expect("serve returned an error");
    let (scan, view) = read_log(&wal_dir);
    assert_eq!(scan.segments.len(), 1);
    assert_eq!(view.checkpoints, 1);
    let _ = std::fs::remove_dir_all(&wal_dir);
}
