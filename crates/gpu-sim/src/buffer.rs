//! Shared global-memory view for block-parallel kernels.
//!
//! Blocks of a bulk kernel write *disjoint lane sets* of the global buffer,
//! but under the column-wise layout those sets interleave at word
//! granularity, so the buffer cannot be partitioned into contiguous
//! `&mut` chunks.  [`SharedSlice`] is the standard HPC escape hatch: a
//! `Send + Sync` raw view whose safety contract is lane-disjointness,
//! enforced by the launcher handing each block a non-overlapping lane
//! range.

use core::marker::PhantomData;

/// A shareable mutable view of a word buffer.
///
/// # Safety contract
///
/// Concurrent users must access **disjoint index sets**.  The kernel
/// launcher guarantees this by assigning each block a disjoint lane range
/// and requiring kernels to touch only physical addresses belonging to
/// their own lanes (`Layout::physical(addr, lane, ..)` with `lane` in
/// range).
#[derive(Debug, Clone, Copy)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view can move across threads; actual aliasing discipline is
// the documented contract of the unsafe accessors.
unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}

impl<'a, T: Copy> SharedSlice<'a, T> {
    /// Wrap an exclusive slice.  The borrow keeps the underlying buffer
    /// alive and un-aliased for `'a`.
    #[must_use]
    pub fn new(slice: &'a mut [T]) -> Self {
        Self { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read index `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread may concurrently write index `i`.
    #[inline]
    #[must_use]
    pub unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        // SAFETY: bounds per caller contract; aliasing per type contract.
        unsafe { *self.ptr.add(i) }
    }

    /// Write index `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and no other thread may concurrently access index `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        // SAFETY: as for `get`.
        unsafe { *self.ptr.add(i) = v }
    }

    /// Borrow a contiguous range immutably.
    ///
    /// # Safety
    ///
    /// The range is in bounds and no other thread concurrently writes it.
    #[inline]
    #[must_use]
    pub unsafe fn range(&self, lo: usize, hi: usize) -> &[T] {
        debug_assert!(lo <= hi && hi <= self.len);
        // SAFETY: as documented.
        unsafe { core::slice::from_raw_parts(self.ptr.add(lo), hi - lo) }
    }

    /// Borrow a contiguous range mutably.
    ///
    /// # Safety
    ///
    /// The range is in bounds and no other thread concurrently accesses it.
    #[inline]
    #[must_use]
    #[allow(clippy::mut_from_ref)] // the aliasing discipline is the type's contract
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len);
        // SAFETY: as documented.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_read_write() {
        let mut v = vec![0i32; 8];
        let s = SharedSlice::new(&mut v);
        unsafe {
            s.set(3, 42);
            assert_eq!(s.get(3), 42);
            let r = s.range(2, 5);
            assert_eq!(r, &[0, 42, 0]);
            s.range_mut(0, 2).fill(7);
        }
        assert_eq!(v, vec![7, 7, 0, 42, 0, 0, 0, 0]);
    }

    #[test]
    fn disjoint_parallel_writes() {
        // Two threads write interleaved (even/odd) indices — the exact
        // pattern contiguous splitting cannot express.
        let n = 1024;
        let mut v = vec![0usize; n];
        let s = SharedSlice::new(&mut v);
        std::thread::scope(|scope| {
            for parity in 0..2usize {
                scope.spawn(move || {
                    for i in (parity..n).step_by(2) {
                        // SAFETY: even/odd index sets are disjoint.
                        unsafe { s.set(i, i) };
                    }
                });
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn len_tracks_source() {
        let mut v = vec![0.0f32; 5];
        let s = SharedSlice::new(&mut v);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
