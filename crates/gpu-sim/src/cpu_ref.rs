//! The single-core CPU baseline of the paper's Section V.
//!
//! "We have executed Algorithm Prefix-sums p times on the Intel Core i7
//! CPU … implemented for the row-wise arrangement."  These are plain
//! native loops — no machine abstraction — so the baseline is as fast as
//! straightforward sequential C, which keeps the measured speedups honest.

use oblivious::{BinOp, Word};

/// Sequential bulk prefix-sums over a row-wise buffer of `p` instances of
/// `n` words, in place.
///
/// # Panics
///
/// Panics if the buffer size does not match.
pub fn prefix_sums_rowwise<W: Word>(buf: &mut [W], p: usize, n: usize) {
    assert_eq!(buf.len(), p * n, "buffer must hold p * n words");
    for row in buf.chunks_exact_mut(n) {
        let mut r = W::ZERO;
        for x in row {
            r = W::apply_bin(BinOp::Add, r, *x);
            *x = r;
        }
    }
}

/// Sequential bulk OPT over a row-wise buffer of `p` instances
/// (`2n²` words each: `c` then `M`), in place.
///
/// # Panics
///
/// Panics if the buffer size does not match.
pub fn opt_rowwise<W: Word>(buf: &mut [W], p: usize, n: usize) {
    let msize = 2 * n * n;
    assert_eq!(buf.len(), p * msize, "buffer must hold p * 2n² words");
    let nn = n * n;
    for inst in buf.chunks_exact_mut(msize) {
        let (c, m) = inst.split_at_mut(nn);
        for i in 1..n {
            m[i * n + i] = W::ZERO;
        }
        for i in (1..=n - 2).rev() {
            for j in (i + 1)..n {
                let mut s = W::POS_INF;
                for k in i..j {
                    let r = W::apply_bin(BinOp::Add, m[i * n + k], m[(k + 1) * n + j]);
                    s = W::apply_bin(BinOp::Min, s, r);
                }
                m[i * n + j] = W::apply_bin(BinOp::Add, s, c[(i - 1) * n + j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorithms::opt::{reference, ChordWeights, OptTriangulation};
    use oblivious::layout::arrange;
    use oblivious::program::arrange_inputs;
    use oblivious::Layout;

    #[test]
    fn prefix_sums_baseline_matches_reference() {
        let (p, n) = (7, 5);
        let inputs: Vec<Vec<f64>> =
            (0..p).map(|j| (0..n).map(|i| (j * n + i) as f64).collect()).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut buf = arrange(&refs, n, Layout::RowWise);
        prefix_sums_rowwise(&mut buf, p, n);
        for (j, inp) in inputs.iter().enumerate() {
            let want = algorithms::prefix_sums::reference(inp);
            assert_eq!(&buf[j * n..(j + 1) * n], want.as_slice());
        }
    }

    #[test]
    fn opt_baseline_matches_reference_dp() {
        let (n, p) = (7usize, 5usize);
        let ws: Vec<ChordWeights> = (0..p)
            .map(|s| ChordWeights::from_fn(n, |i, j| ((i * 7 + j * 13 + s * 31) % 100) as f64))
            .collect();
        let inputs: Vec<Vec<f64>> = ws.iter().map(|c| c.as_words()).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = OptTriangulation::new(n);
        let mut buf = arrange_inputs(&prog, &refs, Layout::RowWise);
        opt_rowwise(&mut buf, p, n);
        let msize = 2 * n * n;
        for (j, c) in ws.iter().enumerate() {
            let (want, _) = reference(c);
            let answer = buf[j * msize + prog.answer_address()];
            assert_eq!(answer, want);
        }
    }

    #[test]
    #[should_panic(expected = "buffer must hold")]
    fn size_mismatch_rejected() {
        let mut buf = vec![0.0f32; 9];
        prefix_sums_rowwise(&mut buf, 2, 5);
    }
}
