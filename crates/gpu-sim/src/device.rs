//! Virtual device description.

/// A software-SIMT device: the stand-in for the paper's GeForce GTX Titan.
///
/// Blocks of lockstep lanes are scheduled onto `worker_threads` OS threads
/// (the "streaming multiprocessors"); within a block, warps of `warp_size`
/// lanes advance instruction-by-instruction, so each memory step becomes a
/// `warp_size`-wide vector access — contiguous under the column-wise layout
/// (the analogue of a coalesced DRAM burst) and strided under the row-wise
/// layout (the analogue of an uncoalesced one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Human-readable device name, used in reports.
    pub name: String,
    /// Number of block-executing worker threads ("SMs").
    pub worker_threads: usize,
    /// Lanes per warp (the machine width `w`).
    pub warp_size: usize,
    /// Default lanes per block (the paper launches 64-thread blocks).
    pub block_size: usize,
}

impl Device {
    /// A device shaped like the paper's GeForce GTX Titan: 14 SMs,
    /// 32-lane warps, 64-thread blocks — with the worker count clamped to
    /// the host's actual parallelism.
    #[must_use]
    pub fn titan_like() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(14);
        Self {
            name: "sw-simt-titan".into(),
            worker_threads: workers,
            warp_size: 32,
            block_size: 64,
        }
    }

    /// A single-worker device (deterministic scheduling; useful in tests).
    #[must_use]
    pub fn single_worker() -> Self {
        Self { name: "sw-simt-1".into(), worker_threads: 1, warp_size: 32, block_size: 64 }
    }

    /// Override the block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or not a multiple of the warp size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert_eq!(
            block_size % self.warp_size,
            0,
            "block size must be a multiple of the warp size"
        );
        self.block_size = block_size;
        self
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::titan_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_like_shape() {
        let d = Device::titan_like();
        assert!(d.worker_threads >= 1 && d.worker_threads <= 14);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.block_size, 64);
    }

    #[test]
    fn block_size_override() {
        let d = Device::single_worker().with_block_size(128);
        assert_eq!(d.block_size, 128);
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn ragged_block_size_rejected() {
        let _ = Device::single_worker().with_block_size(48);
    }
}
