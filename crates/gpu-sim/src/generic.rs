//! The generic block engine: run **any** oblivious program as a bulk kernel.
//!
//! [`BlockLanes`] is a [`LanePort`] confined to one thread block's lane
//! range of the global buffer, so a [`BulkMachine`] built on it executes
//! the block's instances in lockstep while other blocks run concurrently.
//! Wrapping a program in [`GenericKernel`] therefore gives a multi-threaded
//! device implementation of the paper's "conversion system" for free — at
//! an interpretation cost the benches quantify against the hand-written
//! kernels (ablation 3 of DESIGN.md).

use crate::buffer::SharedSlice;
use crate::launch::BulkKernel;
use oblivious::{BulkMachine, LanePort, Layout, ObliviousProgram, Word};

/// A lane port over a block's slice of the global bulk buffer.
///
/// Safety of the underlying raw accesses rests on the launcher's
/// lane-disjointness guarantee: this port only ever touches physical
/// addresses `layout.physical(addr, lane, p, msize)` with `lane` in
/// `[lane_lo, lane_hi)`.
#[derive(Debug)]
pub struct BlockLanes<'s, 'a, W> {
    mem: &'s SharedSlice<'a, W>,
    p: usize,
    msize: usize,
    layout: Layout,
    lane_lo: usize,
    lane_hi: usize,
}

impl<'s, 'a, W: Word> BlockLanes<'s, 'a, W> {
    /// Create a port for lanes `[lane_lo, lane_hi)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty or out-of-range lane window, or a buffer size
    /// mismatch.
    #[must_use]
    pub fn new(
        mem: &'s SharedSlice<'a, W>,
        p: usize,
        msize: usize,
        layout: Layout,
        lane_lo: usize,
        lane_hi: usize,
    ) -> Self {
        assert!(lane_lo < lane_hi && lane_hi <= p, "invalid lane window");
        assert_eq!(mem.len(), p * msize, "buffer must hold p * msize words");
        Self { mem, p, msize, layout, lane_lo, lane_hi }
    }
}

impl<'s, 'a, W: Word> LanePort<W> for BlockLanes<'s, 'a, W> {
    fn lanes(&self) -> usize {
        self.lane_hi - self.lane_lo
    }

    fn load(&mut self, addr: usize, dst: &mut [W]) {
        assert!(addr < self.msize, "read address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p + self.lane_lo;
                // SAFETY: span covers only this block's lanes.
                dst.copy_from_slice(unsafe { self.mem.range(base, base + self.lanes()) });
            }
            Layout::RowWise => {
                for (k, d) in dst.iter_mut().enumerate() {
                    let lane = self.lane_lo + k;
                    // SAFETY: this lane belongs to the block.
                    *d = unsafe { self.mem.get(lane * self.msize + addr) };
                }
            }
        }
    }

    fn store(&mut self, addr: usize, src: &[W]) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p + self.lane_lo;
                // SAFETY: as for load.
                unsafe { self.mem.range_mut(base, base + self.lanes()) }.copy_from_slice(src);
            }
            Layout::RowWise => {
                for (k, &s) in src.iter().enumerate() {
                    let lane = self.lane_lo + k;
                    // SAFETY: as for load.
                    unsafe { self.mem.set(lane * self.msize + addr, s) };
                }
            }
        }
    }

    fn broadcast(&mut self, addr: usize, c: W) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p + self.lane_lo;
                // SAFETY: as for load.
                unsafe { self.mem.range_mut(base, base + self.lanes()) }.fill(c);
            }
            Layout::RowWise => {
                for lane in self.lane_lo..self.lane_hi {
                    // SAFETY: as for load.
                    unsafe { self.mem.set(lane * self.msize + addr, c) };
                }
            }
        }
    }
}

/// Adapter: any [`ObliviousProgram`] as a device [`BulkKernel`].
#[derive(Debug, Clone, Copy)]
pub struct GenericKernel<P> {
    program: P,
    layout: Layout,
}

impl<P> GenericKernel<P> {
    /// Wrap a program for bulk execution under `layout`.
    #[must_use]
    pub fn new(program: P, layout: Layout) -> Self {
        Self { program, layout }
    }
}

impl<W: Word, P: ObliviousProgram<W> + Sync> BulkKernel<W> for GenericKernel<P> {
    fn memory_words(&self) -> usize {
        self.program.memory_words()
    }

    unsafe fn run_block(&self, mem: &SharedSlice<'_, W>, p: usize, lo: usize, hi: usize) {
        let port = BlockLanes::new(mem, p, self.program.memory_words(), self.layout, lo, hi);
        let mut machine = BulkMachine::with_port(port);
        self.program.run(&mut machine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::launch::launch;
    use algorithms::{BitonicSort, PrefixSums};
    use oblivious::layout::extract;
    use oblivious::program::arrange_inputs;

    #[test]
    fn generic_kernel_matches_single_machine_bulk() {
        let (p, n) = (100usize, 12usize);
        let inputs: Vec<Vec<f32>> =
            (0..p).map(|j| (0..n).map(|i| ((j + i * 3) % 17) as f32).collect()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = PrefixSums::new(n);
        for layout in Layout::all() {
            let want = oblivious::program::bulk_execute(&prog, &refs, layout);
            let mut buf = arrange_inputs(&prog, &refs, layout);
            launch(&Device::titan_like(), &GenericKernel::new(prog, layout), &mut buf, p);
            let got = extract(&buf, p, n, layout, 0..n);
            assert_eq!(got, want, "{layout}");
        }
    }

    #[test]
    fn generic_kernel_runs_sorting_networks() {
        let p = 66usize;
        let prog = BitonicSort::new(3);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|j| (0..8).map(|i| (((i * 37 + j * 11) % 19) as f32) - 9.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        launch(&Device::titan_like(), &GenericKernel::new(prog, Layout::ColumnWise), &mut buf, p);
        let got = extract(&buf, p, 8, Layout::ColumnWise, 0..8);
        for (inp, out) in inputs.iter().zip(&got) {
            let mut want = inp.clone();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(out, &want);
        }
    }

    #[test]
    #[should_panic(expected = "invalid lane window")]
    fn empty_lane_window_rejected() {
        let mut buf = vec![0.0f32; 8];
        let shared = SharedSlice::new(&mut buf);
        let _ = BlockLanes::new(&shared, 4, 2, Layout::ColumnWise, 2, 2);
    }
}
