//! Hand-written lockstep kernels for the paper's two experiments.

pub mod opt;
pub mod prefix_sums;
pub mod xtea;

pub use opt::OptKernel;
pub use prefix_sums::PrefixSumsKernel;
pub use xtea::XteaKernel;
