//! Hand-written lockstep kernels for Parallel Algorithm OPT
//! (the paper's second Section V experiment).
//!
//! Each lane `h` solves its own convex `n`-gon.  The block keeps the
//! registers `s_h` (current minimum) as a lane vector and walks the exact
//! `(i, j, k)` schedule of Algorithm OPT; the `if r < s then s ← r else
//! s ← s` conditional becomes a lane-wise branchless minimum, mirroring
//! the SIMD semantics of a warp.

use crate::buffer::SharedSlice;
use crate::launch::BulkKernel;
use algorithms::OptTriangulation;
use oblivious::{BinOp, Layout, Word};

/// Bulk OPT kernel over `n`-gon instances.
///
/// Memory layout per instance matches [`OptTriangulation`]: `c` then `M`
/// (no argmin table — like the paper's experiments, the kernel computes the
/// optimal weight; use the generic engine with
/// [`OptTriangulation::with_argmin`] when chords are needed).
#[derive(Debug, Clone, Copy)]
pub struct OptKernel {
    /// Polygon vertex count.
    pub n: usize,
    /// Bulk arrangement.
    pub layout: Layout,
}

impl OptKernel {
    /// New kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    #[must_use]
    pub fn new(n: usize, layout: Layout) -> Self {
        assert!(n >= 3, "a polygon needs at least 3 vertices");
        Self { n, layout }
    }

    /// The matching program (for arranging inputs / extracting outputs).
    #[must_use]
    pub fn program(&self) -> OptTriangulation {
        OptTriangulation::new(self.n)
    }
}

impl<W: Word> BulkKernel<W> for OptKernel {
    fn memory_words(&self) -> usize {
        2 * self.n * self.n
    }

    unsafe fn run_block(&self, mem: &SharedSlice<'_, W>, p: usize, lo: usize, hi: usize) {
        let n = self.n;
        let nn = n * n;
        let width = hi - lo;
        let c_at = |i: usize, j: usize| i * n + j;
        let m_at = |i: usize, j: usize| nn + i * n + j;

        match self.layout {
            Layout::ColumnWise => {
                let span = |addr: usize| (addr * p + lo, addr * p + lo + width);
                // Diagonal zeros.
                for i in 1..n {
                    let (a, b) = span(m_at(i, i));
                    // SAFETY: our lanes only (column span of this block).
                    unsafe { mem.range_mut(a, b) }.fill(W::ZERO);
                }
                let mut s = vec![W::POS_INF; width];
                for i in (1..=n - 2).rev() {
                    for j in (i + 1)..n {
                        s.fill(W::POS_INF);
                        for k in i..j {
                            let (a1, b1) = span(m_at(i, k));
                            let (a2, b2) = span(m_at(k + 1, j));
                            // SAFETY: disjoint from other blocks; these two
                            // reads never alias the write below.
                            let r1 = unsafe { mem.range(a1, b1) };
                            let r2 = unsafe { mem.range(a2, b2) };
                            for ((sv, &x), &y) in s.iter_mut().zip(r1).zip(r2) {
                                let r = W::apply_bin(BinOp::Add, x, y);
                                *sv = W::apply_bin(BinOp::Min, *sv, r);
                            }
                        }
                        let (ca, cb) = span(c_at(i - 1, j));
                        let (ma, mb) = span(m_at(i, j));
                        let cj = unsafe { mem.range(ca, cb) };
                        let out = unsafe { mem.range_mut(ma, mb) };
                        for ((o, sv), &c) in out.iter_mut().zip(&s).zip(cj) {
                            *o = W::apply_bin(BinOp::Add, *sv, c);
                        }
                    }
                }
            }
            Layout::RowWise => {
                let msize = 2 * nn;
                let mut s = vec![W::POS_INF; width];
                for (k, lane) in (lo..hi).enumerate() {
                    let _ = k;
                    let base = lane * msize;
                    for i in 1..n {
                        // SAFETY: this lane's own row.
                        unsafe { mem.set(base + m_at(i, i), W::ZERO) };
                    }
                }
                for i in (1..=n - 2).rev() {
                    for j in (i + 1)..n {
                        s.fill(W::POS_INF);
                        for k in i..j {
                            for (t, lane) in (lo..hi).enumerate() {
                                let base = lane * msize;
                                // SAFETY: per-lane row addresses.
                                let x = unsafe { mem.get(base + m_at(i, k)) };
                                let y = unsafe { mem.get(base + m_at(k + 1, j)) };
                                let r = W::apply_bin(BinOp::Add, x, y);
                                s[t] = W::apply_bin(BinOp::Min, s[t], r);
                            }
                        }
                        for (t, lane) in (lo..hi).enumerate() {
                            let base = lane * msize;
                            let c = unsafe { mem.get(base + c_at(i - 1, j)) };
                            let v = W::apply_bin(BinOp::Add, s[t], c);
                            unsafe { mem.set(base + m_at(i, j), v) };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::launch::launch;
    use algorithms::opt::{reference, ChordWeights};
    use oblivious::layout::extract;
    use oblivious::program::arrange_inputs;

    fn weights(n: usize, p: usize) -> Vec<ChordWeights> {
        (0..p)
            .map(|s| {
                ChordWeights::from_fn(n, |i, j| (((i * 131 + j * 17 + s * 97) % 500) as f64) + 1.0)
            })
            .collect()
    }

    #[test]
    fn both_layouts_match_reference_dp() {
        let (n, p) = (8usize, 70usize);
        let ws = weights(n, p);
        let inputs: Vec<Vec<f64>> = ws.iter().map(|c| c.as_words()).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = OptTriangulation::new(n);
        for layout in Layout::all() {
            let kernel = OptKernel::new(n, layout);
            let mut buf = arrange_inputs(&prog, &refs, layout);
            launch(&Device::titan_like(), &kernel, &mut buf, p);
            let nn = n * n;
            let outs = extract(&buf, p, 2 * nn, layout, nn..2 * nn);
            for (c, out) in ws.iter().zip(&outs) {
                let (want, _) = reference(c);
                assert_eq!(out[prog.answer_offset()], want, "{layout}");
            }
        }
    }

    #[test]
    fn kernel_agrees_with_generic_engine() {
        let (n, p) = (6usize, 33usize);
        let ws = weights(n, p);
        let inputs: Vec<Vec<f32>> = ws.iter().map(|c| c.as_words()).collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = OptTriangulation::new(n);
        for layout in Layout::all() {
            let want = oblivious::program::bulk_execute(&prog, &refs, layout);
            let mut buf = arrange_inputs(&prog, &refs, layout);
            launch(&Device::single_worker(), &OptKernel::new(n, layout), &mut buf, p);
            let nn = n * n;
            let got = extract(&buf, p, 2 * nn, layout, nn..2 * nn);
            assert_eq!(got, want, "{layout}");
        }
    }

    #[test]
    fn triangle_answer_is_zero() {
        let (n, p) = (3usize, 4usize);
        let ws = weights(n, p);
        let inputs: Vec<Vec<f64>> = ws.iter().map(|c| c.as_words()).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = OptTriangulation::new(n);
        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        launch(&Device::single_worker(), &OptKernel::new(n, Layout::ColumnWise), &mut buf, p);
        let nn = n * n;
        let outs = extract(&buf, p, 2 * nn, Layout::ColumnWise, nn..2 * nn);
        for out in outs {
            assert_eq!(out[prog.answer_offset()], 0.0);
        }
    }
}
