//! Hand-written lockstep kernels for Parallel Algorithm Prefix-sums
//! (the paper's Section V experiment).
//!
//! Thread `h` keeps its running sum `r_h` in a block-local register vector
//! and walks `i = 0 … n-1`, reading and writing `b_h[i]`.  Under the
//! column-wise layout the block's accesses at step `i` form one contiguous
//! span (`i*p + lane_lo .. i*p + lane_hi`) — the coalesced pattern; under
//! the row-wise layout they form a stride-`n` gather — the uncoalesced
//! pattern whose cost the paper's Figure 11 quantifies.

use crate::buffer::SharedSlice;
use crate::launch::BulkKernel;
use oblivious::{BinOp, Layout, Word};

/// Bulk prefix-sums kernel over `n`-word instances.
#[derive(Debug, Clone, Copy)]
pub struct PrefixSumsKernel {
    /// Per-instance array length.
    pub n: usize,
    /// Bulk arrangement.
    pub layout: Layout,
}

impl PrefixSumsKernel {
    /// New kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, layout: Layout) -> Self {
        assert!(n > 0, "prefix-sums needs a non-empty array");
        Self { n, layout }
    }
}

impl<W: Word> BulkKernel<W> for PrefixSumsKernel {
    fn memory_words(&self) -> usize {
        self.n
    }

    unsafe fn run_block(&self, mem: &SharedSlice<'_, W>, p: usize, lo: usize, hi: usize) {
        let width = hi - lo;
        let mut acc = vec![W::ZERO; width];
        match self.layout {
            Layout::ColumnWise => {
                for i in 0..self.n {
                    let base = i * p + lo;
                    // SAFETY: the span covers only this block's lanes at
                    // logical address i; blocks own disjoint lane ranges.
                    let row = unsafe { mem.range_mut(base, base + width) };
                    for (a, x) in acc.iter_mut().zip(row.iter_mut()) {
                        *a = W::apply_bin(BinOp::Add, *a, *x);
                        *x = *a;
                    }
                }
            }
            Layout::RowWise => {
                let n = self.n;
                for i in 0..n {
                    for (k, lane) in (lo..hi).enumerate() {
                        let idx = lane * n + i;
                        // SAFETY: address belongs to `lane`, owned by this
                        // block.
                        let v = unsafe { mem.get(idx) };
                        acc[k] = W::apply_bin(BinOp::Add, acc[k], v);
                        unsafe { mem.set(idx, acc[k]) };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::launch::launch;
    use oblivious::layout::{arrange, extract};

    fn inputs(p: usize, n: usize) -> Vec<Vec<f32>> {
        (0..p).map(|j| (0..n).map(|i| (((j * 31 + i * 7) % 13) as f32) - 6.0).collect()).collect()
    }

    fn expected(inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        inputs.iter().map(|v| algorithms::prefix_sums::reference(v)).collect()
    }

    #[test]
    fn both_layouts_match_reference() {
        let (p, n) = (150, 9); // ragged final block
        let ins = inputs(p, n);
        let refs: Vec<&[f32]> = ins.iter().map(|v| v.as_slice()).collect();
        let want = expected(&ins);
        for layout in Layout::all() {
            let mut buf = arrange(&refs, n, layout);
            launch(&Device::titan_like(), &PrefixSumsKernel::new(n, layout), &mut buf, p);
            let got = extract(&buf, p, n, layout, 0..n);
            assert_eq!(got, want, "{layout}");
        }
    }

    #[test]
    fn kernel_agrees_with_generic_engine() {
        let (p, n) = (64, 16);
        let ins = inputs(p, n);
        let refs: Vec<&[f32]> = ins.iter().map(|v| v.as_slice()).collect();
        let prog = algorithms::PrefixSums::new(n);
        for layout in Layout::all() {
            let want = oblivious::program::bulk_execute(&prog, &refs, layout);
            let mut buf = arrange(&refs, n, layout);
            launch(&Device::single_worker(), &PrefixSumsKernel::new(n, layout), &mut buf, p);
            let got = extract(&buf, p, n, layout, 0..n);
            assert_eq!(got, want, "{layout}");
        }
    }

    #[test]
    fn integer_words_supported() {
        let (p, n) = (5, 4);
        let ins: Vec<Vec<u64>> = (0..p).map(|j| vec![j as u64 + 1; n]).collect();
        let refs: Vec<&[u64]> = ins.iter().map(|v| v.as_slice()).collect();
        let mut buf = arrange(&refs, n, Layout::ColumnWise);
        launch(
            &Device::single_worker(),
            &PrefixSumsKernel::new(n, Layout::ColumnWise),
            &mut buf,
            p,
        );
        let got = extract(&buf, p, n, Layout::ColumnWise, 0..n);
        assert_eq!(got[2], vec![3, 6, 9, 12]);
    }
}
