//! Hand-written lockstep XTEA kernel — the compute-bound counterpoint.
//!
//! Prefix-sums and OPT are memory-bound: their layout gap is the whole
//! story.  XTEA does 32 Feistel cycles of register arithmetic per 8-byte
//! block, so global traffic is a sliver of the work and the row/column gap
//! nearly vanishes — the boundary case that shows the coalescing rule only
//! bites when memory dominates (bench `bench_xtea` quantifies it).

use crate::buffer::SharedSlice;
use crate::launch::BulkKernel;
use oblivious::Layout;

const DELTA: u32 = 0x9E37_79B9;

/// Bulk XTEA encryption kernel: each instance holds a 4-word key followed
/// by `2 * blocks` data words (matching `algorithms::Xtea`'s layout).
#[derive(Debug, Clone, Copy)]
pub struct XteaKernel {
    /// 64-bit blocks per instance.
    pub blocks: usize,
    /// Feistel cycles (standard: 32).
    pub rounds: u32,
    /// Bulk arrangement.
    pub layout: Layout,
}

impl XteaKernel {
    /// Standard 32-cycle encryption kernel.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    #[must_use]
    pub fn new(blocks: usize, layout: Layout) -> Self {
        assert!(blocks > 0, "need at least one block");
        Self { blocks, rounds: 32, layout }
    }

    #[inline]
    fn encipher(&self, mut v0: u32, mut v1: u32, key: [u32; 4]) -> (u32, u32) {
        let mut sum = 0u32;
        for _ in 0..self.rounds {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(key[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
            );
        }
        (v0, v1)
    }
}

impl BulkKernel<u32> for XteaKernel {
    fn memory_words(&self) -> usize {
        4 + 2 * self.blocks
    }

    unsafe fn run_block(&self, mem: &SharedSlice<'_, u32>, p: usize, lo: usize, hi: usize) {
        let msize = 4 + 2 * self.blocks;
        let addr = |a: usize, lane: usize| match self.layout {
            Layout::RowWise => lane * msize + a,
            Layout::ColumnWise => a * p + lane,
        };
        for lane in lo..hi {
            // SAFETY: every address below belongs to `lane`, which this
            // block owns exclusively.
            let key = unsafe {
                [
                    mem.get(addr(0, lane)),
                    mem.get(addr(1, lane)),
                    mem.get(addr(2, lane)),
                    mem.get(addr(3, lane)),
                ]
            };
            for b in 0..self.blocks {
                let a0 = addr(4 + 2 * b, lane);
                let a1 = addr(5 + 2 * b, lane);
                let (v0, v1) = unsafe { (mem.get(a0), mem.get(a1)) };
                let (c0, c1) = self.encipher(v0, v1, key);
                unsafe {
                    mem.set(a0, c0);
                    mem.set(a1, c1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::launch::launch;
    use algorithms::xtea::encipher_reference;
    use algorithms::Xtea;
    use oblivious::layout::extract;
    use oblivious::program::arrange_inputs;

    fn instances(p: usize, blocks: usize) -> Vec<Vec<u32>> {
        (0..p as u32)
            .map(|s| {
                (0..4 + 2 * blocks)
                    .map(|i| s.wrapping_mul(2654435761).wrapping_add(i as u32 * 40503))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_reference_cipher_both_layouts() {
        let (p, blocks) = (77usize, 3usize);
        let ins = instances(p, blocks);
        let refs: Vec<&[u32]> = ins.iter().map(|v| v.as_slice()).collect();
        let prog = Xtea::encrypt(blocks);
        for layout in Layout::all() {
            let mut buf = arrange_inputs(&prog, &refs, layout);
            launch(&Device::titan_like(), &XteaKernel::new(blocks, layout), &mut buf, p);
            let msize = 4 + 2 * blocks;
            let outs = extract(&buf, p, msize, layout, 4..msize);
            for (inst, out) in ins.iter().zip(&outs) {
                let key = [inst[0], inst[1], inst[2], inst[3]];
                for b in 0..blocks {
                    let want = encipher_reference(32, [inst[4 + 2 * b], inst[5 + 2 * b]], key);
                    assert_eq!(&out[2 * b..2 * b + 2], &want, "{layout} block {b}");
                }
            }
        }
    }

    #[test]
    fn kernel_agrees_with_generic_engine() {
        let (p, blocks) = (40usize, 2usize);
        let ins = instances(p, blocks);
        let refs: Vec<&[u32]> = ins.iter().map(|v| v.as_slice()).collect();
        let prog = Xtea::encrypt(blocks);
        let want = oblivious::program::bulk_execute(&prog, &refs, Layout::ColumnWise);
        let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
        launch(&Device::single_worker(), &XteaKernel::new(blocks, Layout::ColumnWise), &mut buf, p);
        let msize = 4 + 2 * blocks;
        let got = extract(&buf, p, msize, Layout::ColumnWise, 4..msize);
        assert_eq!(got, want);
    }
}
