//! Kernel launching: block decomposition and SM-worker scheduling.

use crate::buffer::SharedSlice;
use crate::device::Device;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bulk kernel: lockstep execution of one algorithm over a lane range.
///
/// Implementations must only touch physical addresses that belong to lanes
/// in `[lane_lo, lane_hi)` — that disjointness is what makes the
/// [`SharedSlice`] accesses sound across concurrently executing blocks.
pub trait BulkKernel<W: Copy>: Sync {
    /// Words of per-instance memory (`msize`); the global buffer holds
    /// `p * msize` words.
    fn memory_words(&self) -> usize;

    /// Execute instances `[lane_lo, lane_hi)` of a `p`-instance launch.
    ///
    /// # Safety
    ///
    /// The caller guarantees no concurrent block shares any lane in the
    /// range; the implementation guarantees it touches only its own lanes'
    /// addresses.
    unsafe fn run_block(&self, mem: &SharedSlice<'_, W>, p: usize, lane_lo: usize, lane_hi: usize);
}

/// Launch a kernel over `p` instances stored in `buf` (length
/// `p * kernel.memory_words()`), in place.
///
/// Lanes are cut into `device.block_size`-wide blocks; worker threads (the
/// "SMs") claim blocks from a shared counter, mimicking a GPU's dynamic
/// block scheduler.  Single-worker devices run inline with no thread
/// spawning (and no scheduling noise — useful for timing on small hosts).
///
/// # Panics
///
/// Panics if the buffer size does not match, or a worker panics.
pub fn launch<W: Copy + Send, K: BulkKernel<W>>(device: &Device, kernel: &K, buf: &mut [W], p: usize) {
    assert!(p > 0, "launch needs at least one instance");
    assert_eq!(buf.len(), p * kernel.memory_words(), "buffer must hold p * memory_words words");
    let block = device.block_size;
    let nblocks = p.div_ceil(block);
    let shared = SharedSlice::new(buf);

    if device.worker_threads <= 1 || nblocks == 1 {
        for b in 0..nblocks {
            let lo = b * block;
            let hi = ((b + 1) * block).min(p);
            // SAFETY: sequential execution, ranges disjoint by construction.
            unsafe { kernel.run_block(&shared, p, lo, hi) };
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let workers = device.worker_threads.min(nblocks);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                if b >= nblocks {
                    break;
                }
                let lo = b * block;
                let hi = ((b + 1) * block).min(p);
                // SAFETY: each block index is claimed exactly once, so lane
                // ranges across threads are disjoint; kernels honour the
                // lane-locality contract.
                unsafe { kernel.run_block(&shared, p, lo, hi) };
            });
        }
    })
    .expect("kernel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes `lane * 10 + addr` to every word of its instances
    /// (column-wise layout).
    struct StampKernel {
        msize: usize,
    }

    impl BulkKernel<u64> for StampKernel {
        fn memory_words(&self) -> usize {
            self.msize
        }
        unsafe fn run_block(&self, mem: &SharedSlice<'_, u64>, p: usize, lo: usize, hi: usize) {
            for addr in 0..self.msize {
                for lane in lo..hi {
                    // SAFETY: our own lanes only.
                    unsafe { mem.set(addr * p + lane, (lane * 10 + addr) as u64) };
                }
            }
        }
    }

    #[test]
    fn covers_every_lane_once_single_worker() {
        let (p, msize) = (133, 3); // deliberately not a block multiple
        let mut buf = vec![0u64; p * msize];
        launch(&Device::single_worker(), &StampKernel { msize }, &mut buf, p);
        for addr in 0..msize {
            for lane in 0..p {
                assert_eq!(buf[addr * p + lane], (lane * 10 + addr) as u64);
            }
        }
    }

    #[test]
    fn covers_every_lane_once_parallel() {
        let (p, msize) = (1000, 2);
        let mut buf = vec![0u64; p * msize];
        let mut dev = Device::titan_like();
        dev.worker_threads = dev.worker_threads.max(2);
        launch(&dev, &StampKernel { msize }, &mut buf, p);
        for addr in 0..msize {
            for lane in 0..p {
                assert_eq!(buf[addr * p + lane], (lane * 10 + addr) as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer must hold")]
    fn wrong_buffer_size_rejected() {
        let mut buf = vec![0u64; 5];
        launch(&Device::single_worker(), &StampKernel { msize: 3 }, &mut buf, 2);
    }
}
