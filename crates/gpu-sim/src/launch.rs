//! Kernel launching: block decomposition and SM-worker scheduling.

use crate::buffer::SharedSlice;
use crate::device::Device;
use obs::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A bulk kernel: lockstep execution of one algorithm over a lane range.
///
/// Implementations must only touch physical addresses that belong to lanes
/// in `[lane_lo, lane_hi)` — that disjointness is what makes the
/// [`SharedSlice`] accesses sound across concurrently executing blocks.
pub trait BulkKernel<W: Copy>: Sync {
    /// Words of per-instance memory (`msize`); the global buffer holds
    /// `p * msize` words.
    fn memory_words(&self) -> usize;

    /// Execute instances `[lane_lo, lane_hi)` of a `p`-instance launch.
    ///
    /// # Safety
    ///
    /// The caller guarantees no concurrent block shares any lane in the
    /// range; the implementation guarantees it touches only its own lanes'
    /// addresses.
    unsafe fn run_block(&self, mem: &SharedSlice<'_, W>, p: usize, lane_lo: usize, lane_hi: usize);
}

/// Per-worker observer of block execution, monomorphized into the worker
/// loop.  The no-op implementation ([`NoObserver`]) compiles away entirely,
/// so the plain [`launch`] path carries zero instrumentation cost; the
/// recording implementation behind [`launch_profiled`] reads the clock
/// around each block.
trait BlockObserver {
    /// Called immediately after claiming `block`, before executing it.
    fn block_start(&mut self, _block: usize) {}
    /// Called immediately after `block` finishes.
    fn block_end(&mut self, _block: usize) {}
}

/// The zero-cost observer.
struct NoObserver;
impl BlockObserver for NoObserver {}

/// One executed block, as recorded by [`launch_profiled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRecord {
    /// Block index (lane range `block * block_size ..`).
    pub block: usize,
    /// Worker ("SM") that executed it.
    pub worker: usize,
    /// Time between this worker finishing its previous block (or the launch
    /// starting) and this block beginning execution — scheduler queue-wait.
    pub queue_wait: Duration,
    /// Block execution time.
    pub exec: Duration,
}

/// Aggregate of one worker's activity during a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Blocks executed.
    pub blocks: u64,
    /// Total time spent executing blocks.
    pub busy: Duration,
    /// Total time spent waiting to claim work.
    pub waiting: Duration,
}

/// The full profile of one [`launch_profiled`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Device name the launch ran on.
    pub device: String,
    /// Lanes per block.
    pub block_size: usize,
    /// Blocks launched.
    pub blocks: usize,
    /// Wall-clock duration of the whole launch.
    pub wall: Duration,
    /// Per-worker aggregates, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Every executed block, sorted by block index.
    pub block_records: Vec<BlockRecord>,
}

impl LaunchReport {
    /// Blocks-per-worker imbalance: `max / mean` (1.0 = perfectly even).
    #[must_use]
    pub fn block_imbalance(&self) -> f64 {
        let max = self.workers.iter().map(|w| w.blocks).max().unwrap_or(0) as f64;
        let mean = self.blocks as f64 / self.workers.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// As a JSON object: launch shape, per-worker aggregates, and the full
    /// per-block timing array.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = self.summary_json();
        obj.set(
            "blocks_detail",
            Json::Arr(
                self.block_records
                    .iter()
                    .map(|b| {
                        let mut r = Json::obj();
                        r.set("block", b.block);
                        r.set("worker", b.worker);
                        r.set("queue_wait_s", b.queue_wait.as_secs_f64());
                        r.set("exec_s", b.exec.as_secs_f64());
                        r
                    })
                    .collect(),
            ),
        );
        obj
    }

    /// Reconstruct the launch as an event timeline: one track per worker
    /// ("SM n"), a `block` span per executed block and a `sched`-category
    /// `wait` span for every non-zero queue wait preceding it.
    ///
    /// Ticks are nanoseconds (`ticks_per_us = 1000`), so a Chrome-trace
    /// export of the result lands on a microsecond axis with fractional
    /// precision.  Block order within a worker is execution order, so span
    /// placement follows directly from each worker's running free time.
    #[must_use]
    pub fn to_trace(&self) -> obs::Tracer {
        let mut t =
            obs::Tracer::with_capacity(self.block_records.len() * 2 + 16).with_ticks_per_us(1_000);
        for w in &self.workers {
            t.name_track(w.worker as u64, format!("SM {}", w.worker));
        }
        let nworkers = self.workers.iter().map(|w| w.worker + 1).max().unwrap_or(0);
        let mut free = vec![0u64; nworkers];
        // Sorted by block index; within one worker that is execution order.
        for b in &self.block_records {
            let tid = b.worker as u64;
            let wait = b.queue_wait.as_nanos() as u64;
            let exec = b.exec.as_nanos() as u64;
            let start = free[b.worker] + wait;
            if wait > 0 {
                t.span(tid, "wait", "sched", free[b.worker], wait, Json::obj());
            }
            let mut args = Json::obj();
            args.set("block", b.block);
            t.span(tid, "block", "block", start, exec, args);
            free[b.worker] = start + exec;
        }
        t
    }

    /// The aggregate half of [`LaunchReport::to_json`] — per-worker rows
    /// without the per-block array (what sweep benchmarks embed).
    #[must_use]
    pub fn summary_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("device", self.device.as_str());
        obj.set("block_size", self.block_size);
        obj.set("blocks", self.blocks);
        obj.set("wall_s", self.wall.as_secs_f64());
        obj.set("block_imbalance", self.block_imbalance());
        obj.set(
            "workers",
            Json::Arr(
                self.workers
                    .iter()
                    .map(|w| {
                        let mut r = Json::obj();
                        r.set("worker", w.worker);
                        r.set("blocks", w.blocks);
                        r.set("busy_s", w.busy.as_secs_f64());
                        r.set("waiting_s", w.waiting.as_secs_f64());
                        r
                    })
                    .collect(),
            ),
        );
        obj
    }
}

/// Recording observer: one per worker, merged after the join.
struct Recorder {
    worker: usize,
    last_free: Instant,
    started: Option<Instant>,
    current: usize,
    records: Vec<BlockRecord>,
}

impl Recorder {
    fn new(worker: usize, launch_start: Instant) -> Self {
        Self { worker, last_free: launch_start, started: None, current: 0, records: Vec::new() }
    }
}

impl BlockObserver for Recorder {
    fn block_start(&mut self, block: usize) {
        self.current = block;
        self.started = Some(Instant::now());
    }

    fn block_end(&mut self, block: usize) {
        debug_assert_eq!(block, self.current);
        let end = Instant::now();
        let started = self.started.take().expect("block_end without block_start");
        self.records.push(BlockRecord {
            block,
            worker: self.worker,
            queue_wait: started - self.last_free,
            exec: end - started,
        });
        self.last_free = end;
    }
}

/// The block-claim loop every worker runs: grab the next block index off the
/// shared counter until none remain.
fn worker_loop<W: Copy, K: BulkKernel<W>, O: BlockObserver>(
    kernel: &K,
    shared: &SharedSlice<'_, W>,
    p: usize,
    block: usize,
    nblocks: usize,
    next: &AtomicUsize,
    observer: &mut O,
) {
    loop {
        let b = next.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        let lo = b * block;
        let hi = ((b + 1) * block).min(p);
        observer.block_start(b);
        // SAFETY: each block index is claimed exactly once, so lane ranges
        // across threads are disjoint; kernels honour the lane-locality
        // contract.
        unsafe { kernel.run_block(shared, p, lo, hi) };
        observer.block_end(b);
    }
}

/// Launch a kernel over `p` instances stored in `buf` (length
/// `p * kernel.memory_words()`), in place.
///
/// Lanes are cut into `device.block_size`-wide blocks; worker threads (the
/// "SMs") claim blocks from a shared counter, mimicking a GPU's dynamic
/// block scheduler.  Single-worker devices run inline with no thread
/// spawning (and no scheduling noise — useful for timing on small hosts).
///
/// # Panics
///
/// Panics if the buffer size does not match, or a worker panics.
pub fn launch<W: Copy + Send, K: BulkKernel<W>>(
    device: &Device,
    kernel: &K,
    buf: &mut [W],
    p: usize,
) {
    assert!(p > 0, "launch needs at least one instance");
    assert_eq!(buf.len(), p * kernel.memory_words(), "buffer must hold p * memory_words words");
    let block = device.block_size;
    let nblocks = p.div_ceil(block);
    let shared = SharedSlice::new(buf);

    if device.worker_threads <= 1 || nblocks == 1 {
        for b in 0..nblocks {
            let lo = b * block;
            let hi = ((b + 1) * block).min(p);
            // SAFETY: sequential execution, ranges disjoint by construction.
            unsafe { kernel.run_block(&shared, p, lo, hi) };
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let workers = device.worker_threads.min(nblocks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (shared, next) = (&shared, &next);
                scope.spawn(move || {
                    worker_loop(kernel, shared, p, block, nblocks, next, &mut NoObserver);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("kernel worker panicked");
        }
    });
}

/// [`launch`] with scheduler profiling: records which worker executed each
/// block, its execution time and queue-wait, and returns per-worker
/// aggregates.  The unprofiled path is monomorphized separately (the
/// no-op observer inlines to nothing), so [`launch`] never pays for this.
///
/// # Panics
///
/// Panics if the buffer size does not match, or a worker panics.
pub fn launch_profiled<W: Copy + Send, K: BulkKernel<W>>(
    device: &Device,
    kernel: &K,
    buf: &mut [W],
    p: usize,
) -> LaunchReport {
    assert!(p > 0, "launch needs at least one instance");
    assert_eq!(buf.len(), p * kernel.memory_words(), "buffer must hold p * memory_words words");
    let block = device.block_size;
    let nblocks = p.div_ceil(block);
    let shared = SharedSlice::new(buf);
    let start = Instant::now();
    let next = AtomicUsize::new(0);

    let recorders: Vec<Recorder> = if device.worker_threads <= 1 || nblocks == 1 {
        let mut rec = Recorder::new(0, start);
        worker_loop(kernel, &shared, p, block, nblocks, &next, &mut rec);
        vec![rec]
    } else {
        let workers = device.worker_threads.min(nblocks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wid| {
                    let (shared, next) = (&shared, &next);
                    scope.spawn(move || {
                        let mut rec = Recorder::new(wid, start);
                        worker_loop(kernel, shared, p, block, nblocks, next, &mut rec);
                        rec
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("kernel worker panicked")).collect()
        })
    };

    let wall = start.elapsed();
    let workers = recorders
        .iter()
        .map(|r| WorkerReport {
            worker: r.worker,
            blocks: r.records.len() as u64,
            busy: r.records.iter().map(|b| b.exec).sum(),
            waiting: r.records.iter().map(|b| b.queue_wait).sum(),
        })
        .collect();
    let mut block_records: Vec<BlockRecord> =
        recorders.into_iter().flat_map(|r| r.records).collect();
    block_records.sort_by_key(|b| b.block);
    LaunchReport {
        device: device.name.clone(),
        block_size: block,
        blocks: nblocks,
        wall,
        workers,
        block_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes `lane * 10 + addr` to every word of its instances
    /// (column-wise layout).
    struct StampKernel {
        msize: usize,
    }

    impl BulkKernel<u64> for StampKernel {
        fn memory_words(&self) -> usize {
            self.msize
        }
        unsafe fn run_block(&self, mem: &SharedSlice<'_, u64>, p: usize, lo: usize, hi: usize) {
            for addr in 0..self.msize {
                for lane in lo..hi {
                    // SAFETY: our own lanes only.
                    unsafe { mem.set(addr * p + lane, (lane * 10 + addr) as u64) };
                }
            }
        }
    }

    #[test]
    fn covers_every_lane_once_single_worker() {
        let (p, msize) = (133, 3); // deliberately not a block multiple
        let mut buf = vec![0u64; p * msize];
        launch(&Device::single_worker(), &StampKernel { msize }, &mut buf, p);
        for addr in 0..msize {
            for lane in 0..p {
                assert_eq!(buf[addr * p + lane], (lane * 10 + addr) as u64);
            }
        }
    }

    #[test]
    fn covers_every_lane_once_parallel() {
        let (p, msize) = (1000, 2);
        let mut buf = vec![0u64; p * msize];
        let mut dev = Device::titan_like();
        dev.worker_threads = dev.worker_threads.max(2);
        launch(&dev, &StampKernel { msize }, &mut buf, p);
        for addr in 0..msize {
            for lane in 0..p {
                assert_eq!(buf[addr * p + lane], (lane * 10 + addr) as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer must hold")]
    fn wrong_buffer_size_rejected() {
        let mut buf = vec![0u64; 5];
        launch(&Device::single_worker(), &StampKernel { msize: 3 }, &mut buf, 2);
    }

    #[test]
    fn profiled_launch_matches_plain_and_accounts_blocks() {
        let (p, msize) = (1000, 2);
        let mut dev = Device::titan_like();
        dev.worker_threads = dev.worker_threads.max(2);

        let mut plain = vec![0u64; p * msize];
        launch(&dev, &StampKernel { msize }, &mut plain, p);
        let mut prof = vec![0u64; p * msize];
        let report = launch_profiled(&dev, &StampKernel { msize }, &mut prof, p);
        assert_eq!(plain, prof, "profiling must not change results");

        let nblocks = p.div_ceil(dev.block_size);
        assert_eq!(report.blocks, nblocks);
        assert_eq!(report.block_records.len(), nblocks, "every block recorded once");
        for (i, b) in report.block_records.iter().enumerate() {
            assert_eq!(b.block, i, "each block index claimed exactly once");
        }
        let total: u64 = report.workers.iter().map(|w| w.blocks).sum();
        assert_eq!(total, nblocks as u64);
        assert!(report.wall >= report.workers.iter().map(|w| w.busy).max().unwrap());
        assert!(report.block_imbalance() >= 1.0);
    }

    #[test]
    fn launch_trace_reconstructs_per_worker_timelines() {
        let (p, msize) = (1000, 2);
        let mut dev = Device::titan_like();
        dev.worker_threads = dev.worker_threads.max(2);
        let mut buf = vec![0u64; p * msize];
        let report = launch_profiled(&dev, &StampKernel { msize }, &mut buf, p);

        let t = report.to_trace();
        obs::trace::validate(&t).expect("launch trace must be well-formed");
        assert_eq!(t.ticks_per_us(), 1_000, "device time is in nanoseconds");
        assert_eq!(t.dropped(), 0);
        let blocks = t.events().iter().filter(|e| e.name == "block").count();
        assert_eq!(blocks, report.blocks, "one block span per executed block");
        for w in &report.workers {
            assert_eq!(t.track_name(w.worker as u64), Some(format!("SM {}", w.worker)).as_deref());
            let busy = t
                .events()
                .iter()
                .filter(|e| e.tid == w.worker as u64 && e.cat == "block")
                .map(|e| e.dur)
                .sum::<u64>();
            assert_eq!(busy, w.busy.as_nanos() as u64, "track busy time matches worker report");
        }
    }

    #[test]
    fn profiled_single_worker_records_serially() {
        let (p, msize) = (100, 1);
        let mut buf = vec![0u64; p * msize];
        let report = launch_profiled(&Device::single_worker(), &StampKernel { msize }, &mut buf, p);
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].blocks, report.blocks as u64);
        let j = report.to_json();
        assert_eq!(j.path("blocks").unwrap().as_i64().unwrap(), report.blocks as i64);
        assert_eq!(j.path("blocks_detail").unwrap().as_arr().unwrap().len(), report.blocks);
    }
}
