//! # gpu-sim — a software-SIMT device
//!
//! The stand-in for the paper's GeForce GTX Titan (see DESIGN.md §2): bulk
//! kernels execute thread blocks in lockstep over worker threads, so every
//! memory step of a block is a warp-wide vector access against the global
//! buffer.  Under the **column-wise** layout those accesses are contiguous —
//! the CPU-cache analogue of a coalesced DRAM burst; under the **row-wise**
//! layout they are `msize`-strided — the analogue of an uncoalesced one.
//! The measured gap between the layouts is the effect the paper's Figures
//! 11 and 12 quantify.
//!
//! Pieces:
//!
//! * [`Device`] — SM-count / warp / block geometry ([`Device::titan_like`]).
//! * [`mod@launch`] — the block scheduler (dynamic block claiming over
//!   std-scoped worker threads), with an optionally profiled variant
//!   ([`launch_profiled`]) recording per-block timings and queue-waits.
//! * [`kernels`] — hand-written lockstep kernels for Parallel Algorithm
//!   Prefix-sums and Parallel Algorithm OPT, both layouts.
//! * [`generic`] — any [`oblivious::ObliviousProgram`] as a kernel
//!   (the paper's "conversion system", multi-threaded).
//! * [`cpu_ref`] — the paper's sequential single-core baseline.
//! * [`timing`] — median-of-N wall-clock helpers for the harnesses.
//!
//! Unsafe code is confined to [`buffer::SharedSlice`], whose contract
//! (disjoint lane ranges per block) is established by the launcher.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod buffer;
pub mod cpu_ref;
pub mod device;
pub mod generic;
pub mod kernels;
pub mod launch;
pub mod timing;

pub use buffer::SharedSlice;
pub use device::Device;
pub use generic::{BlockLanes, GenericKernel};
pub use kernels::{OptKernel, PrefixSumsKernel, XteaKernel};
pub use launch::{launch, launch_profiled, BlockRecord, BulkKernel, LaunchReport, WorkerReport};
