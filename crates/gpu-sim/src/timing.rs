//! Wall-clock measurement helpers for the benchmark harnesses.

use std::time::{Duration, Instant};

/// Time one invocation of `f`.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Run `f` `reps` times (after one warm-up) and return the **median**
/// duration — robust to scheduler noise on small hosts.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn median_time<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0, "need at least one repetition");
    f(); // warm-up: page in buffers, warm caches
    let mut samples: Vec<Duration> = (0..reps).map(|_| time_once(&mut f)).collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Seconds as f64.
#[must_use]
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Nanoseconds per item for a duration over `items` units of work.
#[must_use]
pub fn ns_per_item(d: Duration, items: usize) -> f64 {
    d.as_secs_f64() * 1e9 / items as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures_something() {
        let d = time_once(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0usize;
        let d = median_time(5, || {
            calls += 1;
        });
        assert_eq!(calls, 6, "5 reps + 1 warm-up");
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn ns_per_item_scales() {
        let d = Duration::from_micros(1000);
        assert!((ns_per_item(d, 1000) - 1000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        let _ = median_time(0, || {});
    }
}
