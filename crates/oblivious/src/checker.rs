//! Obliviousness checking for *raw* algorithms.
//!
//! Programs written against [`crate::machine::ObliviousMachine`] are
//! oblivious by construction.  Algorithms implemented outside that interface
//! (hand-written kernels, third-party code) can still be *tested* for
//! obliviousness: record their address trace on many inputs and require all
//! traces to coincide step by step.  A genuine proof would need all inputs;
//! the checker is a falsifier — one mismatch certifies non-obliviousness
//! (as for binary search, see `algorithms::nonoblivious`).

use umm_core::{ThreadAction, ThreadTrace};

/// Evidence that an algorithm is not oblivious.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousnessViolation {
    /// Index of the input whose trace diverged from input 0's.
    pub input_index: usize,
    /// First time step at which the traces differ (or the length of the
    /// shorter trace, when one trace is a strict prefix of the other).
    pub step: usize,
    /// Action of the reference trace at `step`, if it has one.
    pub expected: Option<ThreadAction>,
    /// Action of the diverging trace at `step`, if it has one.
    pub got: Option<ThreadAction>,
}

impl core::fmt::Display for ObliviousnessViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "input {} diverges at step {}: expected {:?}, got {:?}",
            self.input_index, self.step, self.expected, self.got
        )
    }
}

/// Compare the address traces an algorithm produces on a set of inputs.
///
/// Returns the common trace if all agree, or the first violation found.
/// `trace_fn` runs the algorithm on one input and records its trace.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn check_oblivious<I>(
    trace_fn: impl Fn(&I) -> ThreadTrace,
    inputs: &[I],
) -> Result<ThreadTrace, ObliviousnessViolation> {
    assert!(!inputs.is_empty(), "need at least one input to trace");
    let reference = trace_fn(&inputs[0]);
    for (idx, input) in inputs.iter().enumerate().skip(1) {
        let t = trace_fn(input);
        if let Some(v) = first_divergence(&reference, &t, idx) {
            return Err(v);
        }
    }
    Ok(reference)
}

fn first_divergence(
    a: &ThreadTrace,
    b: &ThreadTrace,
    input_index: usize,
) -> Option<ObliviousnessViolation> {
    let (sa, sb) = (a.steps(), b.steps());
    let n = sa.len().min(sb.len());
    for i in 0..n {
        if sa[i] != sb[i] {
            return Some(ObliviousnessViolation {
                input_index,
                step: i,
                expected: Some(sa[i]),
                got: Some(sb[i]),
            });
        }
    }
    if sa.len() != sb.len() {
        return Some(ObliviousnessViolation {
            input_index,
            step: n,
            expected: sa.get(n).copied(),
            got: sb.get(n).copied(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A raw oblivious trace: always touches 0, 1, 2.
    #[allow(clippy::ptr_arg)] // matches the checker's &I item type
    fn sweep_trace(_input: &Vec<f64>) -> ThreadTrace {
        let mut t = ThreadTrace::new();
        for a in 0..3 {
            t.read(a);
        }
        t
    }

    /// A raw data-dependent trace: touches the index of the first negative
    /// element — a miniature binary-search-like pattern.
    #[allow(clippy::ptr_arg)]
    fn leaky_trace(input: &Vec<f64>) -> ThreadTrace {
        let mut t = ThreadTrace::new();
        let idx = input.iter().position(|&x| x < 0.0).unwrap_or(0);
        t.read(idx);
        t
    }

    /// A trace whose *length* depends on the data.
    #[allow(clippy::ptr_arg)]
    fn variable_length_trace(input: &Vec<f64>) -> ThreadTrace {
        let mut t = ThreadTrace::new();
        let n = if input[0] > 0.0 { 3 } else { 1 };
        for a in 0..n {
            t.read(a);
        }
        t
    }

    #[test]
    fn accepts_identical_traces() {
        let inputs = vec![vec![1.0, 2.0], vec![-5.0, 0.5], vec![0.0, 0.0]];
        let t = check_oblivious(sweep_trace, &inputs).expect("oblivious");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn rejects_data_dependent_addresses() {
        let inputs = vec![vec![1.0, -1.0, 1.0], vec![-1.0, 1.0, 1.0]];
        let v = check_oblivious(leaky_trace, &inputs).unwrap_err();
        assert_eq!(v.input_index, 1);
        assert_eq!(v.step, 0);
        assert_ne!(v.expected, v.got);
        assert!(v.to_string().contains("diverges at step 0"));
    }

    #[test]
    fn rejects_data_dependent_length() {
        let inputs = vec![vec![1.0], vec![-1.0]];
        let v = check_oblivious(variable_length_trace, &inputs).unwrap_err();
        assert_eq!(v.step, 1, "prefix matches, divergence at truncation point");
        assert!(v.got.is_none());
    }

    #[test]
    fn single_input_vacuously_oblivious() {
        let inputs = vec![vec![-1.0, 2.0, 3.0]];
        assert!(check_oblivious(leaky_trace, &inputs).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_inputs_panic() {
        let inputs: Vec<Vec<f64>> = vec![];
        let _ = check_oblivious(sweep_trace, &inputs);
    }
}
