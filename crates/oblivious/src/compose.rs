//! Program combinators: build larger oblivious programs from smaller ones.
//!
//! Because an [`ObliviousProgram`] is just control flow over a machine,
//! combinators are implemented as *wrapper machines* that rewrite
//! addresses on the way through — composition cannot break obliviousness,
//! since the wrappers only apply index arithmetic.
//!
//! * [`Shifted`] — relocate a program's memory window by a constant offset.
//! * [`Chain`] — run `A` then `B` over one shared memory (pipelines where
//!   `B` consumes `A`'s output in place).
//! * [`Repeat`] — run a program `k` times (iterative refinement).

use crate::machine::{ObliviousMachine, ObliviousProgram};
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;

/// A machine view whose addresses are shifted by a constant.
struct OffsetMachine<'m, M> {
    inner: &'m mut M,
    offset: usize,
}

impl<'m, W: Word, M: ObliviousMachine<W>> ObliviousMachine<W> for OffsetMachine<'m, M> {
    type Value = M::Value;

    fn read(&mut self, addr: usize) -> M::Value {
        self.inner.read(addr + self.offset)
    }
    fn write(&mut self, addr: usize, v: M::Value) {
        self.inner.write(addr + self.offset, v);
    }
    fn constant(&mut self, c: W) -> M::Value {
        self.inner.constant(c)
    }
    fn unop(&mut self, op: UnOp, a: M::Value) -> M::Value {
        self.inner.unop(op, a)
    }
    fn binop(&mut self, op: BinOp, a: M::Value, b: M::Value) -> M::Value {
        self.inner.binop(op, a, b)
    }
    fn select(
        &mut self,
        cmp: CmpOp,
        a: M::Value,
        b: M::Value,
        t: M::Value,
        e: M::Value,
    ) -> M::Value {
        self.inner.select(cmp, a, b, t, e)
    }
    fn free(&mut self, v: M::Value) {
        self.inner.free(v);
    }
}

/// `P` with its whole memory window moved up by `offset` words.
#[derive(Debug, Clone, Copy)]
pub struct Shifted<P> {
    inner: P,
    offset: usize,
}

impl<P> Shifted<P> {
    /// Shift `inner`'s addresses by `offset`.
    #[must_use]
    pub fn new(inner: P, offset: usize) -> Self {
        Self { inner, offset }
    }
}

impl<W: Word, P: ObliviousProgram<W>> ObliviousProgram<W> for Shifted<P> {
    fn name(&self) -> String {
        format!("{}@+{}", self.inner.name(), self.offset)
    }
    fn memory_words(&self) -> usize {
        self.inner.memory_words() + self.offset
    }
    fn input_range(&self) -> core::ops::Range<usize> {
        let r = self.inner.input_range();
        r.start + self.offset..r.end + self.offset
    }
    fn output_range(&self) -> core::ops::Range<usize> {
        let r = self.inner.output_range();
        r.start + self.offset..r.end + self.offset
    }
    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        let mut om = OffsetMachine { inner: m, offset: self.offset };
        self.inner.run(&mut om);
    }
}

/// Run `A` then `B` over one shared memory window.
///
/// The combined program's memory is the larger of the two; `A`'s output is
/// expected to land where `B` reads its input (arrange with [`Shifted`] if
/// the windows differ).  Input is `A`'s, output is `B`'s.
#[derive(Debug, Clone, Copy)]
pub struct Chain<A, B> {
    a: A,
    b: B,
}

impl<A, B> Chain<A, B> {
    /// Compose two programs sequentially.
    #[must_use]
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<W: Word, A: ObliviousProgram<W>, B: ObliviousProgram<W>> ObliviousProgram<W> for Chain<A, B> {
    fn name(&self) -> String {
        format!("{} ; {}", self.a.name(), self.b.name())
    }
    fn memory_words(&self) -> usize {
        self.a.memory_words().max(self.b.memory_words())
    }
    fn input_range(&self) -> core::ops::Range<usize> {
        self.a.input_range()
    }
    fn output_range(&self) -> core::ops::Range<usize> {
        self.b.output_range()
    }
    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        self.a.run(m);
        self.b.run(m);
    }
}

/// Run `P` `k` times over its own memory (requires `P` to read where it
/// writes, i.e. `input_range == output_range` for the iteration to be
/// meaningful — not enforced, but asserted in debug builds).
#[derive(Debug, Clone, Copy)]
pub struct Repeat<P> {
    inner: P,
    times: usize,
}

impl<P> Repeat<P> {
    /// Repeat `inner` `times` times.
    ///
    /// # Panics
    ///
    /// Panics if `times == 0`.
    #[must_use]
    pub fn new(inner: P, times: usize) -> Self {
        assert!(times > 0, "must repeat at least once");
        Self { inner, times }
    }
}

impl<W: Word, P: ObliviousProgram<W>> ObliviousProgram<W> for Repeat<P> {
    fn name(&self) -> String {
        format!("{} x{}", self.inner.name(), self.times)
    }
    fn memory_words(&self) -> usize {
        self.inner.memory_words()
    }
    fn input_range(&self) -> core::ops::Range<usize> {
        self.inner.input_range()
    }
    fn output_range(&self) -> core::ops::Range<usize> {
        self.inner.output_range()
    }
    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        debug_assert_eq!(
            self.inner.input_range(),
            self.inner.output_range(),
            "Repeat needs an in-place program"
        );
        for _ in 0..self.times {
            self.inner.run(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{run_on_input, time_steps, trace_of};

    /// mem[i] += 1 for all i.
    #[derive(Clone, Copy)]
    struct Inc {
        n: usize,
    }

    impl ObliviousProgram<f64> for Inc {
        fn name(&self) -> String {
            "inc".into()
        }
        fn memory_words(&self) -> usize {
            self.n
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
            let one = m.constant(1.0);
            for i in 0..self.n {
                let x = m.read(i);
                let y = m.add(x, one);
                m.write(i, y);
                m.free(x);
                m.free(y);
            }
        }
    }

    #[test]
    fn shifted_relocates_the_window() {
        let prog = Shifted::new(Inc { n: 2 }, 3);
        assert_eq!(prog.memory_words(), 5);
        assert_eq!(prog.input_range(), 3..5);
        let out = run_on_input(&prog, &[10.0, 20.0]);
        assert_eq!(out, vec![11.0, 21.0]);
        // The trace touches only the shifted addresses.
        let t = trace_of::<f64, _>(&prog);
        assert!(t.steps().iter().all(|s| s.addr().is_none_or(|a| a >= 3)));
    }

    #[test]
    fn chain_runs_in_order() {
        // inc ; inc = +2.
        let prog = Chain::new(Inc { n: 3 }, Inc { n: 3 });
        let out = run_on_input(&prog, &[0.0, 1.0, 2.0]);
        assert_eq!(out, vec![2.0, 3.0, 4.0]);
        assert_eq!(time_steps::<f64, _>(&prog), 2 * time_steps::<f64, _>(&Inc { n: 3 }));
    }

    #[test]
    fn repeat_composes_k_times() {
        let prog = Repeat::new(Inc { n: 2 }, 5);
        let out = run_on_input(&prog, &[0.0, 100.0]);
        assert_eq!(out, vec![5.0, 105.0]);
    }

    #[test]
    fn combinators_nest() {
        // (inc x2) shifted by 1, chained after inc over the full window:
        // cell 0 gets +1, cells 1..3 get +1 then +2.
        let prog = Chain::new(Inc { n: 3 }, Shifted::new(Repeat::new(Inc { n: 2 }, 2), 1));
        assert_eq!(prog.memory_words(), 3);
        let out: Vec<f64> = {
            let mut mem = vec![0.0; 3];
            crate::program::run_scalar(&prog, &mut mem);
            mem
        };
        assert_eq!(out, vec![1.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_repeats_rejected() {
        let _ = Repeat::new(Inc { n: 1 }, 0);
    }
}
