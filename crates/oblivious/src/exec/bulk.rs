//! SIMD-lockstep bulk execution — the paper's central construction, and its
//! future-work "automatic conversion system" realised: any program written
//! against [`ObliviousMachine`] is bulk-executed for `p` inputs with no
//! per-algorithm work.
//!
//! `Value` is a handle to a *register*: a vector holding that value for
//! every lane (instance).  Each `read`/`write` goes through a [`LanePort`]:
//! the standard [`SliceLanes`] port maps logical addresses through a
//! [`Layout`] over a flat buffer — with [`Layout::ColumnWise`] a step is a
//! contiguous slice copy (the coalesced pattern), with [`Layout::RowWise`]
//! a stride-`msize` gather/scatter (the uncoalesced pattern).  The GPU
//! simulator provides its own port that confines a machine to one thread
//! block's lane range, which is how the generic engine runs multi-threaded.

use crate::exec::compiled::{CompiledSchedule, FusedStep, Operand, Step};
use crate::layout::Layout;
use crate::machine::ObliviousMachine;
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;
use obs::trace::Tracer;
use obs::Json;

/// Port-traffic and register-pressure counters of a bulk execution.
///
/// Each count is one *vector* step (touching all `p` lanes): `loads` and
/// `stores` are the memory rounds the cost model prices, `broadcasts` are
/// constant stores (one coalesced fill), and `register_ops` are pure
/// arithmetic steps that never reach memory.  Counting costs one integer
/// increment per `p`-word operation, so it is always on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkMetrics {
    /// Vector loads issued through the port.
    pub loads: u64,
    /// Vector stores issued through the port.
    pub stores: u64,
    /// Constant broadcasts issued through the port.
    pub broadcasts: u64,
    /// Register-only vector operations (unop/binop/select on lane data).
    pub register_ops: u64,
    /// High-water mark of simultaneously live registers.
    pub max_live_registers: usize,
}

impl BulkMetrics {
    /// Memory rounds (loads + stores + broadcasts) — the `t` that the
    /// UMM/DMM models charge for.
    #[must_use]
    pub fn memory_rounds(&self) -> u64 {
        self.loads + self.stores + self.broadcasts
    }

    /// As a JSON object for run reports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("loads", self.loads);
        obj.set("stores", self.stores);
        obj.set("broadcasts", self.broadcasts);
        obj.set("memory_rounds", self.memory_rounds());
        obj.set("register_ops", self.register_ops);
        obj.set("max_live_registers", self.max_live_registers);
        obj
    }
}

/// The non-memory operand of a fused read-modify-write round: either a
/// uniform constant or a borrowed register's lane vector.
#[derive(Debug, Clone, Copy)]
pub enum RmwOperand<'a, W> {
    /// The same constant for every lane.
    Const(W),
    /// Per-lane values (`len() == lanes()`).
    Reg(&'a [W]),
}

/// Vectorised memory access over a set of lockstep lanes.
///
/// `load`/`store` move one logical address's value for *every* lane at once;
/// the port owns the physical address mapping.
pub trait LanePort<W> {
    /// Number of lanes this port serves.
    fn lanes(&self) -> usize;

    /// Load logical `addr` of each lane into `dst` (`dst.len() == lanes()`).
    fn load(&mut self, addr: usize, dst: &mut [W]);

    /// Store `src[lane]` to logical `addr` of each lane.
    fn store(&mut self, addr: usize, src: &[W]);

    /// Store the same constant to logical `addr` of every lane.
    fn broadcast(&mut self, addr: usize, c: W);

    /// Fused read-modify-write: per lane, combine the word at `addr` with
    /// `other` and write the result back to `addr` *and* into `dst`
    /// (`dst.len() == lanes()`).  Operand order follows `other_on_left`:
    /// `op(other, mem)` when set, `op(mem, other)` otherwise.
    ///
    /// Semantically identical to `load(addr, dst); combine; store(addr,
    /// dst)` — which is the default implementation — but ports backed by
    /// directly addressable storage override it with a single pass, which is
    /// what makes compiled replay of streaming programs cheaper than the
    /// interpreter's three separate rounds.
    fn rmw_bin(
        &mut self,
        addr: usize,
        op: BinOp,
        other: RmwOperand<'_, W>,
        other_on_left: bool,
        dst: &mut [W],
    ) where
        W: Word,
    {
        self.load(addr, dst);
        match other {
            RmwOperand::Const(c) => {
                if other_on_left {
                    for d in dst.iter_mut() {
                        *d = W::apply_bin(op, c, *d);
                    }
                } else {
                    for d in dst.iter_mut() {
                        *d = W::apply_bin(op, *d, c);
                    }
                }
            }
            RmwOperand::Reg(o) => {
                if other_on_left {
                    for (d, &x) in dst.iter_mut().zip(o) {
                        *d = W::apply_bin(op, x, *d);
                    }
                } else {
                    for (d, &x) in dst.iter_mut().zip(o) {
                        *d = W::apply_bin(op, *d, x);
                    }
                }
            }
        }
        self.store(addr, dst);
    }

    /// Accumulator variant of [`LanePort::rmw_bin`]: `acc` is both the
    /// non-memory operand and the result sink — per lane,
    /// `mem[addr] = acc = op(mem[addr], acc)` (operand order per
    /// `other_on_left`).  One link of a fused accumulator chain.
    fn rmw_bin_acc(&mut self, addr: usize, op: BinOp, other_on_left: bool, acc: &mut [W])
    where
        W: Word,
    {
        let mut mem = vec![W::ZERO; acc.len()];
        self.load(addr, &mut mem);
        if other_on_left {
            for (a, &m) in acc.iter_mut().zip(&mem) {
                *a = W::apply_bin(op, *a, m);
            }
        } else {
            for (a, &m) in acc.iter_mut().zip(&mem) {
                *a = W::apply_bin(op, m, *a);
            }
        }
        self.store(addr, acc);
    }
}

/// The standard port: a flat `p × msize` buffer addressed through a
/// [`Layout`].
#[derive(Debug)]
pub struct SliceLanes<'a, W> {
    buf: &'a mut [W],
    p: usize,
    msize: usize,
    layout: Layout,
}

impl<'a, W: Word> SliceLanes<'a, W> {
    /// Wrap an arranged buffer of `p * msize` words.
    ///
    /// # Panics
    ///
    /// Panics if sizes do not match or `p == 0`.
    #[must_use]
    pub fn new(buf: &'a mut [W], p: usize, msize: usize, layout: Layout) -> Self {
        assert!(p > 0, "bulk execution needs at least one instance");
        assert_eq!(buf.len(), p * msize, "buffer must hold p * msize words");
        Self { buf, p, msize, layout }
    }

    /// Single-pass read-modify-write over the flat buffer: each lane's word
    /// at `addr` is read, combined, and written back in place, with the
    /// result mirrored into `dst`.
    ///
    /// The operand-order branch is resolved *here*, outside the lane loops
    /// (each order monomorphises its own copy of [`SliceLanes::rmw_go`]),
    /// so the loops stay branch-free and vectorisable.
    fn rmw_lanes(
        &mut self,
        addr: usize,
        other: RmwOperand<'_, W>,
        other_on_left: bool,
        dst: &mut [W],
        f: impl Fn(W, W) -> W,
    ) {
        if other_on_left {
            self.rmw_go(addr, other, dst, |m: W, o: W| f(o, m));
        } else {
            self.rmw_go(addr, other, dst, f);
        }
    }

    /// Single-pass accumulator link: per lane, combine the word at `addr`
    /// with `acc` and write the result to both — two streams, with the
    /// accumulator staying hot across a whole chain.
    fn acc_lanes(
        &mut self,
        addr: usize,
        other_on_left: bool,
        acc: &mut [W],
        f: impl Fn(W, W) -> W,
    ) {
        if other_on_left {
            self.acc_go(addr, acc, |m: W, o: W| f(o, m));
        } else {
            self.acc_go(addr, acc, f);
        }
    }

    /// The lane loops of [`SliceLanes::acc_lanes`], with `g(mem, acc)`
    /// already in memory-first operand order.
    fn acc_go(&mut self, addr: usize, acc: &mut [W], g: impl Fn(W, W) -> W) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p;
                let seg = &mut self.buf[base..base + self.p];
                for (s, a) in seg.iter_mut().zip(acc.iter_mut()) {
                    let v = g(*s, *a);
                    *s = v;
                    *a = v;
                }
            }
            Layout::RowWise => {
                let msize = self.msize;
                for (lane, a) in acc.iter_mut().enumerate() {
                    let s = &mut self.buf[lane * msize + addr];
                    let v = g(*s, *a);
                    *s = v;
                    *a = v;
                }
            }
        }
    }

    /// The lane loops of [`SliceLanes::rmw_lanes`], with `g(mem, other)`
    /// already in memory-first operand order.
    fn rmw_go(
        &mut self,
        addr: usize,
        other: RmwOperand<'_, W>,
        dst: &mut [W],
        g: impl Fn(W, W) -> W,
    ) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p;
                let seg = &mut self.buf[base..base + self.p];
                match other {
                    RmwOperand::Const(c) => {
                        for (s, d) in seg.iter_mut().zip(dst.iter_mut()) {
                            let v = g(*s, c);
                            *s = v;
                            *d = v;
                        }
                    }
                    RmwOperand::Reg(o) => {
                        for ((s, d), &x) in seg.iter_mut().zip(dst.iter_mut()).zip(o) {
                            let v = g(*s, x);
                            *s = v;
                            *d = v;
                        }
                    }
                }
            }
            Layout::RowWise => {
                let msize = self.msize;
                match other {
                    RmwOperand::Const(c) => {
                        for (lane, d) in dst.iter_mut().enumerate() {
                            let s = &mut self.buf[lane * msize + addr];
                            let v = g(*s, c);
                            *s = v;
                            *d = v;
                        }
                    }
                    RmwOperand::Reg(o) => {
                        for ((lane, d), &x) in dst.iter_mut().enumerate().zip(o) {
                            let s = &mut self.buf[lane * msize + addr];
                            let v = g(*s, x);
                            *s = v;
                            *d = v;
                        }
                    }
                }
            }
        }
    }
}

impl<'a, W: Word> LanePort<W> for SliceLanes<'a, W> {
    fn lanes(&self) -> usize {
        self.p
    }

    fn load(&mut self, addr: usize, dst: &mut [W]) {
        assert!(addr < self.msize, "read address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                // Coalesced: one contiguous p-word block.
                let base = addr * self.p;
                dst.copy_from_slice(&self.buf[base..base + self.p]);
            }
            Layout::RowWise => {
                // Uncoalesced: stride-msize gather.
                let msize = self.msize;
                for (lane, d) in dst.iter_mut().enumerate() {
                    *d = self.buf[lane * msize + addr];
                }
            }
        }
    }

    fn store(&mut self, addr: usize, src: &[W]) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p;
                self.buf[base..base + self.p].copy_from_slice(src);
            }
            Layout::RowWise => {
                let msize = self.msize;
                for (lane, &x) in src.iter().enumerate() {
                    self.buf[lane * msize + addr] = x;
                }
            }
        }
    }

    fn broadcast(&mut self, addr: usize, c: W) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p;
                self.buf[base..base + self.p].fill(c);
            }
            Layout::RowWise => {
                let msize = self.msize;
                for lane in 0..self.p {
                    self.buf[lane * msize + addr] = c;
                }
            }
        }
    }

    fn rmw_bin(
        &mut self,
        addr: usize,
        op: BinOp,
        other: RmwOperand<'_, W>,
        other_on_left: bool,
        dst: &mut [W],
    ) {
        // Dispatch on `op` once so each lane loop can vectorise (as in
        // `BulkMachine::binop`).
        match op {
            BinOp::Add => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Add, x, y)
                });
            }
            BinOp::Sub => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Sub, x, y)
                });
            }
            BinOp::Mul => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Mul, x, y)
                });
            }
            BinOp::Div => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Div, x, y)
                });
            }
            BinOp::Min => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Min, x, y)
                });
            }
            BinOp::Max => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Max, x, y)
                });
            }
            BinOp::Xor => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Xor, x, y)
                });
            }
            BinOp::And => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::And, x, y)
                });
            }
            BinOp::Or => {
                self.rmw_lanes(addr, other, other_on_left, dst, |x, y| {
                    W::apply_bin(BinOp::Or, x, y)
                });
            }
        }
    }

    fn rmw_bin_acc(&mut self, addr: usize, op: BinOp, other_on_left: bool, acc: &mut [W]) {
        match op {
            BinOp::Add => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Add, x, y));
            }
            BinOp::Sub => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Sub, x, y));
            }
            BinOp::Mul => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Mul, x, y));
            }
            BinOp::Div => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Div, x, y));
            }
            BinOp::Min => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Min, x, y));
            }
            BinOp::Max => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Max, x, y));
            }
            BinOp::Xor => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Xor, x, y));
            }
            BinOp::And => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::And, x, y));
            }
            BinOp::Or => {
                self.acc_lanes(addr, other_on_left, acc, |x, y| W::apply_bin(BinOp::Or, x, y));
            }
        }
    }
}

/// Opaque value handle of the bulk machine.
///
/// Constants are kept scalar (one copy, not per-lane) until they interact
/// with per-lane data; registers name lane vectors.
#[derive(Debug, Clone, Copy)]
pub enum BulkValue<W> {
    /// A uniform constant across all lanes.
    Const(W),
    /// Index into the machine's register file.
    Reg(u32),
}

/// Per-step event recording for a traced bulk execution.
///
/// Track 0 ("port") holds one unit span per memory round — load, store,
/// broadcast, with the logical address in args — and track 1 ("alu") one
/// per register-only vector op.  The shared clock is the vector-step
/// counter, so the trace is the program's step sequence laid on a line.
#[derive(Debug)]
struct EngineTrace {
    tracer: Tracer,
    step: u64,
}

/// Lockstep executor of an oblivious program over the lanes of a port.
#[derive(Debug)]
pub struct BulkMachine<W, P> {
    port: P,
    lanes: usize,
    regs: Vec<Vec<W>>,
    free: Vec<u32>,
    live: usize,
    max_live: usize,
    metrics: BulkMetrics,
    trace: Option<Box<EngineTrace>>,
    trace_taken: bool,
}

impl<'a, W: Word> BulkMachine<W, SliceLanes<'a, W>> {
    /// Create a bulk machine over an arranged flat buffer of `p * msize`
    /// words (the common case).
    #[must_use]
    pub fn new(buf: &'a mut [W], p: usize, msize: usize, layout: Layout) -> Self {
        Self::with_port(SliceLanes::new(buf, p, msize, layout))
    }
}

impl<W: Word, P: LanePort<W>> BulkMachine<W, P> {
    /// Create a bulk machine over an arbitrary lane port.
    #[must_use]
    pub fn with_port(port: P) -> Self {
        let lanes = port.lanes();
        assert!(lanes > 0, "bulk execution needs at least one lane");
        Self {
            port,
            lanes,
            regs: Vec::new(),
            free: Vec::new(),
            live: 0,
            max_live: 0,
            metrics: BulkMetrics::default(),
            trace: None,
            trace_taken: false,
        }
    }

    /// Turn on per-step event tracing: one unit span per vector step, on a
    /// "port" track (loads/stores/broadcasts, args = the logical address)
    /// or an "alu" track (register-only ops).  No-op at compile time when
    /// `obs` is built without its `profile` feature, and after
    /// [`BulkMachine::take_tracer`] — re-enabling on a machine whose trace
    /// was taken would restart the step clock at zero and silently record a
    /// disjoint fragment that misaligns with the taken one.
    pub fn enable_tracing(&mut self) {
        if obs::PROFILING_COMPILED && self.trace.is_none() && !self.trace_taken {
            let mut tracer = Tracer::new();
            tracer.name_track(0, "port");
            tracer.name_track(1, "alu");
            self.trace = Some(Box::new(EngineTrace { tracer, step: 0 }));
        }
    }

    /// Take the recorded trace out of the machine.  Tracing stops
    /// permanently for this machine: later [`BulkMachine::enable_tracing`]
    /// calls are no-ops.
    #[must_use]
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        let t = self.trace.take().map(|t| t.tracer);
        if t.is_some() {
            self.trace_taken = true;
        }
        t
    }

    #[inline]
    fn trace_port(&mut self, name: &'static str, addr: usize) {
        if let Some(t) = self.trace.as_mut() {
            let mut args = Json::obj();
            args.set("addr", addr);
            t.tracer.span(0, name, "port", t.step, 1, args);
            t.step += 1;
        }
    }

    #[inline]
    fn trace_alu(&mut self, name: &'static str) {
        if let Some(t) = self.trace.as_mut() {
            t.tracer.span(1, name, "alu", t.step, 1, Json::Null);
            t.step += 1;
        }
    }

    /// Number of lanes (instances).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// High-water mark of simultaneously live registers — a diagnostic for
    /// program authors (each live register costs one word per lane).
    #[must_use]
    pub fn max_live_registers(&self) -> usize {
        self.max_live
    }

    /// Port-traffic counters accumulated so far (with the register
    /// high-water mark folded in).
    #[must_use]
    pub fn metrics(&self) -> BulkMetrics {
        BulkMetrics { max_live_registers: self.max_live, ..self.metrics }
    }

    fn alloc(&mut self) -> u32 {
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        if let Some(id) = self.free.pop() {
            id
        } else {
            self.regs.push(vec![W::ZERO; self.lanes]);
            (self.regs.len() - 1) as u32
        }
    }

    /// Take a register's storage out of the file for exclusive filling.
    fn take(&mut self, id: u32) -> Vec<W> {
        let mut v = core::mem::take(&mut self.regs[id as usize]);
        if v.len() != self.lanes {
            v = vec![W::ZERO; self.lanes];
        }
        v
    }

    fn put(&mut self, id: u32, v: Vec<W>) {
        self.regs[id as usize] = v;
    }

    #[inline]
    fn lane_value(&self, v: BulkValue<W>, lane: usize) -> W {
        match v {
            BulkValue::Const(c) => c,
            BulkValue::Reg(r) => self.regs[r as usize][lane],
        }
    }

    fn bin_dispatch(
        &mut self,
        f: impl Fn(W, W) -> W,
        a: BulkValue<W>,
        b: BulkValue<W>,
    ) -> BulkValue<W> {
        match (a, b) {
            (BulkValue::Const(x), BulkValue::Const(y)) => BulkValue::Const(f(x, y)),
            _ => {
                self.metrics.register_ops += 1;
                self.trace_alu("binop");
                let id = self.alloc();
                let mut dst = self.take(id);
                match (a, b) {
                    (BulkValue::Reg(ra), BulkValue::Reg(rb)) => {
                        let sa = &self.regs[ra as usize];
                        let sb = &self.regs[rb as usize];
                        for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                            *d = f(x, y);
                        }
                    }
                    (BulkValue::Reg(ra), BulkValue::Const(c)) => {
                        let sa = &self.regs[ra as usize];
                        for (d, &x) in dst.iter_mut().zip(sa) {
                            *d = f(x, c);
                        }
                    }
                    (BulkValue::Const(c), BulkValue::Reg(rb)) => {
                        let sb = &self.regs[rb as usize];
                        for (d, &y) in dst.iter_mut().zip(sb) {
                            *d = f(c, y);
                        }
                    }
                    (BulkValue::Const(_), BulkValue::Const(_)) => unreachable!(),
                }
                self.put(id, dst);
                BulkValue::Reg(id)
            }
        }
    }

    /// Replay a compiled schedule across all lanes.
    ///
    /// Semantically identical to running the source program through this
    /// machine's [`ObliviousMachine`] interface — same lane data, same
    /// [`BulkMetrics`], and (when tracing is enabled) the same event
    /// sequence — but without re-deriving the step table: opcode decode,
    /// address computation, constant folding and register allocation all
    /// happened once at compile time.  Untraced replay additionally runs
    /// the schedule's fused table, collapsing `load; binop; store` triples
    /// into single [`LanePort::rmw_bin`] rounds.
    pub fn run_compiled(&mut self, schedule: &CompiledSchedule<W>) {
        while self.regs.len() < schedule.reg_count() {
            self.regs.push(vec![W::ZERO; self.lanes]);
        }
        if self.trace.is_some() {
            // Traced replay walks the canonical table so the span sequence
            // matches the interpreter's step for step.
            for &step in schedule.steps() {
                match step {
                    Step::Load { addr, .. } => self.trace_port("load", addr),
                    Step::Store { addr, .. } => self.trace_port("store", addr),
                    Step::Broadcast { addr, .. } => self.trace_port("broadcast", addr),
                    Step::Un { .. } => self.trace_alu("unop"),
                    Step::Bin { .. } => self.trace_alu("binop"),
                    Step::Select { .. } => self.trace_alu("select"),
                }
                self.exec_step(step);
            }
        } else {
            for fused in schedule.fused_steps() {
                match *fused {
                    FusedStep::Plain(step) => self.exec_step(step),
                    FusedStep::LoadBinStore { addr, op, other, other_on_left, dst } => {
                        let mut d = self.take(dst);
                        match other {
                            Operand::Const(c) => {
                                self.port.rmw_bin(
                                    addr,
                                    op,
                                    RmwOperand::Const(c),
                                    other_on_left,
                                    &mut d,
                                );
                            }
                            Operand::Reg(o) => {
                                let Self { port, regs, .. } = self;
                                port.rmw_bin(
                                    addr,
                                    op,
                                    RmwOperand::Reg(&regs[o as usize]),
                                    other_on_left,
                                    &mut d,
                                );
                            }
                        }
                        self.put(dst, d);
                    }
                    FusedStep::Chain { init, dst, ref links } => {
                        let mut acc = self.take(dst);
                        match init {
                            Operand::Const(c) => acc.fill(c),
                            // `r == dst`: `take` already handed us the
                            // pre-chain contents of that register.
                            Operand::Reg(r) if r != dst => {
                                acc.copy_from_slice(&self.regs[r as usize]);
                            }
                            Operand::Reg(_) => {}
                        }
                        for &(addr, op, other_on_left) in links {
                            self.port.rmw_bin_acc(addr, op, other_on_left, &mut acc);
                        }
                        self.put(dst, acc);
                    }
                }
            }
        }
        // The schedule carries the interpreter's counters; report them
        // instead of recounting per replayed step.
        let m = schedule.metrics();
        self.metrics.loads += m.loads;
        self.metrics.stores += m.stores;
        self.metrics.broadcasts += m.broadcasts;
        self.metrics.register_ops += m.register_ops;
        self.max_live = self.max_live.max(m.max_live_registers);
    }

    /// Execute one canonical step with the interpreter's exact take/put
    /// register discipline (so even pathological schedules — aliased
    /// operands from use-after-free programs — behave identically).
    fn exec_step(&mut self, step: Step<W>) {
        match step {
            Step::Load { addr, dst } => {
                let mut d = self.take(dst);
                self.port.load(addr, &mut d);
                self.put(dst, d);
            }
            Step::Store { addr, src } => {
                let s = core::mem::take(&mut self.regs[src as usize]);
                self.port.store(addr, &s);
                self.regs[src as usize] = s;
            }
            Step::Broadcast { addr, value } => self.port.broadcast(addr, value),
            Step::Un { op, src, dst } => {
                let mut d = self.take(dst);
                let s = &self.regs[src as usize];
                for (d, &x) in d.iter_mut().zip(s) {
                    *d = W::apply_un(op, x);
                }
                self.put(dst, d);
            }
            Step::Bin { op, a, b, dst } => match op {
                BinOp::Add => self.replay_bin(|x, y| W::apply_bin(BinOp::Add, x, y), a, b, dst),
                BinOp::Sub => self.replay_bin(|x, y| W::apply_bin(BinOp::Sub, x, y), a, b, dst),
                BinOp::Mul => self.replay_bin(|x, y| W::apply_bin(BinOp::Mul, x, y), a, b, dst),
                BinOp::Div => self.replay_bin(|x, y| W::apply_bin(BinOp::Div, x, y), a, b, dst),
                BinOp::Min => self.replay_bin(|x, y| W::apply_bin(BinOp::Min, x, y), a, b, dst),
                BinOp::Max => self.replay_bin(|x, y| W::apply_bin(BinOp::Max, x, y), a, b, dst),
                BinOp::Xor => self.replay_bin(|x, y| W::apply_bin(BinOp::Xor, x, y), a, b, dst),
                BinOp::And => self.replay_bin(|x, y| W::apply_bin(BinOp::And, x, y), a, b, dst),
                BinOp::Or => self.replay_bin(|x, y| W::apply_bin(BinOp::Or, x, y), a, b, dst),
            },
            Step::Select { cmp, a, b, t, e, dst } => self.replay_select(cmp, a, b, t, e, dst),
        }
    }

    fn replay_bin(&mut self, f: impl Fn(W, W) -> W, a: Operand<W>, b: Operand<W>, dst: u32) {
        let mut d = self.take(dst);
        match (a, b) {
            (Operand::Reg(ra), Operand::Reg(rb)) => {
                let sa = &self.regs[ra as usize];
                let sb = &self.regs[rb as usize];
                for ((d, &x), &y) in d.iter_mut().zip(sa).zip(sb) {
                    *d = f(x, y);
                }
            }
            (Operand::Reg(ra), Operand::Const(c)) => {
                let sa = &self.regs[ra as usize];
                for (d, &x) in d.iter_mut().zip(sa) {
                    *d = f(x, c);
                }
            }
            (Operand::Const(c), Operand::Reg(rb)) => {
                let sb = &self.regs[rb as usize];
                for (d, &y) in d.iter_mut().zip(sb) {
                    *d = f(c, y);
                }
            }
            // Never emitted by the compiler (folded), but reachable through
            // a hand-written JSON schedule.
            (Operand::Const(x), Operand::Const(y)) => d.fill(f(x, y)),
        }
        self.put(dst, d);
    }

    #[inline]
    fn operand_lane(&self, o: Operand<W>, lane: usize) -> W {
        match o {
            Operand::Const(c) => c,
            Operand::Reg(r) => self.regs[r as usize][lane],
        }
    }

    fn replay_select(
        &mut self,
        cmp: CmpOp,
        a: Operand<W>,
        b: Operand<W>,
        t: Operand<W>,
        e: Operand<W>,
        dst: u32,
    ) {
        let mut d = self.take(dst);
        match (a, b, t, e) {
            (Operand::Reg(ra), Operand::Reg(rb), Operand::Reg(rt), Operand::Reg(re)) => {
                let (sa, sb) = (&self.regs[ra as usize], &self.regs[rb as usize]);
                let (st, se) = (&self.regs[rt as usize], &self.regs[re as usize]);
                match cmp {
                    CmpOp::Lt => {
                        for i in 0..self.lanes {
                            d[i] = if sa[i] < sb[i] { st[i] } else { se[i] };
                        }
                    }
                    CmpOp::Le => {
                        for i in 0..self.lanes {
                            d[i] = if sa[i] <= sb[i] { st[i] } else { se[i] };
                        }
                    }
                    CmpOp::Eq => {
                        for i in 0..self.lanes {
                            d[i] = if sa[i] == sb[i] { st[i] } else { se[i] };
                        }
                    }
                }
            }
            _ => {
                #[allow(clippy::needless_range_loop)] // four parallel operand streams
                for i in 0..self.lanes {
                    let (va, vb) = (self.operand_lane(a, i), self.operand_lane(b, i));
                    let pick = W::compare(cmp, va, vb);
                    d[i] = if pick { self.operand_lane(t, i) } else { self.operand_lane(e, i) };
                }
            }
        }
        self.put(dst, d);
    }
}

impl<W: Word, Pt: LanePort<W>> ObliviousMachine<W> for BulkMachine<W, Pt> {
    type Value = BulkValue<W>;

    fn read(&mut self, addr: usize) -> BulkValue<W> {
        self.metrics.loads += 1;
        self.trace_port("load", addr);
        let id = self.alloc();
        let mut dst = self.take(id);
        self.port.load(addr, &mut dst);
        self.put(id, dst);
        BulkValue::Reg(id)
    }

    fn write(&mut self, addr: usize, v: BulkValue<W>) {
        match v {
            BulkValue::Reg(r) => {
                self.metrics.stores += 1;
                self.trace_port("store", addr);
                let src = core::mem::take(&mut self.regs[r as usize]);
                self.port.store(addr, &src);
                self.regs[r as usize] = src;
            }
            BulkValue::Const(c) => {
                self.metrics.broadcasts += 1;
                self.trace_port("broadcast", addr);
                self.port.broadcast(addr, c);
            }
        }
    }

    #[inline]
    fn constant(&mut self, c: W) -> BulkValue<W> {
        BulkValue::Const(c)
    }

    fn unop(&mut self, op: UnOp, a: BulkValue<W>) -> BulkValue<W> {
        match a {
            BulkValue::Const(c) => BulkValue::Const(W::apply_un(op, c)),
            BulkValue::Reg(ra) => {
                self.metrics.register_ops += 1;
                self.trace_alu("unop");
                let id = self.alloc();
                let mut dst = self.take(id);
                let src = &self.regs[ra as usize];
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = W::apply_un(op, x);
                }
                self.put(id, dst);
                BulkValue::Reg(id)
            }
        }
    }

    fn binop(&mut self, op: BinOp, a: BulkValue<W>, b: BulkValue<W>) -> BulkValue<W> {
        // Dispatch on `op` once so each lane loop monomorphises to a single
        // arithmetic instruction and can vectorise.
        match op {
            BinOp::Add => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Add, x, y), a, b),
            BinOp::Sub => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Sub, x, y), a, b),
            BinOp::Mul => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Mul, x, y), a, b),
            BinOp::Div => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Div, x, y), a, b),
            BinOp::Min => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Min, x, y), a, b),
            BinOp::Max => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Max, x, y), a, b),
            BinOp::Xor => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Xor, x, y), a, b),
            BinOp::And => self.bin_dispatch(|x, y| W::apply_bin(BinOp::And, x, y), a, b),
            BinOp::Or => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Or, x, y), a, b),
        }
    }

    fn select(
        &mut self,
        cmp: CmpOp,
        a: BulkValue<W>,
        b: BulkValue<W>,
        t: BulkValue<W>,
        e: BulkValue<W>,
    ) -> BulkValue<W> {
        // All-constant fast path.
        if let (
            BulkValue::Const(ca),
            BulkValue::Const(cb),
            BulkValue::Const(ct),
            BulkValue::Const(ce),
        ) = (a, b, t, e)
        {
            return BulkValue::Const(if W::compare(cmp, ca, cb) { ct } else { ce });
        }
        self.metrics.register_ops += 1;
        self.trace_alu("select");
        let id = self.alloc();
        let mut dst = self.take(id);
        match (a, b, t, e) {
            // Hot path of minimisation loops: everything in registers.
            (BulkValue::Reg(ra), BulkValue::Reg(rb), BulkValue::Reg(rt), BulkValue::Reg(re)) => {
                let (sa, sb) = (&self.regs[ra as usize], &self.regs[rb as usize]);
                let (st, se) = (&self.regs[rt as usize], &self.regs[re as usize]);
                match cmp {
                    CmpOp::Lt => {
                        for i in 0..self.lanes {
                            dst[i] = if sa[i] < sb[i] { st[i] } else { se[i] };
                        }
                    }
                    CmpOp::Le => {
                        for i in 0..self.lanes {
                            dst[i] = if sa[i] <= sb[i] { st[i] } else { se[i] };
                        }
                    }
                    CmpOp::Eq => {
                        for i in 0..self.lanes {
                            dst[i] = if sa[i] == sb[i] { st[i] } else { se[i] };
                        }
                    }
                }
            }
            _ => {
                #[allow(clippy::needless_range_loop)] // four parallel operand streams
                for i in 0..self.lanes {
                    let (va, vb) = (self.lane_value(a, i), self.lane_value(b, i));
                    let pick = W::compare(cmp, va, vb);
                    dst[i] = if pick { self.lane_value(t, i) } else { self.lane_value(e, i) };
                }
            }
        }
        self.put(id, dst);
        BulkValue::Reg(id)
    }

    fn free(&mut self, v: BulkValue<W>) {
        if let BulkValue::Reg(id) = v {
            debug_assert!(!self.free.contains(&id), "double free of bulk register {id}");
            self.live -= 1;
            self.free.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{arrange, extract};

    fn machine_with<'a>(
        buf: &'a mut Vec<f32>,
        p: usize,
        msize: usize,
        layout: Layout,
    ) -> BulkMachine<f32, SliceLanes<'a, f32>> {
        BulkMachine::new(buf.as_mut_slice(), p, msize, layout)
    }

    #[test]
    fn lockstep_read_modify_write_both_layouts() {
        for layout in Layout::all() {
            let a = [1.0f32, 2.0];
            let b = [10.0, 20.0];
            let mut buf = arrange(&[&a, &b], 2, layout);
            let mut m = machine_with(&mut buf, 2, 2, layout);
            // mem[1] += mem[0] in every instance.
            let x = m.read(0);
            let y = m.read(1);
            let s = m.add(x, y);
            m.write(1, s);
            let out = extract(&buf, 2, 2, layout, 0..2);
            assert_eq!(out[0], vec![1.0, 3.0], "{layout}");
            assert_eq!(out[1], vec![10.0, 30.0], "{layout}");
        }
    }

    #[test]
    fn constants_stay_scalar_until_used() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        let c1 = m.constant(2.0);
        let c2 = m.constant(3.0);
        let c3 = m.mul(c1, c2);
        assert!(matches!(c3, BulkValue::Const(v) if v == 6.0));
        assert_eq!(m.max_live_registers(), 0, "const folding allocates nothing");
        m.write(0, c3);
        assert_eq!(&buf[0..4], &[6.0; 4]);
    }

    #[test]
    fn select_lanewise_mixed_outcomes() {
        // Lanes carry different data, so the select must pick per lane —
        // the type-level guarantee that data never becomes control flow.
        let a = [1.0f32];
        let b = [5.0];
        let mut buf = arrange(&[&a, &b], 1, Layout::ColumnWise);
        let mut m = machine_with(&mut buf, 2, 1, Layout::ColumnWise);
        let x = m.read(0);
        let three = m.constant(3.0);
        let hi = m.constant(100.0);
        let lo = m.constant(-100.0);
        let r = m.select(CmpOp::Lt, x, three, hi, lo);
        m.write(0, r);
        let out = extract(&buf, 2, 1, Layout::ColumnWise, 0..1);
        assert_eq!(out[0], vec![100.0], "1 < 3 picks hi");
        assert_eq!(out[1], vec![-100.0], "5 >= 3 picks lo");
    }

    #[test]
    fn metrics_count_port_traffic() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        let x = m.read(0);
        let y = m.read(1);
        let s = m.add(x, y); // register op
        m.write(1, s); // store
        let c = m.constant(9.0);
        m.write(0, c); // broadcast
        let got = m.metrics();
        assert_eq!(got.loads, 2);
        assert_eq!(got.stores, 1);
        assert_eq!(got.broadcasts, 1);
        assert_eq!(got.register_ops, 1);
        assert_eq!(got.memory_rounds(), 4);
        assert_eq!(got.max_live_registers, m.max_live_registers());
        let j = got.to_json();
        assert_eq!(j.path("memory_rounds").unwrap().as_i64(), Some(4));
    }

    #[test]
    fn engine_trace_records_one_span_per_vector_step() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        m.enable_tracing();
        let x = m.read(0);
        let y = m.read(1);
        let s = m.add(x, y);
        m.write(1, s);
        let c = m.constant(9.0);
        m.write(0, c);
        let metrics = m.metrics();
        let t = m.take_tracer().unwrap();
        assert!(m.take_tracer().is_none());
        obs::trace::validate(&t).unwrap();
        // One span per vector step, port and alu tracks sharing the clock.
        assert_eq!(t.len() as u64, metrics.memory_rounds() + metrics.register_ops);
        assert_eq!(t.spanned_ticks(0), metrics.memory_rounds());
        assert_eq!(t.spanned_ticks(1), metrics.register_ops);
        assert_eq!(t.end_ts(), metrics.memory_rounds() + metrics.register_ops);
        // Steps carry the op kind and the logical address.
        let ev = &t.events()[0];
        assert_eq!(ev.name, "load");
        assert_eq!(ev.args.get("addr").unwrap().as_i64(), Some(0));
        assert!(t.events().iter().any(|e| e.name == "broadcast"));
        assert!(t.events().iter().any(|e| e.name == "binop"));
    }

    #[test]
    fn free_recycles_registers() {
        let mut buf = vec![0.0f32; 16];
        let mut m = BulkMachine::new(&mut buf, 4, 4, Layout::ColumnWise);
        for i in 0..4 {
            let v = m.read(i);
            let w = m.add(v, v);
            m.write(i, w);
            m.free(v);
            m.free(w);
        }
        assert!(m.max_live_registers() <= 2, "freed registers must be reused");
    }

    #[test]
    fn unop_lanewise() {
        let a = [1u32];
        let b = [2u32];
        let mut buf = arrange(&[&a[..], &b[..]], 1, Layout::ColumnWise);
        let mut m: BulkMachine<u32, _> = BulkMachine::new(&mut buf, 2, 1, Layout::ColumnWise);
        let x = m.read(0);
        let y = m.unop(UnOp::Shl(3), x);
        m.write(0, y);
        assert_eq!(buf, vec![8, 16]);
    }

    #[test]
    #[should_panic(expected = "out of instance memory")]
    fn read_beyond_instance_memory_panics() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        let _ = m.read(2);
    }

    #[test]
    #[should_panic(expected = "p * msize")]
    fn wrong_buffer_size_rejected() {
        let mut buf = vec![0.0f32; 7];
        let _ = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
    }

    /// A custom port that offsets every address by a fixed shift — checks
    /// that BulkMachine is genuinely port-generic.
    #[derive(Debug)]
    struct ShiftPort {
        data: Vec<f32>,
        lanes: usize,
    }

    impl LanePort<f32> for ShiftPort {
        fn lanes(&self) -> usize {
            self.lanes
        }
        fn load(&mut self, addr: usize, dst: &mut [f32]) {
            for (l, d) in dst.iter_mut().enumerate() {
                *d = self.data[addr * self.lanes + l];
            }
        }
        fn store(&mut self, addr: usize, src: &[f32]) {
            for (l, &s) in src.iter().enumerate() {
                self.data[addr * self.lanes + l] = s;
            }
        }
        fn broadcast(&mut self, addr: usize, c: f32) {
            for l in 0..self.lanes {
                self.data[addr * self.lanes + l] = c;
            }
        }
    }

    #[test]
    fn custom_port_is_usable() {
        let port = ShiftPort { data: vec![1.0, 2.0, 3.0, 4.0], lanes: 2 };
        let mut m = BulkMachine::with_port(port);
        let x = m.read(0);
        let y = m.read(1);
        let s = m.add(x, y);
        m.write(0, s);
        // Register ops worked lane-wise through the custom port.
        assert_eq!(m.port.data, vec![4.0, 6.0, 3.0, 4.0]);
    }

    /// A program mixing fusable accumulator triples with unops, selects,
    /// broadcasts, and register reuse — every replay path in one table.
    struct Workout {
        n: usize,
    }

    impl crate::machine::ObliviousProgram<f32> for Workout {
        fn name(&self) -> String {
            "workout".into()
        }
        fn memory_words(&self) -> usize {
            self.n + 2
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..self.n + 2
        }
        fn run<M: crate::machine::ObliviousMachine<f32>>(&self, m: &mut M) {
            // Fusable running-max chain over the inputs.
            let mut r = m.pos_inf();
            let r0 = m.unop(UnOp::Neg, r);
            m.free(r);
            r = r0;
            for i in 0..self.n {
                let x = m.read(i);
                let r2 = m.max(r, x);
                m.free(x);
                m.free(r);
                m.write(i, r2);
                r = r2;
            }
            // Unfused tail: select, constant-folded broadcast, unop.
            let half = m.constant(0.5);
            let scaled = m.mul(r, half);
            let pick = m.select(CmpOp::Le, scaled, half, r, scaled);
            m.write(self.n, pick);
            let c = m.constant(3.0);
            let folded = m.add(c, c);
            m.write(self.n + 1, folded);
        }
    }

    #[test]
    fn compiled_replay_matches_interpreter_bitwise() {
        use crate::exec::compiled::CompiledSchedule;
        let prog = Workout { n: 5 };
        let schedule = CompiledSchedule::compile(&prog);
        for layout in Layout::all() {
            let rows: Vec<Vec<f32>> = (0..6)
                .map(|i| (0..5).map(|k| ((i * 7 + k * 3) % 11) as f32 - 5.0).collect())
                .collect();
            let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
            let mut interp_buf = arrange(&refs, 7, layout);
            let mut m = BulkMachine::new(&mut interp_buf, 6, 7, layout);
            crate::machine::ObliviousProgram::run(&prog, &mut m);
            let interp_metrics = m.metrics();

            let mut replay_buf = arrange(&refs, 7, layout);
            let mut m = BulkMachine::new(&mut replay_buf, 6, 7, layout);
            m.run_compiled(&schedule);
            assert_eq!(m.metrics(), interp_metrics, "{layout}");
            assert_eq!(replay_buf, interp_buf, "{layout}");
        }
    }

    #[test]
    fn traced_replay_emits_identical_events() {
        use crate::exec::compiled::CompiledSchedule;
        let prog = Workout { n: 3 };
        let schedule = CompiledSchedule::compile(&prog);
        let rows: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32, -1.0, 2.5]).collect();
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();

        let mut a_buf = arrange(&refs, 5, Layout::ColumnWise);
        let mut a = BulkMachine::new(&mut a_buf, 4, 5, Layout::ColumnWise);
        a.enable_tracing();
        crate::machine::ObliviousProgram::run(&prog, &mut a);
        let ta = a.take_tracer().unwrap();

        let mut b_buf = arrange(&refs, 5, Layout::ColumnWise);
        let mut b = BulkMachine::new(&mut b_buf, 4, 5, Layout::ColumnWise);
        b.enable_tracing();
        b.run_compiled(&schedule);
        let tb = b.take_tracer().unwrap();

        assert_eq!(ta.events(), tb.events(), "replay must reproduce the exact span stream");
        assert_eq!(a_buf, b_buf);
    }

    #[test]
    fn take_tracer_disables_tracing_for_good() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        m.enable_tracing();
        let x = m.read(0);
        m.write(1, x);
        let t = m.take_tracer().unwrap();
        assert_eq!(t.len(), 2);
        // Regression: re-enabling after a take used to restart the span
        // clock at zero, splicing a second, misaligned timeline into
        // downstream reports. It must now be a no-op.
        m.enable_tracing();
        let y = m.read(1);
        m.write(0, y);
        assert!(m.take_tracer().is_none(), "tracing must stay off after the take");
    }

    #[test]
    fn default_rmw_methods_match_slice_lane_overrides() {
        // ShiftPort uses the LanePort default rmw_bin/rmw_bin_acc;
        // SliceLanes overrides them with fused loops. Same data, same ops,
        // same result.
        let data = vec![1.5f32, -2.0, 3.0, 0.25];
        for (op, other_on_left) in
            [(BinOp::Add, false), (BinOp::Sub, true), (BinOp::Max, false), (BinOp::Mul, true)]
        {
            let mut custom = ShiftPort { data: data.clone(), lanes: 2 };
            let mut dst_c = vec![0.0f32; 2];
            custom.rmw_bin(1, op, RmwOperand::Const(2.0), other_on_left, &mut dst_c);
            let mut acc_c = vec![4.0f32, -4.0];
            custom.rmw_bin_acc(0, op, other_on_left, &mut acc_c);

            let mut flat = data.clone();
            let mut slices = SliceLanes::new(&mut flat, 2, 2, Layout::ColumnWise);
            let mut dst_s = vec![0.0f32; 2];
            slices.rmw_bin(1, op, RmwOperand::Const(2.0), other_on_left, &mut dst_s);
            let mut acc_s = vec![4.0f32, -4.0];
            slices.rmw_bin_acc(0, op, other_on_left, &mut acc_s);

            assert_eq!(custom.data, flat, "{op:?} left={other_on_left}");
            assert_eq!(dst_c, dst_s, "{op:?} left={other_on_left}");
            assert_eq!(acc_c, acc_s, "{op:?} left={other_on_left}");
        }
    }
}
