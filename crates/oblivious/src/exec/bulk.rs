//! SIMD-lockstep bulk execution — the paper's central construction, and its
//! future-work "automatic conversion system" realised: any program written
//! against [`ObliviousMachine`] is bulk-executed for `p` inputs with no
//! per-algorithm work.
//!
//! `Value` is a handle to a *register*: a vector holding that value for
//! every lane (instance).  Each `read`/`write` goes through a [`LanePort`]:
//! the standard [`SliceLanes`] port maps logical addresses through a
//! [`Layout`] over a flat buffer — with [`Layout::ColumnWise`] a step is a
//! contiguous slice copy (the coalesced pattern), with [`Layout::RowWise`]
//! a stride-`msize` gather/scatter (the uncoalesced pattern).  The GPU
//! simulator provides its own port that confines a machine to one thread
//! block's lane range, which is how the generic engine runs multi-threaded.

use crate::layout::Layout;
use crate::machine::ObliviousMachine;
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;
use obs::trace::Tracer;
use obs::Json;

/// Port-traffic and register-pressure counters of a bulk execution.
///
/// Each count is one *vector* step (touching all `p` lanes): `loads` and
/// `stores` are the memory rounds the cost model prices, `broadcasts` are
/// constant stores (one coalesced fill), and `register_ops` are pure
/// arithmetic steps that never reach memory.  Counting costs one integer
/// increment per `p`-word operation, so it is always on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkMetrics {
    /// Vector loads issued through the port.
    pub loads: u64,
    /// Vector stores issued through the port.
    pub stores: u64,
    /// Constant broadcasts issued through the port.
    pub broadcasts: u64,
    /// Register-only vector operations (unop/binop/select on lane data).
    pub register_ops: u64,
    /// High-water mark of simultaneously live registers.
    pub max_live_registers: usize,
}

impl BulkMetrics {
    /// Memory rounds (loads + stores + broadcasts) — the `t` that the
    /// UMM/DMM models charge for.
    #[must_use]
    pub fn memory_rounds(&self) -> u64 {
        self.loads + self.stores + self.broadcasts
    }

    /// As a JSON object for run reports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("loads", self.loads);
        obj.set("stores", self.stores);
        obj.set("broadcasts", self.broadcasts);
        obj.set("memory_rounds", self.memory_rounds());
        obj.set("register_ops", self.register_ops);
        obj.set("max_live_registers", self.max_live_registers);
        obj
    }
}

/// Vectorised memory access over a set of lockstep lanes.
///
/// `load`/`store` move one logical address's value for *every* lane at once;
/// the port owns the physical address mapping.
pub trait LanePort<W> {
    /// Number of lanes this port serves.
    fn lanes(&self) -> usize;

    /// Load logical `addr` of each lane into `dst` (`dst.len() == lanes()`).
    fn load(&mut self, addr: usize, dst: &mut [W]);

    /// Store `src[lane]` to logical `addr` of each lane.
    fn store(&mut self, addr: usize, src: &[W]);

    /// Store the same constant to logical `addr` of every lane.
    fn broadcast(&mut self, addr: usize, c: W);
}

/// The standard port: a flat `p × msize` buffer addressed through a
/// [`Layout`].
#[derive(Debug)]
pub struct SliceLanes<'a, W> {
    buf: &'a mut [W],
    p: usize,
    msize: usize,
    layout: Layout,
}

impl<'a, W: Word> SliceLanes<'a, W> {
    /// Wrap an arranged buffer of `p * msize` words.
    ///
    /// # Panics
    ///
    /// Panics if sizes do not match or `p == 0`.
    #[must_use]
    pub fn new(buf: &'a mut [W], p: usize, msize: usize, layout: Layout) -> Self {
        assert!(p > 0, "bulk execution needs at least one instance");
        assert_eq!(buf.len(), p * msize, "buffer must hold p * msize words");
        Self { buf, p, msize, layout }
    }
}

impl<'a, W: Word> LanePort<W> for SliceLanes<'a, W> {
    fn lanes(&self) -> usize {
        self.p
    }

    fn load(&mut self, addr: usize, dst: &mut [W]) {
        assert!(addr < self.msize, "read address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                // Coalesced: one contiguous p-word block.
                let base = addr * self.p;
                dst.copy_from_slice(&self.buf[base..base + self.p]);
            }
            Layout::RowWise => {
                // Uncoalesced: stride-msize gather.
                let msize = self.msize;
                for (lane, d) in dst.iter_mut().enumerate() {
                    *d = self.buf[lane * msize + addr];
                }
            }
        }
    }

    fn store(&mut self, addr: usize, src: &[W]) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p;
                self.buf[base..base + self.p].copy_from_slice(src);
            }
            Layout::RowWise => {
                let msize = self.msize;
                for (lane, &x) in src.iter().enumerate() {
                    self.buf[lane * msize + addr] = x;
                }
            }
        }
    }

    fn broadcast(&mut self, addr: usize, c: W) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match self.layout {
            Layout::ColumnWise => {
                let base = addr * self.p;
                self.buf[base..base + self.p].fill(c);
            }
            Layout::RowWise => {
                let msize = self.msize;
                for lane in 0..self.p {
                    self.buf[lane * msize + addr] = c;
                }
            }
        }
    }
}

/// Opaque value handle of the bulk machine.
///
/// Constants are kept scalar (one copy, not per-lane) until they interact
/// with per-lane data; registers name lane vectors.
#[derive(Debug, Clone, Copy)]
pub enum BulkValue<W> {
    /// A uniform constant across all lanes.
    Const(W),
    /// Index into the machine's register file.
    Reg(u32),
}

/// Per-step event recording for a traced bulk execution.
///
/// Track 0 ("port") holds one unit span per memory round — load, store,
/// broadcast, with the logical address in args — and track 1 ("alu") one
/// per register-only vector op.  The shared clock is the vector-step
/// counter, so the trace is the program's step sequence laid on a line.
#[derive(Debug)]
struct EngineTrace {
    tracer: Tracer,
    step: u64,
}

/// Lockstep executor of an oblivious program over the lanes of a port.
#[derive(Debug)]
pub struct BulkMachine<W, P> {
    port: P,
    lanes: usize,
    regs: Vec<Vec<W>>,
    free: Vec<u32>,
    live: usize,
    max_live: usize,
    metrics: BulkMetrics,
    trace: Option<Box<EngineTrace>>,
}

impl<'a, W: Word> BulkMachine<W, SliceLanes<'a, W>> {
    /// Create a bulk machine over an arranged flat buffer of `p * msize`
    /// words (the common case).
    #[must_use]
    pub fn new(buf: &'a mut [W], p: usize, msize: usize, layout: Layout) -> Self {
        Self::with_port(SliceLanes::new(buf, p, msize, layout))
    }
}

impl<W: Word, P: LanePort<W>> BulkMachine<W, P> {
    /// Create a bulk machine over an arbitrary lane port.
    #[must_use]
    pub fn with_port(port: P) -> Self {
        let lanes = port.lanes();
        assert!(lanes > 0, "bulk execution needs at least one lane");
        Self {
            port,
            lanes,
            regs: Vec::new(),
            free: Vec::new(),
            live: 0,
            max_live: 0,
            metrics: BulkMetrics::default(),
            trace: None,
        }
    }

    /// Turn on per-step event tracing: one unit span per vector step, on a
    /// "port" track (loads/stores/broadcasts, args = the logical address)
    /// or an "alu" track (register-only ops).  No-op at compile time when
    /// `obs` is built without its `profile` feature.
    pub fn enable_tracing(&mut self) {
        if obs::PROFILING_COMPILED && self.trace.is_none() {
            let mut tracer = Tracer::new();
            tracer.name_track(0, "port");
            tracer.name_track(1, "alu");
            self.trace = Some(Box::new(EngineTrace { tracer, step: 0 }));
        }
    }

    /// Take the recorded trace out of the machine (tracing stops).
    #[must_use]
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.trace.take().map(|t| t.tracer)
    }

    #[inline]
    fn trace_port(&mut self, name: &'static str, addr: usize) {
        if let Some(t) = self.trace.as_mut() {
            let mut args = Json::obj();
            args.set("addr", addr);
            t.tracer.span(0, name, "port", t.step, 1, args);
            t.step += 1;
        }
    }

    #[inline]
    fn trace_alu(&mut self, name: &'static str) {
        if let Some(t) = self.trace.as_mut() {
            t.tracer.span(1, name, "alu", t.step, 1, Json::Null);
            t.step += 1;
        }
    }

    /// Number of lanes (instances).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// High-water mark of simultaneously live registers — a diagnostic for
    /// program authors (each live register costs one word per lane).
    #[must_use]
    pub fn max_live_registers(&self) -> usize {
        self.max_live
    }

    /// Port-traffic counters accumulated so far (with the register
    /// high-water mark folded in).
    #[must_use]
    pub fn metrics(&self) -> BulkMetrics {
        BulkMetrics { max_live_registers: self.max_live, ..self.metrics }
    }

    fn alloc(&mut self) -> u32 {
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        if let Some(id) = self.free.pop() {
            id
        } else {
            self.regs.push(vec![W::ZERO; self.lanes]);
            (self.regs.len() - 1) as u32
        }
    }

    /// Take a register's storage out of the file for exclusive filling.
    fn take(&mut self, id: u32) -> Vec<W> {
        let mut v = core::mem::take(&mut self.regs[id as usize]);
        if v.len() != self.lanes {
            v = vec![W::ZERO; self.lanes];
        }
        v
    }

    fn put(&mut self, id: u32, v: Vec<W>) {
        self.regs[id as usize] = v;
    }

    #[inline]
    fn lane_value(&self, v: BulkValue<W>, lane: usize) -> W {
        match v {
            BulkValue::Const(c) => c,
            BulkValue::Reg(r) => self.regs[r as usize][lane],
        }
    }

    fn bin_dispatch(
        &mut self,
        f: impl Fn(W, W) -> W,
        a: BulkValue<W>,
        b: BulkValue<W>,
    ) -> BulkValue<W> {
        match (a, b) {
            (BulkValue::Const(x), BulkValue::Const(y)) => BulkValue::Const(f(x, y)),
            _ => {
                self.metrics.register_ops += 1;
                self.trace_alu("binop");
                let id = self.alloc();
                let mut dst = self.take(id);
                match (a, b) {
                    (BulkValue::Reg(ra), BulkValue::Reg(rb)) => {
                        let sa = &self.regs[ra as usize];
                        let sb = &self.regs[rb as usize];
                        for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                            *d = f(x, y);
                        }
                    }
                    (BulkValue::Reg(ra), BulkValue::Const(c)) => {
                        let sa = &self.regs[ra as usize];
                        for (d, &x) in dst.iter_mut().zip(sa) {
                            *d = f(x, c);
                        }
                    }
                    (BulkValue::Const(c), BulkValue::Reg(rb)) => {
                        let sb = &self.regs[rb as usize];
                        for (d, &y) in dst.iter_mut().zip(sb) {
                            *d = f(c, y);
                        }
                    }
                    (BulkValue::Const(_), BulkValue::Const(_)) => unreachable!(),
                }
                self.put(id, dst);
                BulkValue::Reg(id)
            }
        }
    }
}

impl<W: Word, Pt: LanePort<W>> ObliviousMachine<W> for BulkMachine<W, Pt> {
    type Value = BulkValue<W>;

    fn read(&mut self, addr: usize) -> BulkValue<W> {
        self.metrics.loads += 1;
        self.trace_port("load", addr);
        let id = self.alloc();
        let mut dst = self.take(id);
        self.port.load(addr, &mut dst);
        self.put(id, dst);
        BulkValue::Reg(id)
    }

    fn write(&mut self, addr: usize, v: BulkValue<W>) {
        match v {
            BulkValue::Reg(r) => {
                self.metrics.stores += 1;
                self.trace_port("store", addr);
                let src = core::mem::take(&mut self.regs[r as usize]);
                self.port.store(addr, &src);
                self.regs[r as usize] = src;
            }
            BulkValue::Const(c) => {
                self.metrics.broadcasts += 1;
                self.trace_port("broadcast", addr);
                self.port.broadcast(addr, c);
            }
        }
    }

    #[inline]
    fn constant(&mut self, c: W) -> BulkValue<W> {
        BulkValue::Const(c)
    }

    fn unop(&mut self, op: UnOp, a: BulkValue<W>) -> BulkValue<W> {
        match a {
            BulkValue::Const(c) => BulkValue::Const(W::apply_un(op, c)),
            BulkValue::Reg(ra) => {
                self.metrics.register_ops += 1;
                self.trace_alu("unop");
                let id = self.alloc();
                let mut dst = self.take(id);
                let src = &self.regs[ra as usize];
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = W::apply_un(op, x);
                }
                self.put(id, dst);
                BulkValue::Reg(id)
            }
        }
    }

    fn binop(&mut self, op: BinOp, a: BulkValue<W>, b: BulkValue<W>) -> BulkValue<W> {
        // Dispatch on `op` once so each lane loop monomorphises to a single
        // arithmetic instruction and can vectorise.
        match op {
            BinOp::Add => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Add, x, y), a, b),
            BinOp::Sub => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Sub, x, y), a, b),
            BinOp::Mul => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Mul, x, y), a, b),
            BinOp::Div => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Div, x, y), a, b),
            BinOp::Min => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Min, x, y), a, b),
            BinOp::Max => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Max, x, y), a, b),
            BinOp::Xor => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Xor, x, y), a, b),
            BinOp::And => self.bin_dispatch(|x, y| W::apply_bin(BinOp::And, x, y), a, b),
            BinOp::Or => self.bin_dispatch(|x, y| W::apply_bin(BinOp::Or, x, y), a, b),
        }
    }

    fn select(
        &mut self,
        cmp: CmpOp,
        a: BulkValue<W>,
        b: BulkValue<W>,
        t: BulkValue<W>,
        e: BulkValue<W>,
    ) -> BulkValue<W> {
        // All-constant fast path.
        if let (
            BulkValue::Const(ca),
            BulkValue::Const(cb),
            BulkValue::Const(ct),
            BulkValue::Const(ce),
        ) = (a, b, t, e)
        {
            return BulkValue::Const(if W::compare(cmp, ca, cb) { ct } else { ce });
        }
        self.metrics.register_ops += 1;
        self.trace_alu("select");
        let id = self.alloc();
        let mut dst = self.take(id);
        match (a, b, t, e) {
            // Hot path of minimisation loops: everything in registers.
            (BulkValue::Reg(ra), BulkValue::Reg(rb), BulkValue::Reg(rt), BulkValue::Reg(re)) => {
                let (sa, sb) = (&self.regs[ra as usize], &self.regs[rb as usize]);
                let (st, se) = (&self.regs[rt as usize], &self.regs[re as usize]);
                match cmp {
                    CmpOp::Lt => {
                        for i in 0..self.lanes {
                            dst[i] = if sa[i] < sb[i] { st[i] } else { se[i] };
                        }
                    }
                    CmpOp::Le => {
                        for i in 0..self.lanes {
                            dst[i] = if sa[i] <= sb[i] { st[i] } else { se[i] };
                        }
                    }
                    CmpOp::Eq => {
                        for i in 0..self.lanes {
                            dst[i] = if sa[i] == sb[i] { st[i] } else { se[i] };
                        }
                    }
                }
            }
            _ => {
                #[allow(clippy::needless_range_loop)] // four parallel operand streams
                for i in 0..self.lanes {
                    let (va, vb) = (self.lane_value(a, i), self.lane_value(b, i));
                    let pick = W::compare(cmp, va, vb);
                    dst[i] = if pick { self.lane_value(t, i) } else { self.lane_value(e, i) };
                }
            }
        }
        self.put(id, dst);
        BulkValue::Reg(id)
    }

    fn free(&mut self, v: BulkValue<W>) {
        if let BulkValue::Reg(id) = v {
            debug_assert!(!self.free.contains(&id), "double free of bulk register {id}");
            self.live -= 1;
            self.free.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{arrange, extract};

    fn machine_with<'a>(
        buf: &'a mut Vec<f32>,
        p: usize,
        msize: usize,
        layout: Layout,
    ) -> BulkMachine<f32, SliceLanes<'a, f32>> {
        BulkMachine::new(buf.as_mut_slice(), p, msize, layout)
    }

    #[test]
    fn lockstep_read_modify_write_both_layouts() {
        for layout in Layout::all() {
            let a = [1.0f32, 2.0];
            let b = [10.0, 20.0];
            let mut buf = arrange(&[&a, &b], 2, layout);
            let mut m = machine_with(&mut buf, 2, 2, layout);
            // mem[1] += mem[0] in every instance.
            let x = m.read(0);
            let y = m.read(1);
            let s = m.add(x, y);
            m.write(1, s);
            let out = extract(&buf, 2, 2, layout, 0..2);
            assert_eq!(out[0], vec![1.0, 3.0], "{layout}");
            assert_eq!(out[1], vec![10.0, 30.0], "{layout}");
        }
    }

    #[test]
    fn constants_stay_scalar_until_used() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        let c1 = m.constant(2.0);
        let c2 = m.constant(3.0);
        let c3 = m.mul(c1, c2);
        assert!(matches!(c3, BulkValue::Const(v) if v == 6.0));
        assert_eq!(m.max_live_registers(), 0, "const folding allocates nothing");
        m.write(0, c3);
        assert_eq!(&buf[0..4], &[6.0; 4]);
    }

    #[test]
    fn select_lanewise_mixed_outcomes() {
        // Lanes carry different data, so the select must pick per lane —
        // the type-level guarantee that data never becomes control flow.
        let a = [1.0f32];
        let b = [5.0];
        let mut buf = arrange(&[&a, &b], 1, Layout::ColumnWise);
        let mut m = machine_with(&mut buf, 2, 1, Layout::ColumnWise);
        let x = m.read(0);
        let three = m.constant(3.0);
        let hi = m.constant(100.0);
        let lo = m.constant(-100.0);
        let r = m.select(CmpOp::Lt, x, three, hi, lo);
        m.write(0, r);
        let out = extract(&buf, 2, 1, Layout::ColumnWise, 0..1);
        assert_eq!(out[0], vec![100.0], "1 < 3 picks hi");
        assert_eq!(out[1], vec![-100.0], "5 >= 3 picks lo");
    }

    #[test]
    fn metrics_count_port_traffic() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        let x = m.read(0);
        let y = m.read(1);
        let s = m.add(x, y); // register op
        m.write(1, s); // store
        let c = m.constant(9.0);
        m.write(0, c); // broadcast
        let got = m.metrics();
        assert_eq!(got.loads, 2);
        assert_eq!(got.stores, 1);
        assert_eq!(got.broadcasts, 1);
        assert_eq!(got.register_ops, 1);
        assert_eq!(got.memory_rounds(), 4);
        assert_eq!(got.max_live_registers, m.max_live_registers());
        let j = got.to_json();
        assert_eq!(j.path("memory_rounds").unwrap().as_i64(), Some(4));
    }

    #[test]
    fn engine_trace_records_one_span_per_vector_step() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        m.enable_tracing();
        let x = m.read(0);
        let y = m.read(1);
        let s = m.add(x, y);
        m.write(1, s);
        let c = m.constant(9.0);
        m.write(0, c);
        let metrics = m.metrics();
        let t = m.take_tracer().unwrap();
        assert!(m.take_tracer().is_none());
        obs::trace::validate(&t).unwrap();
        // One span per vector step, port and alu tracks sharing the clock.
        assert_eq!(t.len() as u64, metrics.memory_rounds() + metrics.register_ops);
        assert_eq!(t.spanned_ticks(0), metrics.memory_rounds());
        assert_eq!(t.spanned_ticks(1), metrics.register_ops);
        assert_eq!(t.end_ts(), metrics.memory_rounds() + metrics.register_ops);
        // Steps carry the op kind and the logical address.
        let ev = &t.events()[0];
        assert_eq!(ev.name, "load");
        assert_eq!(ev.args.get("addr").unwrap().as_i64(), Some(0));
        assert!(t.events().iter().any(|e| e.name == "broadcast"));
        assert!(t.events().iter().any(|e| e.name == "binop"));
    }

    #[test]
    fn free_recycles_registers() {
        let mut buf = vec![0.0f32; 16];
        let mut m = BulkMachine::new(&mut buf, 4, 4, Layout::ColumnWise);
        for i in 0..4 {
            let v = m.read(i);
            let w = m.add(v, v);
            m.write(i, w);
            m.free(v);
            m.free(w);
        }
        assert!(m.max_live_registers() <= 2, "freed registers must be reused");
    }

    #[test]
    fn unop_lanewise() {
        let a = [1u32];
        let b = [2u32];
        let mut buf = arrange(&[&a[..], &b[..]], 1, Layout::ColumnWise);
        let mut m: BulkMachine<u32, _> = BulkMachine::new(&mut buf, 2, 1, Layout::ColumnWise);
        let x = m.read(0);
        let y = m.unop(UnOp::Shl(3), x);
        m.write(0, y);
        assert_eq!(buf, vec![8, 16]);
    }

    #[test]
    #[should_panic(expected = "out of instance memory")]
    fn read_beyond_instance_memory_panics() {
        let mut buf = vec![0.0f32; 8];
        let mut m = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
        let _ = m.read(2);
    }

    #[test]
    #[should_panic(expected = "p * msize")]
    fn wrong_buffer_size_rejected() {
        let mut buf = vec![0.0f32; 7];
        let _ = BulkMachine::new(&mut buf, 4, 2, Layout::ColumnWise);
    }

    /// A custom port that offsets every address by a fixed shift — checks
    /// that BulkMachine is genuinely port-generic.
    #[derive(Debug)]
    struct ShiftPort {
        data: Vec<f32>,
        lanes: usize,
    }

    impl LanePort<f32> for ShiftPort {
        fn lanes(&self) -> usize {
            self.lanes
        }
        fn load(&mut self, addr: usize, dst: &mut [f32]) {
            for (l, d) in dst.iter_mut().enumerate() {
                *d = self.data[addr * self.lanes + l];
            }
        }
        fn store(&mut self, addr: usize, src: &[f32]) {
            for (l, &s) in src.iter().enumerate() {
                self.data[addr * self.lanes + l] = s;
            }
        }
        fn broadcast(&mut self, addr: usize, c: f32) {
            for l in 0..self.lanes {
                self.data[addr * self.lanes + l] = c;
            }
        }
    }

    #[test]
    fn custom_port_is_usable() {
        let port = ShiftPort { data: vec![1.0, 2.0, 3.0, 4.0], lanes: 2 };
        let mut m = BulkMachine::with_port(port);
        let x = m.read(0);
        let y = m.read(1);
        let s = m.add(x, y);
        m.write(0, s);
        // Register ops worked lane-wise through the custom port.
        assert_eq!(m.port.data, vec![4.0, 6.0, 3.0, 4.0]);
    }
}
