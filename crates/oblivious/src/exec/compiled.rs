//! Schedule compilation: dry-run an oblivious program once, replay the
//! resulting step table for every batch.
//!
//! The paper's central observation is that an oblivious algorithm's memory
//! access function `a(t)` depends only on the time step `t`, never on the
//! data.  The interpreter ([`crate::exec::BulkMachine`] driven by
//! `Program::run`) therefore re-derives the *same* sequence of vector steps
//! — opcodes, resolved addresses, register slots, constant foldings — on
//! every execution.  [`CompiledSchedule::compile`] performs that derivation
//! exactly once, recording a flat step table that
//! [`crate::exec::BulkMachine::run_compiled`] replays without re-decoding,
//! and [`CompiledSchedule::cost_table`] prices once per `(machine, layout,
//! p)` from the closed-form per-warp charges of
//! [`crate::layout::uniform_round_warp_charges_umm`].
//!
//! **Soundness.** The compiler is itself an [`ObliviousMachine`] whose value
//! representation, constant folding, and register allocation mirror
//! [`crate::exec::BulkMachine`] *operation for operation*, so the recorded
//! step table — including register ids and every [`BulkMetrics`] counter —
//! is precisely what the interpreter would do, for **any** input: the
//! program's control flow cannot observe lane data (values are opaque
//! handles, branching happens only through lane-wise `select`), so the one
//! dry run characterises all `p` instances.  Algorithms *outside* the
//! machine interface carry no such guarantee; [`compile_from_traces`]
//! accepts them only after [`crate::checker::check_oblivious`] certifies
//! their traces agree, and refuses input-dependent ones with
//! [`CompileError::NotOblivious`].

use crate::checker::{check_oblivious, ObliviousnessViolation};
use crate::exec::bulk::BulkMetrics;
use crate::layout::{self, Layout};
use crate::machine::{ObliviousMachine, ObliviousProgram};
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;
use obs::Json;
use std::sync::{Arc, Mutex};
use umm_core::{MachineConfig, Op, ThreadAction, ThreadTrace};

/// A step operand: the compiled counterpart of
/// [`crate::exec::BulkValue`] — constants stay scalar, registers index the
/// replaying machine's register file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand<W> {
    /// A uniform constant across all lanes.
    Const(W),
    /// Index into the register file.
    Reg(u32),
}

/// One vector step of a compiled schedule.
///
/// Exactly the steps the interpreter would execute: constant-foldable
/// operations (`const op const`, all-constant selects) are folded at
/// compile time and never appear, matching [`crate::exec::BulkMachine`]'s
/// silent folding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step<W> {
    /// Load logical `addr` of every lane into register `dst`.
    Load {
        /// Logical address within instance memory.
        addr: usize,
        /// Destination register.
        dst: u32,
    },
    /// Store register `src` to logical `addr` of every lane.
    Store {
        /// Logical address within instance memory.
        addr: usize,
        /// Source register.
        src: u32,
    },
    /// Store the constant `value` to logical `addr` of every lane.
    Broadcast {
        /// Logical address within instance memory.
        addr: usize,
        /// The constant written to every lane.
        value: W,
    },
    /// Lane-wise unary operation `dst = op(src)`.
    Un {
        /// The operation.
        op: UnOp,
        /// Source register.
        src: u32,
        /// Destination register.
        dst: u32,
    },
    /// Lane-wise binary operation `dst = op(a, b)` (at least one register).
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand.
        a: Operand<W>,
        /// Right operand.
        b: Operand<W>,
        /// Destination register.
        dst: u32,
    },
    /// Lane-wise select `dst = if cmp(a, b) { t } else { e }`.
    Select {
        /// The comparison predicate.
        cmp: CmpOp,
        /// Left comparison operand.
        a: Operand<W>,
        /// Right comparison operand.
        b: Operand<W>,
        /// Value when the predicate holds.
        t: Operand<W>,
        /// Value when it does not.
        e: Operand<W>,
        /// Destination register.
        dst: u32,
    },
}

/// One link of a fused accumulator chain: `acc = op(mem[addr], acc)` (or
/// `op(acc, mem[addr])` per the flag), written back to `mem[addr]`.
pub(crate) type ChainLink = (usize, BinOp, bool);

/// A replay step after peephole fusion (derived from [`Step`], never
/// serialized — [`CompiledSchedule::from_json`] recomputes it).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FusedStep<W> {
    /// An unfused step, executed as in the canonical table.
    Plain(Step<W>),
    /// `Load addr → x; Bin op …x…; Store addr ← dst` collapsed into one
    /// read-modify-write pass: `mem[addr] = dst = op(mem[addr], other)`
    /// (operand order per `other_on_left`).  Valid only when the loaded
    /// register `x` is dead after the store, so it is never materialised.
    LoadBinStore {
        /// Logical address read, combined, and written back.
        addr: usize,
        /// The binary operation.
        op: BinOp,
        /// The non-memory operand.
        other: Operand<W>,
        /// Whether `other` is the *left* operand (`op(other, mem)`).
        other_on_left: bool,
        /// Destination register, still materialised (later steps read it).
        dst: u32,
    },
    /// A run of [`FusedStep::LoadBinStore`] steps, each feeding the next as
    /// its non-memory operand — the accumulator shape of streaming programs
    /// (prefix-sums is one chain end to end).  Replay keeps the running
    /// value in a single hot vector: `acc = init`, then per link
    /// `mem[addr] = acc = op(mem[addr], acc)`; only the *final* register
    /// (`dst`) is materialised.  Valid only when every intermediate
    /// destination's sole use is the next link (checked against the
    /// canonical table during fusion).
    Chain {
        /// The first link's non-memory operand.
        init: Operand<W>,
        /// Register receiving the final accumulator value.
        dst: u32,
        /// `(addr, op, other_on_left)` per fused triple, in order.
        links: Vec<ChainLink>,
    },
}

/// Why a program or trace cannot be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The traces diverge across probe inputs: the algorithm's address
    /// schedule depends on its input, so no single compiled schedule can
    /// replay it.  Carries the checker's divergence evidence.
    NotOblivious {
        /// Name of the refused algorithm.
        name: String,
        /// First divergence found by the obliviousness checker.
        violation: ObliviousnessViolation,
    },
    /// A traced access lies outside the declared instance memory.
    AddressOutOfBounds {
        /// Name of the refused algorithm.
        name: String,
        /// Index of the offending trace step.
        step: usize,
        /// The out-of-bounds logical address.
        addr: usize,
        /// Declared instance memory size.
        msize: usize,
    },
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::NotOblivious { name, violation } => write!(
                f,
                "cannot compile {name}: not oblivious — address trace is input-dependent \
                 ({violation}); a compiled schedule replays one fixed trace for all inputs"
            ),
            CompileError::AddressOutOfBounds { name, step, addr, msize } => write!(
                f,
                "cannot compile {name}: trace step {step} accesses address {addr} \
                 outside instance memory of {msize} words"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Precomputed per-warp charges of a schedule's memory steps under one
/// `(machine, layout, p)` — the address-group (UMM) and bank-conflict (DMM)
/// costs the simulators' [`umm_core::UmmSimulator::step_uniform`] fast path
/// replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleCostTable {
    umm: Vec<Vec<u64>>,
    dmm: Vec<Vec<u64>>,
}

impl ScheduleCostTable {
    /// Per-warp UMM stage charges of a uniform round on logical `addr`.
    #[must_use]
    pub fn umm_charges(&self, addr: usize) -> &[u64] {
        &self.umm[addr]
    }

    /// Per-warp DMM conflict charges of a uniform round on logical `addr`.
    #[must_use]
    pub fn dmm_charges(&self, addr: usize) -> &[u64] {
        &self.dmm[addr]
    }
}

/// A program compiled to a flat table of vector steps.
///
/// Built by [`CompiledSchedule::compile`] (one dry run) and replayed by
/// [`crate::exec::BulkMachine::run_compiled`] or
/// [`crate::exec::shard::run_sharded`].  The stored [`BulkMetrics`] are the
/// interpreter's, by construction — replay reports them instead of
/// recounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSchedule<W> {
    name: String,
    msize: usize,
    input_range: core::ops::Range<usize>,
    output_range: core::ops::Range<usize>,
    steps: Vec<Step<W>>,
    reg_count: usize,
    metrics: BulkMetrics,
    fused: Vec<FusedStep<W>>,
}

/// The compiling machine: mirrors `BulkMachine`'s constant folding and
/// free-list register allocation exactly, but records steps instead of
/// touching lane data.
struct Compiler<W> {
    msize: usize,
    steps: Vec<Step<W>>,
    free: Vec<u32>,
    live: usize,
    max_live: usize,
    next: u32,
    metrics: BulkMetrics,
}

impl<W: Word> Compiler<W> {
    fn alloc(&mut self) -> u32 {
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        if let Some(id) = self.free.pop() {
            id
        } else {
            self.next += 1;
            self.next - 1
        }
    }
}

impl<W: Word> ObliviousMachine<W> for Compiler<W> {
    type Value = Operand<W>;

    fn read(&mut self, addr: usize) -> Operand<W> {
        assert!(addr < self.msize, "read address {addr} out of instance memory {}", self.msize);
        self.metrics.loads += 1;
        let dst = self.alloc();
        self.steps.push(Step::Load { addr, dst });
        Operand::Reg(dst)
    }

    fn write(&mut self, addr: usize, v: Operand<W>) {
        assert!(addr < self.msize, "write address {addr} out of instance memory {}", self.msize);
        match v {
            Operand::Reg(src) => {
                self.metrics.stores += 1;
                self.steps.push(Step::Store { addr, src });
            }
            Operand::Const(value) => {
                self.metrics.broadcasts += 1;
                self.steps.push(Step::Broadcast { addr, value });
            }
        }
    }

    #[inline]
    fn constant(&mut self, c: W) -> Operand<W> {
        Operand::Const(c)
    }

    fn unop(&mut self, op: UnOp, a: Operand<W>) -> Operand<W> {
        match a {
            Operand::Const(c) => Operand::Const(W::apply_un(op, c)),
            Operand::Reg(src) => {
                self.metrics.register_ops += 1;
                let dst = self.alloc();
                self.steps.push(Step::Un { op, src, dst });
                Operand::Reg(dst)
            }
        }
    }

    fn binop(&mut self, op: BinOp, a: Operand<W>, b: Operand<W>) -> Operand<W> {
        if let (Operand::Const(x), Operand::Const(y)) = (a, b) {
            return Operand::Const(W::apply_bin(op, x, y));
        }
        self.metrics.register_ops += 1;
        let dst = self.alloc();
        self.steps.push(Step::Bin { op, a, b, dst });
        Operand::Reg(dst)
    }

    fn select(
        &mut self,
        cmp: CmpOp,
        a: Operand<W>,
        b: Operand<W>,
        t: Operand<W>,
        e: Operand<W>,
    ) -> Operand<W> {
        if let (Operand::Const(ca), Operand::Const(cb), Operand::Const(ct), Operand::Const(ce)) =
            (a, b, t, e)
        {
            return Operand::Const(if W::compare(cmp, ca, cb) { ct } else { ce });
        }
        self.metrics.register_ops += 1;
        let dst = self.alloc();
        self.steps.push(Step::Select { cmp, a, b, t, e, dst });
        Operand::Reg(dst)
    }

    fn free(&mut self, v: Operand<W>) {
        if let Operand::Reg(id) = v {
            debug_assert!(!self.free.contains(&id), "double free of compiled register {id}");
            self.live -= 1;
            self.free.push(id);
        }
    }
}

impl<W: Word> CompiledSchedule<W> {
    /// Compile a program by one dry run through the recording machine.
    ///
    /// Infallible: programs written against [`ObliviousMachine`] are
    /// oblivious by construction (see the module docs), so the recorded
    /// table is valid for every input.
    ///
    /// # Panics
    ///
    /// Panics if the program accesses an address outside its declared
    /// `memory_words()` — the same contract violation the interpreter's
    /// port rejects.
    #[must_use]
    pub fn compile<P: ObliviousProgram<W>>(program: &P) -> Self {
        let msize = program.memory_words();
        assert!(msize > 0, "a program needs at least one memory word");
        let mut c = Compiler {
            msize,
            steps: Vec::new(),
            free: Vec::new(),
            live: 0,
            max_live: 0,
            next: 0,
            metrics: BulkMetrics::default(),
        };
        program.run(&mut c);
        let metrics = BulkMetrics { max_live_registers: c.max_live, ..c.metrics };
        Self::from_parts(
            program.name(),
            msize,
            program.input_range(),
            program.output_range(),
            c.steps,
            c.next as usize,
            metrics,
        )
    }

    fn from_parts(
        name: String,
        msize: usize,
        input_range: core::ops::Range<usize>,
        output_range: core::ops::Range<usize>,
        steps: Vec<Step<W>>,
        reg_count: usize,
        metrics: BulkMetrics,
    ) -> Self {
        let fused = fuse(&steps);
        Self { name, msize, input_range, output_range, steps, reg_count, metrics, fused }
    }

    /// Name of the compiled program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instance memory size in words.
    #[must_use]
    pub fn memory_words(&self) -> usize {
        self.msize
    }

    /// Logical address range holding each instance's input.
    #[must_use]
    pub fn input_range(&self) -> core::ops::Range<usize> {
        self.input_range.clone()
    }

    /// Logical address range holding each instance's output.
    #[must_use]
    pub fn output_range(&self) -> core::ops::Range<usize> {
        self.output_range.clone()
    }

    /// The canonical (unfused) step table.
    #[must_use]
    pub fn steps(&self) -> &[Step<W>] {
        &self.steps
    }

    /// Number of register slots replay must provide.
    #[must_use]
    pub fn reg_count(&self) -> usize {
        self.reg_count
    }

    /// The interpreter's metrics for one execution of this schedule —
    /// identical for every input and lane count (all counters are per
    /// *vector* step), so replay reports them instead of recounting.
    #[must_use]
    pub fn metrics(&self) -> BulkMetrics {
        self.metrics
    }

    /// The fused replay table.
    pub(crate) fn fused_steps(&self) -> &[FusedStep<W>] {
        &self.fused
    }

    /// Memory steps in order, as `(op, logical address)` — the schedule's
    /// uniform-round sequence, which the cost simulators price.
    pub fn mem_steps(&self) -> impl Iterator<Item = (Op, usize)> + '_ {
        self.steps.iter().filter_map(|s| match *s {
            Step::Load { addr, .. } => Some((Op::Read, addr)),
            Step::Store { addr, .. } | Step::Broadcast { addr, .. } => Some((Op::Write, addr)),
            _ => None,
        })
    }

    /// Precompute the per-warp UMM/DMM charges of every logical address
    /// under `(cfg, layout, p)` — computed once, replayed for each of the
    /// schedule's memory steps by [`crate::program::compiled_profiled_umm`].
    #[must_use]
    pub fn cost_table(&self, cfg: &MachineConfig, lay: Layout, p: usize) -> ScheduleCostTable {
        let mut umm = Vec::with_capacity(self.msize);
        let mut dmm = Vec::with_capacity(self.msize);
        for addr in 0..self.msize {
            let mut u = Vec::new();
            let mut d = Vec::new();
            layout::uniform_round_warp_charges_umm(cfg, lay, p, self.msize, addr, &mut u);
            layout::uniform_round_warp_charges_dmm(cfg, lay, p, self.msize, addr, &mut d);
            umm.push(u);
            dmm.push(d);
        }
        ScheduleCostTable { umm, dmm }
    }

    /// Serialize to an `obs` JSON object.
    ///
    /// Word constants travel as fixed-width hex strings of their
    /// [`Word::to_bits_u64`] pattern (JSON numbers are `i64`/`f64` and
    /// would corrupt `u64` and NaN patterns).  The fused table is derived,
    /// not serialized; [`CompiledSchedule::from_json`] recomputes it.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("name", self.name.clone());
        obj.set("memory_words", self.msize);
        obj.set(
            "input",
            Json::Arr(vec![self.input_range.start.into(), self.input_range.end.into()]),
        );
        obj.set(
            "output",
            Json::Arr(vec![self.output_range.start.into(), self.output_range.end.into()]),
        );
        obj.set("reg_count", self.reg_count);
        obj.set("metrics", self.metrics.to_json());
        obj.set("steps", Json::Arr(self.steps.iter().map(step_to_json).collect()));
        obj
    }

    /// Deserialize a schedule serialized by [`CompiledSchedule::to_json`],
    /// validating register ids, addresses, and metric consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let name = j.path("name").and_then(Json::as_str).ok_or("missing name")?.to_string();
        let msize = get_usize(j, "memory_words")?;
        let input_range = get_range(j, "input")?;
        let output_range = get_range(j, "output")?;
        let reg_count = get_usize(j, "reg_count")?;
        let steps_json = j.path("steps").and_then(Json::as_arr).ok_or("missing steps")?;
        let mut steps = Vec::with_capacity(steps_json.len());
        for (i, s) in steps_json.iter().enumerate() {
            steps.push(step_from_json(s).map_err(|e| format!("step {i}: {e}"))?);
        }
        // Validate references and recount the derivable metrics.
        let mut recount = BulkMetrics::default();
        for (i, s) in steps.iter().enumerate() {
            let check_reg = |r: u32| {
                if (r as usize) < reg_count {
                    Ok(())
                } else {
                    Err(format!("step {i}: register {r} out of {reg_count}"))
                }
            };
            let check_opnd = |o: &Operand<W>| match o {
                Operand::Reg(r) => check_reg(*r),
                Operand::Const(_) => Ok(()),
            };
            let check_addr = |a: usize| {
                if a < msize {
                    Ok(())
                } else {
                    Err(format!("step {i}: address {a} out of {msize}"))
                }
            };
            match s {
                Step::Load { addr, dst } => {
                    check_addr(*addr)?;
                    check_reg(*dst)?;
                    recount.loads += 1;
                }
                Step::Store { addr, src } => {
                    check_addr(*addr)?;
                    check_reg(*src)?;
                    recount.stores += 1;
                }
                Step::Broadcast { addr, .. } => {
                    check_addr(*addr)?;
                    recount.broadcasts += 1;
                }
                Step::Un { src, dst, .. } => {
                    check_reg(*src)?;
                    check_reg(*dst)?;
                    recount.register_ops += 1;
                }
                Step::Bin { a, b, dst, .. } => {
                    check_opnd(a)?;
                    check_opnd(b)?;
                    check_reg(*dst)?;
                    recount.register_ops += 1;
                }
                Step::Select { a, b, t, e, dst, .. } => {
                    for o in [a, b, t, e] {
                        check_opnd(o)?;
                    }
                    check_reg(*dst)?;
                    recount.register_ops += 1;
                }
            }
        }
        let m = j.path("metrics").ok_or("missing metrics")?;
        let metrics = BulkMetrics {
            loads: get_u64(m, "loads")?,
            stores: get_u64(m, "stores")?,
            broadcasts: get_u64(m, "broadcasts")?,
            register_ops: get_u64(m, "register_ops")?,
            max_live_registers: get_usize(m, "max_live_registers")?,
        };
        if (metrics.loads, metrics.stores, metrics.broadcasts, metrics.register_ops)
            != (recount.loads, recount.stores, recount.broadcasts, recount.register_ops)
        {
            return Err("metrics disagree with the step table".to_string());
        }
        if metrics.max_live_registers > reg_count {
            return Err("max_live_registers exceeds reg_count".to_string());
        }
        Ok(Self::from_parts(name, msize, input_range, output_range, steps, reg_count, metrics))
    }
}

/// Compile a *raw* (non-machine) algorithm from its address traces.
///
/// Programs written against [`ObliviousMachine`] never need this — use
/// [`CompiledSchedule::compile`].  For algorithms outside the interface
/// there is no by-construction guarantee, so this entry point records the
/// trace on every probe input, requires all traces to coincide
/// ([`check_oblivious`]), and **refuses** input-dependent algorithms with
/// [`CompileError::NotOblivious`].  The resulting schedule carries
/// pass-through dataflow — each store writes the most recently loaded word
/// (register 0) — preserving the address schedule exactly, which is what
/// cost analysis and replay pricing consume.  `Idle` trace steps are
/// skipped (they cost nothing on either machine as part of a bulk round).
///
/// # Errors
///
/// [`CompileError::NotOblivious`] on trace divergence,
/// [`CompileError::AddressOutOfBounds`] if a trace step leaves the declared
/// memory.
///
/// # Panics
///
/// Panics if `probes` is empty (the checker needs at least one trace).
pub fn compile_from_traces<W: Word, I>(
    name: &str,
    msize: usize,
    trace_fn: impl Fn(&I) -> ThreadTrace,
    probes: &[I],
) -> Result<CompiledSchedule<W>, CompileError> {
    let trace = check_oblivious(trace_fn, probes)
        .map_err(|violation| CompileError::NotOblivious { name: name.to_string(), violation })?;
    let mut steps: Vec<Step<W>> = Vec::new();
    let mut metrics = BulkMetrics::default();
    for (i, action) in trace.steps().iter().enumerate() {
        match *action {
            ThreadAction::Idle => {}
            ThreadAction::Access(op, addr) => {
                if addr >= msize {
                    return Err(CompileError::AddressOutOfBounds {
                        name: name.to_string(),
                        step: i,
                        addr,
                        msize,
                    });
                }
                match op {
                    Op::Read => {
                        metrics.loads += 1;
                        steps.push(Step::Load { addr, dst: 0 });
                    }
                    Op::Write => {
                        metrics.stores += 1;
                        steps.push(Step::Store { addr, src: 0 });
                    }
                }
            }
        }
    }
    let reg_count = usize::from(!steps.is_empty());
    metrics.max_live_registers = reg_count;
    Ok(CompiledSchedule::from_parts(
        name.to_string(),
        msize,
        0..msize,
        0..msize,
        steps,
        reg_count,
        metrics,
    ))
}

/// Peephole fusion: collapse `Load a → x; Bin op …x…; Store a ← s` into one
/// read-modify-write pass when `x` is dead after the store, and merge runs
/// of such triples that feed each other into accumulator chains.  The
/// dominant pattern of streaming programs (prefix-sums fuses into a single
/// chain), and the reason compiled replay beats the interpreter: three
/// `p`-word passes and their step bookkeeping become one chain link.
fn fuse<W: Word>(steps: &[Step<W>]) -> Vec<FusedStep<W>> {
    let mut out: Vec<FusedStep<W>> = Vec::with_capacity(steps.len());
    let mut i = 0;
    while i < steps.len() {
        if i + 2 < steps.len() {
            if let (
                Step::Load { addr, dst: x },
                Step::Bin { op, a, b, dst },
                Step::Store { addr: addr2, src },
            ) = (steps[i], steps[i + 1], steps[i + 2])
            {
                if addr == addr2 && src == dst && dst != x {
                    // Exactly one operand must be the freshly loaded `x`;
                    // the other must not alias `x` or `dst`.
                    let other = match (a, b) {
                        (Operand::Reg(r), o) if r == x && o != Operand::Reg(x) => {
                            Some((o, false)) // mem on the left: op(mem, other)
                        }
                        (o, Operand::Reg(r)) if r == x && o != Operand::Reg(x) => {
                            Some((o, true)) // other on the left: op(other, mem)
                        }
                        _ => None,
                    };
                    if let Some((other, other_on_left)) = other {
                        if other != Operand::Reg(dst) && reg_dead_after(&steps[i + 3..], x) {
                            push_fused_triple(
                                &mut out,
                                &steps[i + 3..],
                                addr,
                                op,
                                other,
                                other_on_left,
                                dst,
                            );
                            i += 3;
                            continue;
                        }
                    }
                }
            }
        }
        out.push(FusedStep::Plain(steps[i]));
        i += 1;
    }
    out
}

/// Append a fused `Load;Bin;Store` triple, merging it into the preceding
/// chain (or forming one with the preceding triple) when its non-memory
/// operand is exactly the preceding fused destination and that destination
/// has no further use in `rest` (the canonical steps after this triple).
fn push_fused_triple<W: Word>(
    out: &mut Vec<FusedStep<W>>,
    rest: &[Step<W>],
    addr: usize,
    op: BinOp,
    other: Operand<W>,
    other_on_left: bool,
    dst: u32,
) {
    if let Operand::Reg(prev) = other {
        // `out.last()` being a fused triple/chain means it ended exactly
        // one canonical step before this triple's load, so the only use of
        // its destination between the two is this triple's operand.
        match out.last_mut() {
            Some(&mut FusedStep::LoadBinStore {
                addr: p_addr,
                op: p_op,
                other: p_other,
                other_on_left: p_left,
                dst: p_dst,
            }) if p_dst == prev && p_dst != dst && reg_dead_after(rest, prev) => {
                *out.last_mut().expect("just matched") = FusedStep::Chain {
                    init: p_other,
                    dst,
                    links: vec![(p_addr, p_op, p_left), (addr, op, other_on_left)],
                };
                return;
            }
            Some(FusedStep::Chain { dst: c_dst, links, .. })
                if *c_dst == prev && *c_dst != dst && reg_dead_after(rest, prev) =>
            {
                links.push((addr, op, other_on_left));
                *c_dst = dst;
                return;
            }
            _ => {}
        }
    }
    out.push(FusedStep::LoadBinStore { addr, op, other, other_on_left, dst });
}

/// Is register `x` redefined before any later step reads it?  (End of
/// program counts as dead.)
fn reg_dead_after<W: Word>(rest: &[Step<W>], x: u32) -> bool {
    let reads = |o: &Operand<W>| matches!(o, Operand::Reg(r) if *r == x);
    for s in rest {
        match s {
            Step::Load { dst, .. } => {
                if *dst == x {
                    return true;
                }
            }
            Step::Store { src, .. } => {
                if *src == x {
                    return false;
                }
            }
            Step::Broadcast { .. } => {}
            Step::Un { src, dst, .. } => {
                if *src == x {
                    return false;
                }
                if *dst == x {
                    return true;
                }
            }
            Step::Bin { a, b, dst, .. } => {
                if reads(a) || reads(b) {
                    return false;
                }
                if *dst == x {
                    return true;
                }
            }
            Step::Select { a, b, t, e, dst, .. } => {
                if reads(a) || reads(b) || reads(t) || reads(e) {
                    return false;
                }
                if *dst == x {
                    return true;
                }
            }
        }
    }
    true
}

/// A process-wide cache of compiled schedules, keyed `(name, memory_words,
/// layout)` — one entry per way a run can be requested.
///
/// The step table itself is layout-invariant (obliviousness: the logical
/// schedule cannot depend on the physical arrangement); keying by layout
/// keeps the cache aligned with how executions are requested and leaves
/// room for layout-specialised artifacts (cost tables) to live alongside.
/// Thread-safe: sharded executors and serving daemons share one cache
/// behind an `Arc`.  Compilation happens *under* the lock, so each key
/// compiles exactly once no matter how many threads race on it — the
/// invariant [`ScheduleCache::stats`] lets callers assert.
#[derive(Debug)]
pub struct ScheduleCache<W> {
    inner: Mutex<CacheInner<W>>,
}

/// Cumulative hit/compile counts of a [`ScheduleCache`].
///
/// `compiles` is the number of dry runs performed (one per distinct key
/// ever requested); `hits` is the number of requests served from an
/// existing entry.  A serving daemon reports these as its schedule-cache
/// hit rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from an existing entry.
    pub hits: u64,
    /// Requests that compiled a new schedule (== distinct keys requested).
    pub compiles: u64,
}

impl CacheStats {
    /// Fraction of requests served from the cache (0 when never used).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.compiles;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner<W> {
    entries: Vec<CacheEntry<W>>,
    stats: CacheStats,
}

/// `(name, memory_words, layout)` key plus the shared schedule.
type CacheEntry<W> = ((String, usize, Layout), Arc<CompiledSchedule<W>>);

impl<W> Default for ScheduleCache<W> {
    fn default() -> Self {
        Self { inner: Mutex::new(CacheInner { entries: Vec::new(), stats: CacheStats::default() }) }
    }
}

impl<W: Word> ScheduleCache<W> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the schedule for `(program.name(), program.memory_words(),
    /// layout)`, compiling and inserting it on first request.
    pub fn get_or_compile<P: ObliviousProgram<W>>(
        &self,
        program: &P,
        layout: Layout,
    ) -> Arc<CompiledSchedule<W>> {
        let key = (program.name(), program.memory_words(), layout);
        let mut inner = self.inner.lock().expect("schedule cache poisoned");
        if let Some(idx) = inner.entries.iter().position(|(k, _)| *k == key) {
            inner.stats.hits += 1;
            return Arc::clone(&inner.entries[idx].1);
        }
        let schedule = Arc::new(CompiledSchedule::compile(program));
        inner.stats.compiles += 1;
        inner.entries.push((key, Arc::clone(&schedule)));
        schedule
    }

    /// Number of cached schedules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("schedule cache poisoned").entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit/compile counts since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("schedule cache poisoned").stats
    }
}

// ---------------------------------------------------------------------------
// JSON encoding helpers
// ---------------------------------------------------------------------------

fn bits_str<W: Word>(w: W) -> String {
    format!("0x{:016x}", w.to_bits_u64())
}

fn bits_parse<W: Word>(s: &str) -> Result<W, String> {
    let hex = s.strip_prefix("0x").ok_or_else(|| format!("bad word literal {s:?}"))?;
    u64::from_str_radix(hex, 16)
        .map(W::from_bits_u64)
        .map_err(|e| format!("bad word literal {s:?}: {e}"))
}

fn operand_to_json<W: Word>(o: &Operand<W>) -> Json {
    let mut j = Json::obj();
    match o {
        Operand::Const(c) => {
            j.set("const", bits_str(*c));
        }
        Operand::Reg(r) => {
            j.set("reg", *r as usize);
        }
    }
    j
}

fn operand_from_json<W: Word>(j: &Json) -> Result<Operand<W>, String> {
    if let Some(r) = j.path("reg").and_then(Json::as_i64) {
        return u32::try_from(r).map(Operand::Reg).map_err(|_| format!("bad register {r}"));
    }
    if let Some(s) = j.path("const").and_then(Json::as_str) {
        return bits_parse(s).map(Operand::Const);
    }
    Err("operand needs reg or const".to_string())
}

fn un_name(op: UnOp) -> (&'static str, Option<u32>) {
    match op {
        UnOp::Neg => ("neg", None),
        UnOp::Not => ("not", None),
        UnOp::Shl(k) => ("shl", Some(k)),
        UnOp::Shr(k) => ("shr", Some(k)),
    }
}

fn un_parse(name: &str, k: Option<u32>) -> Result<UnOp, String> {
    match (name, k) {
        ("neg", None) => Ok(UnOp::Neg),
        ("not", None) => Ok(UnOp::Not),
        ("shl", Some(k)) => Ok(UnOp::Shl(k)),
        ("shr", Some(k)) => Ok(UnOp::Shr(k)),
        _ => Err(format!("bad unary op {name:?}")),
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::Xor => "xor",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn bin_parse(name: &str) -> Result<BinOp, String> {
    Ok(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "xor" => BinOp::Xor,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        _ => return Err(format!("bad binary op {name:?}")),
    })
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Eq => "eq",
    }
}

fn cmp_parse(name: &str) -> Result<CmpOp, String> {
    Ok(match name {
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "eq" => CmpOp::Eq,
        _ => return Err(format!("bad comparison {name:?}")),
    })
}

fn step_to_json<W: Word>(s: &Step<W>) -> Json {
    let mut j = Json::obj();
    match s {
        Step::Load { addr, dst } => {
            j.set("op", "load");
            j.set("addr", *addr);
            j.set("dst", *dst as usize);
        }
        Step::Store { addr, src } => {
            j.set("op", "store");
            j.set("addr", *addr);
            j.set("src", *src as usize);
        }
        Step::Broadcast { addr, value } => {
            j.set("op", "broadcast");
            j.set("addr", *addr);
            j.set("value", bits_str(*value));
        }
        Step::Un { op, src, dst } => {
            j.set("op", "un");
            let (name, k) = un_name(*op);
            j.set("f", name);
            if let Some(k) = k {
                j.set("k", k as usize);
            }
            j.set("src", *src as usize);
            j.set("dst", *dst as usize);
        }
        Step::Bin { op, a, b, dst } => {
            j.set("op", "bin");
            j.set("f", bin_name(*op));
            j.set("a", operand_to_json(a));
            j.set("b", operand_to_json(b));
            j.set("dst", *dst as usize);
        }
        Step::Select { cmp, a, b, t, e, dst } => {
            j.set("op", "select");
            j.set("cmp", cmp_name(*cmp));
            j.set("a", operand_to_json(a));
            j.set("b", operand_to_json(b));
            j.set("t", operand_to_json(t));
            j.set("e", operand_to_json(e));
            j.set("dst", *dst as usize);
        }
    }
    j
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.path(key)
        .and_then(Json::as_i64)
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| format!("missing or negative {key}"))
}

fn get_usize(j: &Json, key: &str) -> Result<usize, String> {
    get_u64(j, key).map(|v| v as usize)
}

fn get_u32(j: &Json, key: &str) -> Result<u32, String> {
    get_u64(j, key).and_then(|v| u32::try_from(v).map_err(|_| format!("{key} too large")))
}

fn get_range(j: &Json, key: &str) -> Result<core::ops::Range<usize>, String> {
    let arr = j.path(key).and_then(Json::as_arr).ok_or_else(|| format!("missing {key}"))?;
    if arr.len() != 2 {
        return Err(format!("{key} must be [start, end]"));
    }
    let lo = arr[0].as_i64().and_then(|v| usize::try_from(v).ok());
    let hi = arr[1].as_i64().and_then(|v| usize::try_from(v).ok());
    match (lo, hi) {
        (Some(lo), Some(hi)) if lo <= hi => Ok(lo..hi),
        _ => Err(format!("bad {key} bounds")),
    }
}

fn step_from_json<W: Word>(j: &Json) -> Result<Step<W>, String> {
    let op = j.path("op").and_then(Json::as_str).ok_or("missing op")?;
    let opnd = |key: &str| {
        j.path(key).ok_or_else(|| format!("missing {key}")).and_then(|o| operand_from_json(o))
    };
    Ok(match op {
        "load" => Step::Load { addr: get_usize(j, "addr")?, dst: get_u32(j, "dst")? },
        "store" => Step::Store { addr: get_usize(j, "addr")?, src: get_u32(j, "src")? },
        "broadcast" => {
            let s = j.path("value").and_then(Json::as_str).ok_or("missing value")?;
            Step::Broadcast { addr: get_usize(j, "addr")?, value: bits_parse(s)? }
        }
        "un" => {
            let name = j.path("f").and_then(Json::as_str).ok_or("missing f")?;
            let k = match j.path("k").and_then(Json::as_i64) {
                Some(k) => Some(u32::try_from(k).map_err(|_| "bad shift amount")?),
                None => None,
            };
            Step::Un { op: un_parse(name, k)?, src: get_u32(j, "src")?, dst: get_u32(j, "dst")? }
        }
        "bin" => Step::Bin {
            op: bin_parse(j.path("f").and_then(Json::as_str).ok_or("missing f")?)?,
            a: opnd("a")?,
            b: opnd("b")?,
            dst: get_u32(j, "dst")?,
        },
        "select" => Step::Select {
            cmp: cmp_parse(j.path("cmp").and_then(Json::as_str).ok_or("missing cmp")?)?,
            a: opnd("a")?,
            b: opnd("b")?,
            t: opnd("t")?,
            e: opnd("e")?,
            dst: get_u32(j, "dst")?,
        },
        other => return Err(format!("unknown step op {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::bulk::BulkMachine;
    use crate::machine::ObliviousProgram;

    /// Running sum in place — the canonical full-chain fusion case.
    struct MiniPrefix {
        n: usize,
    }

    impl ObliviousProgram<f32> for MiniPrefix {
        fn name(&self) -> String {
            "mini-prefix".into()
        }
        fn memory_words(&self) -> usize {
            self.n
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
            let mut r = m.zero();
            for i in 0..self.n {
                let x = m.read(i);
                let r2 = m.add(r, x);
                m.free(x);
                m.free(r);
                m.write(i, r2);
                r = r2;
            }
        }
    }

    /// Exercises every step kind: load, store, broadcast, unop, binop with
    /// a constant operand, select — and constant folding.
    struct Mixed;

    impl ObliviousProgram<f32> for Mixed {
        fn name(&self) -> String {
            "mixed".into()
        }
        fn memory_words(&self) -> usize {
            4
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..2
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..4
        }
        fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
            let a = m.read(0);
            let b = m.read(1);
            let s = m.add(a, b);
            let neg = m.unop(UnOp::Neg, b);
            let mx = m.select(CmpOp::Lt, a, b, b, a);
            m.write(2, s);
            m.write(3, mx);
            let two = m.constant(2.0);
            let four = m.mul(two, two); // folds: no step, no metric
            m.write(0, four); // broadcast
            let shifted = m.add(neg, two);
            m.write(1, shifted);
        }
    }

    #[test]
    fn compiler_mirrors_interpreter_metrics_exactly() {
        let schedule = CompiledSchedule::compile(&MiniPrefix { n: 6 });
        let mut buf = vec![0.0f32; 6 * 3];
        let mut m = BulkMachine::new(&mut buf, 3, 6, Layout::ColumnWise);
        MiniPrefix { n: 6 }.run(&mut m);
        assert_eq!(schedule.metrics(), m.metrics());

        let schedule = CompiledSchedule::compile(&Mixed);
        let mut buf = vec![0.0f32; 4 * 3];
        let mut m = BulkMachine::new(&mut buf, 3, 4, Layout::ColumnWise);
        Mixed.run(&mut m);
        assert_eq!(schedule.metrics(), m.metrics());
        assert_eq!(schedule.metrics().broadcasts, 1, "folded const store is a broadcast");
    }

    #[test]
    fn prefix_sums_fuses_into_one_chain() {
        let n = 8;
        let schedule = CompiledSchedule::compile(&MiniPrefix { n });
        assert_eq!(schedule.steps().len(), 3 * n, "canonical table keeps every step");
        let fused = schedule.fused_steps();
        assert_eq!(fused.len(), 1, "whole program is one accumulator chain");
        match &fused[0] {
            FusedStep::Chain { init, links, .. } => {
                assert_eq!(*init, Operand::Const(0.0));
                assert_eq!(links.len(), n);
                for (i, &(addr, op, _)) in links.iter().enumerate() {
                    assert_eq!(addr, i);
                    assert_eq!(op, BinOp::Add);
                }
            }
            other => panic!("expected a chain, got {other:?}"),
        }
    }

    /// The loaded register is read again after the store: fusing would skip
    /// materialising it, so the triple must stay plain.
    struct ReuseAfterStore;

    impl ObliviousProgram<f32> for ReuseAfterStore {
        fn name(&self) -> String {
            "reuse-after-store".into()
        }
        fn memory_words(&self) -> usize {
            2
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..2
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..2
        }
        fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
            let x = m.read(0);
            let two = m.constant(2.0);
            let y = m.mul(x, two);
            m.write(0, y); // Load;Bin;Store over addr 0 — but x lives on
            let z = m.add(x, y);
            m.write(1, z);
        }
    }

    #[test]
    fn fusion_refuses_when_loaded_register_stays_live() {
        let schedule = CompiledSchedule::compile(&ReuseAfterStore);
        assert!(
            schedule.fused_steps().iter().all(|f| matches!(f, FusedStep::Plain(_))),
            "x is read after the store; nothing may fuse: {:?}",
            schedule.fused_steps()
        );
    }

    #[test]
    fn cache_compiles_once_per_key() {
        let cache: ScheduleCache<f32> = ScheduleCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_compile(&MiniPrefix { n: 4 }, Layout::ColumnWise);
        let b = cache.get_or_compile(&MiniPrefix { n: 4 }, Layout::ColumnWise);
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        assert_eq!(cache.len(), 1);
        let _ = cache.get_or_compile(&MiniPrefix { n: 4 }, Layout::RowWise);
        let _ = cache.get_or_compile(&MiniPrefix { n: 5 }, Layout::ColumnWise);
        assert_eq!(cache.len(), 3, "layout and size are part of the key");
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, compiles: 3 });
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0, "unused cache has rate 0");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let schedule = CompiledSchedule::compile(&Mixed);
        let j = schedule.to_json();
        let back = CompiledSchedule::<f32>::from_json(&j).expect("round trip");
        assert_eq!(back, schedule);
        assert_eq!(back.to_json(), j);
        assert_eq!(back.fused_steps(), schedule.fused_steps(), "fusion is recomputed");
    }

    /// A program whose constants stress the bit-exact hex encoding: NaN and
    /// a u64 word above `i64::MAX` (both corrupted by naive JSON numbers).
    struct NastyConsts;

    impl ObliviousProgram<u64> for NastyConsts {
        fn name(&self) -> String {
            "nasty".into()
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..1
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..1
        }
        fn run<M: ObliviousMachine<u64>>(&self, m: &mut M) {
            let x = m.read(0);
            let big = m.constant(u64::MAX - 5);
            let y = m.max(x, big);
            m.write(0, y);
        }
    }

    #[test]
    fn json_preserves_extreme_word_constants() {
        let schedule = CompiledSchedule::compile(&NastyConsts);
        let back = CompiledSchedule::<u64>::from_json(&schedule.to_json()).expect("round trip");
        assert_eq!(back, schedule);

        // f32 NaN constant survives via bits even though NaN != NaN.
        let steps: Vec<Step<f32>> = vec![
            Step::Load { addr: 0, dst: 0 },
            Step::Bin { op: BinOp::Add, a: Operand::Reg(0), b: Operand::Const(f32::NAN), dst: 1 },
            Step::Store { addr: 0, src: 1 },
        ];
        let metrics = BulkMetrics {
            loads: 1,
            stores: 1,
            broadcasts: 0,
            register_ops: 1,
            max_live_registers: 2,
        };
        let s = CompiledSchedule::from_parts("nan".into(), 1, 0..1, 0..1, steps, 2, metrics);
        let j = s.to_json();
        let back = CompiledSchedule::<f32>::from_json(&j).expect("round trip");
        assert_eq!(back.to_json(), j, "NaN bit pattern must survive");
    }

    #[test]
    fn from_json_rejects_inconsistencies() {
        let schedule = CompiledSchedule::compile(&Mixed);
        let mut j = schedule.to_json();
        j.set("reg_count", 1usize); // steps reference higher registers
        let err = CompiledSchedule::<f32>::from_json(&j).unwrap_err();
        assert!(err.contains("register"), "{err}");

        let mut j = schedule.to_json();
        let m = schedule.metrics();
        let mut bad = Json::obj();
        bad.set("loads", m.loads + 1);
        bad.set("stores", m.stores);
        bad.set("broadcasts", m.broadcasts);
        bad.set("register_ops", m.register_ops);
        bad.set("max_live_registers", m.max_live_registers);
        j.set("metrics", bad);
        let err = CompiledSchedule::<f32>::from_json(&j).unwrap_err();
        assert!(err.contains("metrics"), "{err}");
    }

    #[test]
    fn trace_compilation_accepts_agreeing_traces() {
        // An oblivious "algorithm" outside the machine interface: the trace
        // ignores the input.
        let trace_fn = |_: &u32| {
            let mut t = ThreadTrace::new();
            t.read(0);
            t.push(ThreadAction::Idle);
            t.write(1);
            t
        };
        let s: CompiledSchedule<f32> =
            compile_from_traces("raw", 2, trace_fn, &[1, 2, 3]).expect("oblivious");
        let mem: Vec<(Op, usize)> = s.mem_steps().collect();
        assert_eq!(mem, vec![(Op::Read, 0), (Op::Write, 1)], "idle steps are skipped");
        assert_eq!(s.metrics().loads, 1);
        assert_eq!(s.metrics().stores, 1);
    }

    #[test]
    fn trace_compilation_refuses_input_dependent_algorithms() {
        // A data-dependent branch: reads address 0 or 1 depending on input.
        let trace_fn = |input: &u32| {
            let mut t = ThreadTrace::new();
            t.read(if *input > 1 { 1 } else { 0 });
            t
        };
        let err = compile_from_traces::<f32, _>("branchy", 2, trace_fn, &[0, 5]).unwrap_err();
        match &err {
            CompileError::NotOblivious { name, violation } => {
                assert_eq!(name, "branchy");
                assert_eq!(violation.input_index, 1);
            }
            other => panic!("expected NotOblivious, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("not oblivious"), "{msg}");
        assert!(msg.contains("input-dependent"), "{msg}");
    }

    #[test]
    fn trace_compilation_rejects_out_of_bounds_addresses() {
        let trace_fn = |_: &u32| {
            let mut t = ThreadTrace::new();
            t.read(7);
            t
        };
        let err = compile_from_traces::<f32, _>("oob", 4, trace_fn, &[0]).unwrap_err();
        assert_eq!(
            err,
            CompileError::AddressOutOfBounds { name: "oob".into(), step: 0, addr: 7, msize: 4 }
        );
        assert!(err.to_string().contains("outside instance memory"));
    }

    #[test]
    fn cost_table_charges_have_warp_count_entries() {
        let schedule = CompiledSchedule::compile(&MiniPrefix { n: 3 });
        let cfg = MachineConfig::new(4, 5);
        let p = 10; // 3 warps of width 4
        let table = schedule.cost_table(&cfg, Layout::ColumnWise, p);
        for addr in 0..3 {
            assert_eq!(table.umm_charges(addr).len(), 3);
            assert_eq!(table.dmm_charges(addr).len(), 3);
        }
    }
}
