//! Model pricing — charging a bulk execution on the UMM or DMM without
//! touching any data.
//!
//! `Value = ()`: the machine only sees the address stream.  Every
//! `read`/`write` is one lockstep round of `p` uniform accesses, priced by
//! the closed forms of [`crate::layout`] (which are property-tested against
//! the materialised simulators in `umm_core`).

use crate::layout::{uniform_round_conflicts_dmm, uniform_round_stages_umm, Layout};
use crate::machine::ObliviousMachine;
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;
use umm_core::MachineConfig;

/// Which machine model prices the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Unified Memory Machine: address-group (coalescing) cost.
    Umm,
    /// Discrete Memory Machine: bank-conflict cost.
    Dmm,
}

/// Accumulates the round-synchronous model time of a bulk execution.
#[derive(Debug)]
pub struct CostMachine {
    cfg: MachineConfig,
    model: Model,
    layout: Layout,
    p: usize,
    msize: usize,
    time: u64,
    rounds: u64,
    stages: u64,
}

impl CostMachine {
    /// Price a bulk execution of `p` instances of `msize` words each.
    #[must_use]
    pub fn new(cfg: MachineConfig, model: Model, layout: Layout, p: usize, msize: usize) -> Self {
        Self { cfg, model, layout, p, msize, time: 0, rounds: 0, stages: 0 }
    }

    /// Total model time in UMM/DMM time units.
    #[must_use]
    pub fn time_units(&self) -> u64 {
        self.time
    }

    /// Number of memory rounds (= the sequential algorithm's `t`).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total pipeline injections charged.
    #[must_use]
    pub fn stages(&self) -> u64 {
        self.stages
    }

    fn charge(&mut self, addr: usize) {
        assert!(addr < self.msize, "access {addr} out of instance memory {}", self.msize);
        let s = match self.model {
            Model::Umm => {
                uniform_round_stages_umm(&self.cfg, self.layout, self.p, self.msize, addr)
            }
            Model::Dmm => {
                uniform_round_conflicts_dmm(&self.cfg, self.layout, self.p, self.msize, addr)
            }
        };
        self.stages += s;
        self.time += s + self.cfg.latency as u64 - 1;
        self.rounds += 1;
    }
}

impl<W: Word> ObliviousMachine<W> for CostMachine {
    type Value = ();

    #[inline]
    fn read(&mut self, addr: usize) {
        self.charge(addr);
    }

    #[inline]
    fn write(&mut self, addr: usize, _v: ()) {
        self.charge(addr);
    }

    #[inline]
    fn constant(&mut self, _c: W) {}

    #[inline]
    fn unop(&mut self, _op: UnOp, _a: ()) {}

    #[inline]
    fn binop(&mut self, _op: BinOp, _a: (), _b: ()) {}

    #[inline]
    fn select(&mut self, _cmp: CmpOp, _a: (), _b: (), _t: (), _e: ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_n(m: &mut CostMachine, addrs: impl IntoIterator<Item = usize>) {
        for a in addrs {
            <CostMachine as ObliviousMachine<f32>>::read(m, a);
        }
    }

    #[test]
    fn column_wise_aligned_round_costs_p_over_w_plus_l() {
        // Lemma 1's per-step column-wise cost: p/w + l - 1.
        let cfg = MachineConfig::new(4, 5);
        let mut m = CostMachine::new(cfg, Model::Umm, Layout::ColumnWise, 16, 8);
        read_n(&mut m, [0]);
        assert_eq!(m.time_units(), 16 / 4 + 5 - 1);
    }

    #[test]
    fn row_wise_round_costs_p_plus_l() {
        // Lemma 1's per-step row-wise cost (msize >= w): p + l - 1.
        let cfg = MachineConfig::new(4, 5);
        let mut m = CostMachine::new(cfg, Model::Umm, Layout::RowWise, 16, 8);
        read_n(&mut m, [3]);
        assert_eq!(m.time_units(), 16 + 5 - 1);
    }

    #[test]
    fn rounds_count_memory_steps_only() {
        let cfg = MachineConfig::new(4, 5);
        let mut m = CostMachine::new(cfg, Model::Umm, Layout::ColumnWise, 4, 4);
        <CostMachine as ObliviousMachine<f32>>::read(&mut m, 0);
        <CostMachine as ObliviousMachine<f32>>::binop(&mut m, BinOp::Add, (), ());
        <CostMachine as ObliviousMachine<f32>>::write(&mut m, 1, ());
        assert_eq!(m.rounds(), 2, "register ops are free");
    }

    #[test]
    fn dmm_prices_bank_conflicts() {
        let cfg = MachineConfig::new(4, 2);
        // Row-wise stride 8 = 2*w: every lane of a warp in the same bank.
        let mut m = CostMachine::new(cfg, Model::Dmm, Layout::RowWise, 8, 8);
        read_n(&mut m, [0]);
        assert_eq!(m.stages(), 8);
        let mut m2 = CostMachine::new(cfg, Model::Dmm, Layout::ColumnWise, 8, 8);
        read_n(&mut m2, [0]);
        assert_eq!(m2.stages(), 2);
    }

    #[test]
    #[should_panic(expected = "out of instance memory")]
    fn out_of_bounds_charge_panics() {
        let cfg = MachineConfig::new(4, 2);
        let mut m = CostMachine::new(cfg, Model::Umm, Layout::ColumnWise, 4, 2);
        read_n(&mut m, [2]);
    }
}
