//! Machine backends: one oblivious program, four executors.

pub mod bulk;
pub mod compiled;
pub mod cost;
pub mod scalar;
pub mod shard;
pub mod tracer;

pub use bulk::{BulkMachine, BulkMetrics, BulkValue, LanePort, RmwOperand, SliceLanes};
pub use compiled::{
    compile_from_traces, CacheStats, CompileError, CompiledSchedule, Operand, ScheduleCache,
    ScheduleCostTable, Step,
};
pub use cost::{CostMachine, Model};
pub use scalar::ScalarMachine;
pub use shard::{run_sharded, shard_bounds};
pub use tracer::TraceMachine;
