//! Machine backends: one oblivious program, four executors.

pub mod bulk;
pub mod cost;
pub mod scalar;
pub mod tracer;

pub use bulk::{BulkMachine, BulkMetrics, BulkValue, LanePort, SliceLanes};
pub use cost::{CostMachine, Model};
pub use scalar::ScalarMachine;
pub use tracer::TraceMachine;
