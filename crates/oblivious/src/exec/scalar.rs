//! Direct sequential execution — the paper's single-CPU reference.

use crate::machine::ObliviousMachine;
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;

/// Executes an oblivious program on one instance, in place.
///
/// `Value = W`: registers are plain words, operations are native arithmetic.
/// This backend is what "run the sequential algorithm on a single CPU"
/// means throughout the benchmarks.
#[derive(Debug)]
pub struct ScalarMachine<'a, W> {
    mem: &'a mut [W],
}

impl<'a, W: Word> ScalarMachine<'a, W> {
    /// Wrap a working memory.  The program's `memory_words()` must equal
    /// `mem.len()`; helpers in [`crate::program`] enforce that.
    #[must_use]
    pub fn new(mem: &'a mut [W]) -> Self {
        Self { mem }
    }

    /// The underlying memory.
    #[must_use]
    pub fn memory(&self) -> &[W] {
        self.mem
    }
}

impl<'a, W: Word> ObliviousMachine<W> for ScalarMachine<'a, W> {
    type Value = W;

    #[inline]
    fn read(&mut self, addr: usize) -> W {
        self.mem[addr]
    }

    #[inline]
    fn write(&mut self, addr: usize, v: W) {
        self.mem[addr] = v;
    }

    #[inline]
    fn constant(&mut self, c: W) -> W {
        c
    }

    #[inline]
    fn unop(&mut self, op: UnOp, a: W) -> W {
        W::apply_un(op, a)
    }

    #[inline]
    fn binop(&mut self, op: BinOp, a: W, b: W) -> W {
        W::apply_bin(op, a, b)
    }

    #[inline]
    fn select(&mut self, cmp: CmpOp, a: W, b: W, t: W, e: W) -> W {
        if W::compare(cmp, a, b) {
            t
        } else {
            e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_hit_memory() {
        let mut mem = [10.0f64, 20.0];
        let mut m = ScalarMachine::new(&mut mem);
        let a = m.read(0);
        let b = m.read(1);
        let s = m.binop(BinOp::Add, a, b);
        m.write(1, s);
        assert_eq!(mem[1], 30.0);
    }

    #[test]
    fn select_picks_by_comparison() {
        let mut mem = [0.0f64];
        let mut m = ScalarMachine::new(&mut mem);
        let one = m.constant(1.0);
        let two = m.constant(2.0);
        assert_eq!(m.select(CmpOp::Lt, one, two, one, two), 1.0);
        assert_eq!(m.select(CmpOp::Lt, two, one, one, two), 2.0);
        assert_eq!(m.select(CmpOp::Eq, one, one, two, one), 2.0);
    }

    #[test]
    fn unop_applies() {
        let mut mem = [0u32];
        let mut m = ScalarMachine::new(&mut mem);
        let x = m.constant(0b1010u32);
        assert_eq!(m.unop(UnOp::Shl(1), x), 0b10100);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut mem = [0.0f32; 2];
        let mut m = ScalarMachine::new(&mut mem);
        let _ = m.read(2);
    }
}
