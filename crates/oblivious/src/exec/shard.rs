//! Sharded multi-threaded replay of compiled schedules.
//!
//! Bulk execution is embarrassingly parallel across instances: lanes never
//! interact, so the `p` instances can be split into contiguous shards, each
//! replayed by its own [`BulkMachine`] on its own thread over its own
//! arranged buffer.  Results merge in shard order (= instance order), so
//! outputs are **bit-identical for every shard count**: replay arithmetic
//! is elementwise per lane (independent of how many lanes share a machine),
//! and [`BulkMetrics`](crate::exec::BulkMetrics) counts *vector* steps —
//! every shard performs the same step sequence, and the metrics a run
//! reports are the schedule's own, which do not depend on `p` at all.

use crate::exec::bulk::BulkMachine;
use crate::exec::compiled::CompiledSchedule;
use crate::layout::{extract, Layout};
use crate::word::Word;

/// Split `0..p` into `shards` contiguous ranges whose lengths differ by at
/// most one (the first `p % shards` shards take the extra instance).
///
/// # Panics
///
/// Panics if `shards == 0` or `shards > p`.
#[must_use]
pub fn shard_bounds(p: usize, shards: usize) -> Vec<core::ops::Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    assert!(shards <= p, "cannot split {p} instances into {shards} shards");
    let base = p / shards;
    let extra = p % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        bounds.push(lo..lo + len);
        lo += len;
    }
    bounds
}

/// Replay `schedule` over all `p = inputs.len()` instances using up to
/// `shards` worker threads, returning each instance's output in input
/// order.
///
/// `shards` is clamped to `1..=p`; `shards == 1` (after clamping) runs
/// inline on the calling thread.  Each shard arranges its own compact
/// `len × memory_words()` buffer under `layout` — the shard is a complete,
/// smaller bulk execution — so outputs, and the metrics reported by
/// compiled runs ([`CompiledSchedule::metrics`]), are bit-identical
/// regardless of the shard count.
///
/// # Panics
///
/// Panics if `inputs` is empty, an input does not fill the schedule's
/// `input_range`, or a worker thread panics.
#[must_use]
pub fn run_sharded<W: Word + Send + Sync>(
    schedule: &CompiledSchedule<W>,
    inputs: &[&[W]],
    layout: Layout,
    shards: usize,
) -> Vec<Vec<W>> {
    let p = inputs.len();
    assert!(p > 0, "bulk execution needs at least one input");
    let ir = schedule.input_range();
    for (i, input) in inputs.iter().enumerate() {
        assert_eq!(input.len(), ir.len(), "input {i} must fill input_range of {}", schedule.name());
    }
    let shards = shards.clamp(1, p);
    if shards == 1 {
        return run_shard(schedule, inputs, layout);
    }
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_bounds(p, shards)
            .into_iter()
            .map(|r| {
                let chunk = &inputs[r];
                scope.spawn(move || run_shard(schedule, chunk, layout))
            })
            .collect();
        // Joining in spawn order makes the merge deterministic regardless
        // of which shard finishes first.
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(p);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// One shard: a complete bulk execution of the schedule over a contiguous
/// slice of the instances.
fn run_shard<W: Word>(
    schedule: &CompiledSchedule<W>,
    inputs: &[&[W]],
    layout: Layout,
) -> Vec<Vec<W>> {
    let p = inputs.len();
    let msize = schedule.memory_words();
    let ir = schedule.input_range();
    let mut buf = vec![W::ZERO; p * msize];
    for (lane, input) in inputs.iter().enumerate() {
        for (k, &v) in input.iter().enumerate() {
            buf[layout.physical(ir.start + k, lane, p, msize)] = v;
        }
    }
    let mut m = BulkMachine::new(&mut buf, p, msize, layout);
    m.run_compiled(schedule);
    extract(&buf, p, msize, layout, schedule.output_range())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_contiguously_with_balanced_lengths() {
        for p in 1..40 {
            for shards in 1..=p {
                let bounds = shard_bounds(p, shards);
                assert_eq!(bounds.len(), shards);
                let mut next = 0;
                for r in &bounds {
                    assert_eq!(r.start, next, "p={p} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, p);
                let lens: Vec<usize> = bounds.iter().map(ExactSizeIterator::len).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "p={p} shards={shards}: {lens:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "into 9 shards")]
    fn more_shards_than_instances_rejected() {
        let _ = shard_bounds(4, 9);
    }
}
