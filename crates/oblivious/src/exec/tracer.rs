//! Address-trace recording — extracting the paper's address function `a(t)`.

use crate::machine::ObliviousMachine;
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;
use umm_core::ThreadTrace;

/// Records the sequence of memory addresses a program touches.
///
/// `Value = ()`: no data is computed at all.  Because programs cannot
/// branch on data, the recorded trace is *the* address function `a(t)` for
/// every input of the same shape — running the tracer once fully
/// characterises the program's memory behaviour.
#[derive(Debug, Default)]
pub struct TraceMachine {
    trace: ThreadTrace,
    bound: Option<usize>,
}

impl TraceMachine {
    /// New tracer without bounds checking.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// New tracer that asserts every address is `< bound`
    /// (use the program's `memory_words()`).
    #[must_use]
    pub fn with_bound(bound: usize) -> Self {
        Self { trace: ThreadTrace::new(), bound: Some(bound) }
    }

    /// Consume the tracer, yielding the recorded trace.
    #[must_use]
    pub fn into_trace(self) -> ThreadTrace {
        self.trace
    }

    /// The trace so far.
    #[must_use]
    pub fn trace(&self) -> &ThreadTrace {
        &self.trace
    }

    fn check(&self, addr: usize) {
        if let Some(b) = self.bound {
            assert!(addr < b, "oblivious program accessed address {addr} >= memory size {b}");
        }
    }
}

impl<W: Word> ObliviousMachine<W> for TraceMachine {
    type Value = ();

    #[inline]
    fn read(&mut self, addr: usize) {
        self.check(addr);
        self.trace.read(addr);
    }

    #[inline]
    fn write(&mut self, addr: usize, _v: ()) {
        self.check(addr);
        self.trace.write(addr);
    }

    #[inline]
    fn constant(&mut self, _c: W) {}

    #[inline]
    fn unop(&mut self, _op: UnOp, _a: ()) {}

    #[inline]
    fn binop(&mut self, _op: BinOp, _a: (), _b: ()) {}

    #[inline]
    fn select(&mut self, _cmp: CmpOp, _a: (), _b: (), _t: (), _e: ()) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use umm_core::{Op, ThreadAction};

    #[test]
    fn records_reads_and_writes_in_order() {
        let mut m = TraceMachine::new();
        <TraceMachine as ObliviousMachine<f32>>::read(&mut m, 3);
        <TraceMachine as ObliviousMachine<f32>>::write(&mut m, 4, ());
        let t = m.into_trace();
        assert_eq!(
            t.steps(),
            &[ThreadAction::Access(Op::Read, 3), ThreadAction::Access(Op::Write, 4)]
        );
    }

    #[test]
    fn register_ops_do_not_appear_in_trace() {
        // The paper's accounting: "we ignore access to registers and local
        // computation" — only memory steps are timed.
        let mut m = TraceMachine::new();
        <TraceMachine as ObliviousMachine<f32>>::constant(&mut m, 1.0);
        <TraceMachine as ObliviousMachine<f32>>::binop(&mut m, BinOp::Add, (), ());
        <TraceMachine as ObliviousMachine<f32>>::write(&mut m, 0, ());
        assert_eq!(m.trace().len(), 1);
    }

    #[test]
    #[should_panic(expected = "accessed address 5")]
    fn bound_violation_panics() {
        let mut m = TraceMachine::with_bound(5);
        <TraceMachine as ObliviousMachine<f32>>::read(&mut m, 5);
    }
}
