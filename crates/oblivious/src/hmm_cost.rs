//! Bulk-execution pricing on the Hierarchical Memory Machine.
//!
//! The paper's experiments deliberately use only the global memory ("we do
//! not use the shared memory of the streaming multiprocessors"), but the
//! HMM it cites models exactly that choice.  This module prices both
//! strategies for a bulk execution:
//!
//! * **all-global** — every one of the `t` memory steps is a (column-wise,
//!   coalesced) access to the global UMM;
//! * **staged** — each DMM copies its block's instances into shared memory
//!   (one coalesced global round per instance word), runs all `t` steps at
//!   shared-memory cost with DMMs in parallel, and writes the output range
//!   back.
//!
//! The crossover is the classic GPU rule of thumb, now derivable: staging
//! wins exactly when the compute-to-footprint ratio `t / msize` outweighs
//! the extra copy traffic — true for OPT (`t ~ n³/3` over `2n²` words),
//! false for prefix-sums (`t = 2n` over `n` words, no reuse).

use crate::machine::ObliviousProgram;
use crate::program::{bulk_model_time, time_steps};
use crate::word::Word;
use crate::{Layout, Model};
use umm_core::HmmConfig;

/// The priced alternatives for one bulk execution on the HMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmmBulkCost {
    /// Every step against the global UMM (the paper's configuration).
    pub all_global: u64,
    /// Stage into shared memory, compute, write back.
    pub staged: u64,
    /// Staged breakdown: global load rounds.
    pub load: u64,
    /// Staged breakdown: shared-memory compute rounds.
    pub compute: u64,
    /// Staged breakdown: global store rounds.
    pub store: u64,
}

impl HmmBulkCost {
    /// True iff staging is the better strategy.
    #[must_use]
    pub fn staging_wins(&self) -> bool {
        self.staged < self.all_global
    }

    /// Speedup of the better strategy over the other.
    #[must_use]
    pub fn advantage(&self) -> f64 {
        let (a, b) = (self.all_global as f64, self.staged as f64);
        if a >= b {
            a / b
        } else {
            b / a
        }
    }
}

/// Cost of one fully-coalesced bulk round against a machine
/// (`⌈p/w⌉ + l − 1`).
fn coalesced_round(cfg: &umm_core::MachineConfig, p: u64) -> u64 {
    p.div_ceil(cfg.width as u64) + cfg.latency as u64 - 1
}

/// Price a bulk execution of `p` instances on `hmm`.
///
/// Assumes the column-wise arrangement in both memories (the optimal one
/// by Theorem 3) and that shared capacity suffices for each DMM's block —
/// the caller can check `capacity_needed_per_dmm`.
///
/// # Panics
///
/// Panics if `p` is not a positive multiple of the DMM count.
#[must_use]
pub fn hmm_bulk_cost<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    hmm: &HmmConfig,
    p: usize,
) -> HmmBulkCost {
    assert!(p > 0 && p.is_multiple_of(hmm.dmms), "p must be a positive multiple of the DMM count");
    let t = time_steps(program) as u64;
    let msize = program.memory_words() as u64;
    let out_words = program.output_range().len() as u64;
    let per_dmm = (p / hmm.dmms) as u64;

    // All-global: the ordinary column-wise UMM pricing.
    let all_global = bulk_model_time(program, hmm.global, Model::Umm, Layout::ColumnWise, p);

    // Staged: load every instance word once (coalesced global rounds),
    // compute on shared (DMMs in parallel, conflict-free column-wise
    // within each DMM), store the output range back.
    let load = msize * coalesced_round(&hmm.global, p as u64);
    let compute = t * (per_dmm.div_ceil(hmm.shared.width as u64) + hmm.shared.latency as u64 - 1);
    let store = out_words * coalesced_round(&hmm.global, p as u64);

    HmmBulkCost { all_global, staged: load + compute + store, load, compute, store }
}

/// Shared-memory words each DMM needs to stage its block.
#[must_use]
pub fn capacity_needed_per_dmm<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    hmm: &HmmConfig,
    p: usize,
) -> usize {
    program.memory_words() * (p / hmm.dmms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umm_core::MachineConfig;

    fn hmm() -> HmmConfig {
        HmmConfig::new(4, MachineConfig::new(32, 2), MachineConfig::new(32, 200))
    }

    #[test]
    fn staging_wins_for_reuse_heavy_dp() {
        // OPT: t ~ n³/3 over 2n² words — massive reuse.
        let prog = crate::tests_support::opt_like(16);
        let c = hmm_bulk_cost(&prog, &hmm(), 64);
        assert!(c.staging_wins(), "{c:?}");
        assert!(c.advantage() > 2.0, "staging should win big: {c:?}");
        assert_eq!(c.staged, c.load + c.compute + c.store);
    }

    #[test]
    fn staging_loses_for_streaming_prefix_sums() {
        // Prefix-sums: every word read once and written once — staging
        // doubles the global traffic for nothing.
        let prog = crate::tests_support::prefix_sums_like(256);
        let c = hmm_bulk_cost(&prog, &hmm(), 64);
        assert!(!c.staging_wins(), "{c:?}");
    }

    #[test]
    fn capacity_accounting() {
        let prog = crate::tests_support::prefix_sums_like(100);
        assert_eq!(capacity_needed_per_dmm(&prog, &hmm(), 64), 100 * 16);
    }

    #[test]
    #[should_panic(expected = "multiple of the DMM count")]
    fn ragged_p_rejected() {
        let prog = crate::tests_support::prefix_sums_like(8);
        let _ = hmm_bulk_cost(&prog, &hmm(), 63);
    }
}
